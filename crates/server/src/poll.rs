//! A minimal, safe wrapper over Linux `epoll` — the readiness engine
//! behind the reactor in [`crate::server`].
//!
//! The build is offline (no `libc` crate), so the four syscalls the
//! reactor needs — `epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! `close` — are bound here directly. This module is the **only**
//! place in the crate allowed to contain `unsafe`; everything it
//! exposes is a safe API: a [`Poller`] owning the epoll instance and
//! plain-data [`PollEvent`]s out of [`Poller::wait`].
//!
//! Registration is level-triggered. The reactor re-arms write interest
//! only while a connection has buffered output, so level-triggered
//! semantics cost nothing and avoid the lost-wakeup pitfalls of
//! edge-triggered mode.
#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

const EPOLL_CLOEXEC: i32 = 0o2_000_000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel ABI
/// packs it there so 32-bit and 64-bit layouts match); natural layout
/// everywhere else.
#[derive(Clone, Copy)]
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PollEvent {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// The descriptor has bytes to read (or a pending accept).
    pub readable: bool,
    /// The descriptor can take more bytes.
    pub writable: bool,
    /// The peer closed or the descriptor errored; the connection is
    /// done once drained.
    pub hangup: bool,
}

/// An owned epoll instance. Descriptors are registered with a caller
/// token that comes back verbatim in every [`PollEvent`]; the `Poller`
/// never closes registered descriptors, only its own epoll fd.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates a fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(
        &self,
        op: i32,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        let mut interest = EPOLLRDHUP;
        if readable {
            interest |= EPOLLIN;
        }
        if writable {
            interest |= EPOLLOUT;
        }
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        let evp = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &raw mut ev
        };
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, evp) })?;
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest set.
    pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, readable, writable)
    }

    /// Re-arms an already-registered `fd` with a new interest set.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, readable, writable)
    }

    /// Deregisters `fd`. Safe to call for descriptors the kernel
    /// already dropped from the set (the error is swallowed — the
    /// reactor deregisters right before closing).
    pub fn delete(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, false, false);
    }

    /// Blocks until readiness or `timeout` (`None` = forever), filling
    /// `events`. A signal wake-up retries; a timeout returns an empty
    /// vector.
    // Casts: CAPACITY (256) fits i32, the clamped timeout fits i32,
    // and `cvt` has already rejected negative returns before `n` is
    // widened to usize.
    #[allow(
        clippy::cast_possible_wrap,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    pub fn wait(&self, events: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        const CAPACITY: usize = 256;
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
        };
        let mut raw = [EpollEvent { events: 0, data: 0 }; CAPACITY];
        let n = loop {
            match cvt(unsafe {
                epoll_wait(self.epfd, raw.as_mut_ptr(), CAPACITY as i32, timeout_ms)
            }) {
                Ok(n) => break n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for ev in &raw[..n] {
            // Copy out of the (possibly packed) struct before use.
            let (bits, token) = (ev.events, ev.data);
            events.push(PollEvent {
                token,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        let _ = unsafe { close(self.epfd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn reports_readable_when_bytes_arrive() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        poller.add(b.as_raw_fd(), 7, true, false).unwrap();
        let mut events = Vec::new();

        // Nothing pending: a zero timeout returns no events.
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.is_empty(), "{events:?}");

        a.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1, "{events:?}");
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn write_interest_is_rearmed_with_modify() {
        let poller = Poller::new().unwrap();
        let (a, mut b) = UnixStream::pair().unwrap();
        poller.add(a.as_raw_fd(), 1, true, false).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.is_empty(), "no interest armed yet: {events:?}");

        // An idle socket is immediately writable once we ask.
        poller.modify(a.as_raw_fd(), 1, true, true).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.token == 1 && e.writable),
            "{events:?}"
        );

        // Level-triggered: it stays writable until disarmed.
        poller.modify(a.as_raw_fd(), 1, true, false).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(
            !events.iter().any(|e| e.writable),
            "write interest disarmed: {events:?}"
        );

        let mut buf = [0u8; 1];
        b.write_all(b"y").unwrap();
        let mut a2 = a;
        a2.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"y");
    }

    #[test]
    fn peer_close_raises_hangup() {
        let poller = Poller::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        poller.add(b.as_raw_fd(), 3, true, false).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1, "{events:?}");
        assert!(events[0].hangup, "{events:?}");
    }

    #[test]
    fn add_on_a_closed_fd_reports_the_error() {
        let poller = Poller::new().unwrap();
        // -1 is never a valid descriptor: EBADF, surfaced as an error
        // instead of being swallowed.
        let err = poller.add(-1, 1, true, false).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(9), "EBADF expected: {err}");
    }

    #[test]
    fn modify_on_an_unregistered_fd_reports_the_error() {
        let poller = Poller::new().unwrap();
        let (a, _b) = UnixStream::pair().unwrap();
        // Valid fd, but never added: ENOENT.
        let err = poller.modify(a.as_raw_fd(), 1, true, false).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(2), "ENOENT expected: {err}");
    }

    #[test]
    fn delete_on_an_invalid_fd_is_swallowed() {
        // The reactor deregisters right before closing; a descriptor
        // the kernel already dropped must not panic or error.
        let poller = Poller::new().unwrap();
        poller.delete(-1);
    }

    #[test]
    fn interrupted_wait_retries_until_readiness() {
        // Deliver a real SIGALRM to the waiting thread mid-wait:
        // epoll_wait returns EINTR (it is never auto-restarted,
        // signal(7)), and `wait` must retry instead of surfacing the
        // interrupt. The readiness byte arrives after the signal, so a
        // non-retrying implementation would error out before seeing it.
        extern "C" fn noop_handler(_sig: i32) {}
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
            fn pthread_self() -> usize;
            fn pthread_kill(thread: usize, sig: i32) -> i32;
        }
        const SIGALRM: i32 = 14;
        const SIG_ERR: usize = usize::MAX;
        let prev = unsafe { signal(SIGALRM, noop_handler as *const () as usize) };
        assert_ne!(prev, SIG_ERR, "installing the SIGALRM handler failed");

        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        poller.add(b.as_raw_fd(), 5, true, false).unwrap();

        let waiter = unsafe { pthread_self() };
        let interrupter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            assert_eq!(unsafe { pthread_kill(waiter, SIGALRM) }, 0);
            std::thread::sleep(Duration::from_millis(30));
            a.write_all(b"x").unwrap();
            a // keep the write end open until the waiter saw the byte
        });

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(events.len(), 1, "{events:?}");
        assert!(events[0].readable, "{events:?}");
        drop(interrupter.join().unwrap());
    }

    #[test]
    fn deregistered_fds_stop_reporting() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        poller.add(b.as_raw_fd(), 9, true, false).unwrap();
        a.write_all(b"z").unwrap();
        poller.delete(b.as_raw_fd());
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "{events:?}");
    }
}
