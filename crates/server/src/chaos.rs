//! The fault-injection harness behind `rtwc chaos`.
//!
//! Each scenario drives a durable [`AdmissionService`] with a
//! deterministic workload while injecting one storage fault class
//! (torn write, lying short write, fsync failure, kill-9 truncation,
//! garbage tail, kill-9 mid-group-commit, snapshot compaction, leader
//! kill-9 with failover, severed catch-up transfer) or one *network*
//! fault class over the seeded [`crate::netchaos`] proxy (symmetric
//! partition, one-way blackhole, partition-heal-rejoin), then
//! "restarts" by running recovery over the surviving files and checks
//! two properties:
//!
//! 1. **Prefix integrity** — the recovered state is *bit-identical*
//!    (same stable handles, same exact delay bounds) to a serial
//!    replay of a prefix of the acknowledged operation history;
//! 2. **No acked loss under `--fsync always`** — for the fault classes
//!    where the sync policy promises durability, the recovered prefix
//!    is the *whole* acknowledged history.
//!
//! Loss is only tolerated where the storage stack lied (`short-write`)
//! or the policy explicitly trades durability for throughput
//! (`never` + truncation), and even then recovery must land exactly on
//! a prefix — never a hole, never a divergent bound.

use crate::faultfs::{FailpointFile, FaultPlan, FaultState, RealFile, WalFile};
use crate::group_commit::GroupWal;
use crate::netchaos::{NetAction, NetChaos};
use crate::protocol::{Request, Response};
use crate::recovery::{recover_with_file, RecoveredState};
use crate::repl::catchup::CatchupOpts;
use crate::repl::follower::{catch_up, Follower, FollowerConfig};
use crate::repl::ship::{Shipper, ShipperConfig};
use crate::repl::ReplHub;
use crate::service::{replay, AcceptedOp, AdmissionService, Durability};
use crate::wal::{FsyncPolicy, WAL_FILE};
use rtwc_core::{StreamId, StreamSpec};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wormnet_topology::{Mesh, Topology};

/// Chaos-run parameters.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Deterministic seed for workload and fault placement.
    pub seed: u64,
    /// Accepted operations to drive per scenario (faults permitting).
    pub ops: usize,
    /// Mesh width.
    pub width: u32,
    /// Mesh height.
    pub height: u32,
    /// Snapshot cadence for the compaction scenario.
    pub snapshot_every: u64,
    /// Scratch directory; a per-process temp dir when `None`.
    pub dir: Option<PathBuf>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0x0c4a_05ca,
            ops: 24,
            width: 10,
            height: 10,
            snapshot_every: 8,
            dir: None,
        }
    }
}

/// One scenario's verdict.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Fault class name.
    pub name: &'static str,
    /// Operations the live service acknowledged before the "crash".
    pub acked: usize,
    /// Acknowledged operations surviving recovery.
    pub recovered: usize,
    /// Acked ops lost (`acked - recovered`).
    pub lost: usize,
    /// Whether loss is permitted for this fault class + fsync policy.
    pub loss_allowed: bool,
    /// Recovered state equals serial replay of the surviving prefix,
    /// bit for bit (handles and bounds).
    pub bit_identical: bool,
    /// Scenario-specific notes.
    pub detail: String,
}

impl ScenarioOutcome {
    /// Did this scenario uphold both recovery properties?
    pub fn ok(&self) -> bool {
        self.bit_identical && (self.lost == 0 || self.loss_allowed)
    }
}

/// The whole chaos run.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Every scenario, in execution order.
    pub scenarios: Vec<ScenarioOutcome>,
}

impl ChaosOutcome {
    /// True when every scenario passed.
    pub fn passed(&self) -> bool {
        self.scenarios.iter().all(ScenarioOutcome::ok)
    }
}

/// `splitmix64` — the workspace's stock deterministic generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What driving the workload against a (possibly faulty) service left
/// behind.
struct Driven {
    /// Every acknowledged state-changing op, in order.
    acked: Vec<AcceptedOp>,
    /// Whether the service flipped into degraded read-only mode.
    degraded: bool,
    /// Request id of the last acknowledged admit (for the duplicate
    /// retry probe), if any.
    last_admit_req: Option<(u64, u64)>, // (req_id, handle)
}

/// Drives up to `target` accepted ops: ~1 in 4 a removal of an owned
/// stream, the rest admissions on cycling rows. Stops early when the
/// service refuses writes (WAL error / degraded).
fn drive(service: &AdmissionService, mesh: &Mesh, target: usize, rng: &mut u64) -> Driven {
    let (width, height) = {
        let d = mesh.dims();
        (d[0], d[1])
    };
    let mut driven = Driven {
        acked: Vec::new(),
        degraded: false,
        last_admit_req: None,
    };
    let mut owned: Vec<(u64, StreamSpec)> = Vec::new();
    let mut req_id = 0u64;
    let mut attempts = 0usize;
    while driven.acked.len() < target && attempts < target * 8 {
        attempts += 1;
        req_id += 1;
        let roll = splitmix64(rng) % 100;
        if roll < 25 && !owned.is_empty() {
            let victim = (splitmix64(rng) % owned.len() as u64) as usize;
            let (handle, _) = owned[victim];
            match service.handle(&Request::Remove { req_id, id: handle }) {
                Response::Removed { id } => {
                    driven.acked.push(AcceptedOp::Remove { handle: id });
                    owned.remove(victim);
                }
                Response::Error { code, .. } if code == "degraded" || code == "wal" => {
                    driven.degraded = true;
                    break;
                }
                _ => {}
            }
        } else {
            let sy = (splitmix64(rng) % u64::from(height)) as u32;
            let sx = (splitmix64(rng) % 3) as u32;
            let dx = sx + 4 + (splitmix64(rng) % (u64::from(width) - 7)) as u32;
            let priority = 1 + (splitmix64(rng) % 5) as u32;
            let period = 120 + splitmix64(rng) % 400;
            let length = 2 + splitmix64(rng) % 6;
            match service.handle(&Request::Admit {
                req_id,
                src: (sx, sy),
                dst: (dx, sy),
                priority,
                period,
                length,
                deadline: None,
            }) {
                Response::Admitted { id, .. } => {
                    let spec = StreamSpec::new(
                        mesh.node_at(&[sx, sy]).expect("on-mesh source"),
                        mesh.node_at(&[dx, sy]).expect("on-mesh destination"),
                        priority,
                        period,
                        length,
                        period,
                    );
                    owned.push((id, spec.clone()));
                    driven.acked.push(AcceptedOp::Admit { handle: id, spec });
                    driven.last_admit_req = Some((req_id, id));
                }
                Response::Error { code, .. } if code == "degraded" || code == "wal" => {
                    driven.degraded = true;
                    break;
                }
                _ => {}
            }
        }
    }
    driven
}

/// `(stable handle, exact bound)` pairs, in dense order, for a serial
/// replay of `ops` — the ground truth a recovered state must match bit
/// for bit.
fn serial_state(mesh: &Mesh, ops: &[AcceptedOp]) -> Result<Vec<(u64, u64)>, String> {
    let arcs: Vec<Arc<AcceptedOp>> = ops.iter().cloned().map(Arc::new).collect();
    let ctl = replay(mesh, &arcs)?;
    let mut handles: Vec<u64> = Vec::new();
    for op in ops {
        match op {
            AcceptedOp::Admit { handle, .. } => handles.push(*handle),
            AcceptedOp::Remove { handle } => {
                let idx = handles
                    .iter()
                    .position(|h| h == handle)
                    .ok_or_else(|| format!("serial replay: unknown handle {handle}"))?;
                handles.remove(idx);
            }
        }
    }
    Ok(handles
        .iter()
        .enumerate()
        .map(|(i, &h)| {
            let bound = ctl
                .bound(StreamId(i as u32))
                .value()
                .expect("replayed bounds are bounded");
            (h, bound)
        })
        .collect())
}

/// The recovered equivalent of [`serial_state`].
fn recovered_state_pairs(state: &RecoveredState) -> Vec<(u64, u64)> {
    state
        .handles
        .iter()
        .enumerate()
        .map(|(i, &h)| {
            let bound = state
                .ctl
                .bound(StreamId(i as u32))
                .value()
                .expect("recovered bounds are bounded");
            (h, bound)
        })
        .collect()
}

fn scenario_dir(base: &Path, name: &str) -> io::Result<PathBuf> {
    let dir = base.join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Builds a durable service over `dir`, recovering whatever the
/// directory already holds, with the WAL behind `file`.
fn durable_service(
    mesh: &Mesh,
    dir: &Path,
    policy: FsyncPolicy,
    snapshot_every: u64,
    file: Box<dyn WalFile>,
) -> io::Result<AdmissionService> {
    let (state, wal, _) = recover_with_file(mesh, dir, policy, file)?;
    Ok(AdmissionService::with_durability(
        mesh.clone(),
        state,
        Durability {
            dir: dir.to_path_buf(),
            wal: GroupWal::new(wal),
            snapshot_every,
        },
    ))
}

/// Recovery + comparison shared by every scenario: recover from `dir`,
/// find how many acked ops survived, and check the surviving prefix is
/// bit-identical to serial replay.
fn recover_and_compare(
    mesh: &Mesh,
    dir: &Path,
    acked: &[AcceptedOp],
) -> io::Result<(RecoveredState, usize, bool, String)> {
    let file = Box::new(RealFile::open(&dir.join(WAL_FILE))?);
    let (state, _, report) = recover_with_file(mesh, dir, FsyncPolicy::Always, file)?;
    // With no compaction the surviving op count is snapshot-covered ops
    // plus replayed WAL records; both count from the start of history.
    let recovered_ops = (report.snapshot_seq.unwrap_or(0) as usize)
        .max(report.snapshot_seq.unwrap_or(0) as usize + report.wal_records);
    let survived = recovered_ops.min(acked.len());
    let expected = match serial_state(mesh, &acked[..survived]) {
        Ok(e) => e,
        Err(e) => return Ok((state, survived, false, format!("serial replay failed: {e}"))),
    };
    let got = recovered_state_pairs(&state);
    let identical = expected == got;
    let detail = if identical {
        format!(
            "{} stream(s), {} torn byte(s) discarded",
            got.len(),
            report.truncated_bytes
        )
    } else {
        format!("recovered {got:?} != serial {expected:?}")
    };
    Ok((state, survived, identical, detail))
}

fn outcome(
    name: &'static str,
    acked: usize,
    recovered: usize,
    loss_allowed: bool,
    bit_identical: bool,
    detail: String,
) -> ScenarioOutcome {
    ScenarioOutcome {
        name,
        acked,
        recovered,
        lost: acked.saturating_sub(recovered),
        loss_allowed,
        bit_identical,
        detail,
    }
}

/// A detected torn write: the append reports an error mid-record. The
/// op must be refused (rolled back, never acked) and every *acked* op
/// must survive recovery.
fn scenario_torn_write(cfg: &ChaosConfig, base: &Path) -> io::Result<ScenarioOutcome> {
    let mesh = Mesh::mesh2d(cfg.width, cfg.height);
    let dir = scenario_dir(base, "torn-write")?;
    let fault_record = (cfg.ops / 2).max(2) as u64;
    let plan = FaultPlan {
        // Append #1 is the WAL header; record k is append k+1.
        torn_append: Some((fault_record + 1, 10)),
        ..FaultPlan::default()
    };
    let state = Arc::new(FaultState::default());
    let file = Box::new(FailpointFile::open(
        &dir.join(WAL_FILE),
        plan,
        Arc::clone(&state),
    )?);
    let service = durable_service(&mesh, &dir, FsyncPolicy::Always, 0, file)?;
    let mut rng = cfg.seed ^ 0x7031;
    let driven = drive(&service, &mesh, cfg.ops, &mut rng);
    drop(service);
    let fired = state.fired();
    let (_, survived, identical, mut detail) = recover_and_compare(&mesh, &dir, &driven.acked)?;
    detail = format!(
        "fault fired={fired}, degraded={}, {detail}",
        driven.degraded
    );
    let mut out = outcome(
        "torn-write",
        driven.acked.len(),
        survived,
        false,
        identical,
        detail,
    );
    // The fault must actually have been exercised and refused.
    out.bit_identical &= fired && driven.degraded;
    Ok(out)
}

/// A lying short write: the append silently persists only a prefix of
/// the record. The op *was* acked, so loss is expected — but recovery
/// must land exactly on the acked prefix before the lie.
fn scenario_short_write(cfg: &ChaosConfig, base: &Path) -> io::Result<ScenarioOutcome> {
    let mesh = Mesh::mesh2d(cfg.width, cfg.height);
    let dir = scenario_dir(base, "short-write")?;
    let fault_record = (cfg.ops / 2).max(2) as u64;
    let plan = FaultPlan {
        short_append: Some((fault_record + 1, 10)),
        ..FaultPlan::default()
    };
    let state = Arc::new(FaultState::default());
    let file = Box::new(FailpointFile::open(
        &dir.join(WAL_FILE),
        plan,
        Arc::clone(&state),
    )?);
    let service = durable_service(&mesh, &dir, FsyncPolicy::Never, 0, file)?;
    let mut rng = cfg.seed ^ 0x5407;
    let driven = drive(&service, &mesh, cfg.ops, &mut rng);
    drop(service); // kill -9: nothing flushed, the lie stands
    let fired = state.fired();
    let (_, survived, identical, mut detail) = recover_and_compare(&mesh, &dir, &driven.acked)?;
    detail = format!("fault fired={fired}, {detail}");
    let mut out = outcome(
        "short-write",
        driven.acked.len(),
        survived,
        true,
        identical,
        detail,
    );
    out.bit_identical &= fired;
    Ok(out)
}

/// An fsync failure under `--fsync always`: the op must be refused
/// before acknowledgement and the service must degrade; no acked op may
/// be lost.
fn scenario_fsync_error(cfg: &ChaosConfig, base: &Path) -> io::Result<ScenarioOutcome> {
    let mesh = Mesh::mesh2d(cfg.width, cfg.height);
    let dir = scenario_dir(base, "fsync-error")?;
    let fault_record = (cfg.ops / 2).max(2) as u64;
    let plan = FaultPlan {
        // Sync #1 is the header sync; record k's sync is #k+1.
        fail_sync_from: Some(fault_record + 1),
        ..FaultPlan::default()
    };
    let state = Arc::new(FaultState::default());
    let file = Box::new(FailpointFile::open(
        &dir.join(WAL_FILE),
        plan,
        Arc::clone(&state),
    )?);
    let service = durable_service(&mesh, &dir, FsyncPolicy::Always, 0, file)?;
    let mut rng = cfg.seed ^ 0xf5ec;
    let driven = drive(&service, &mesh, cfg.ops, &mut rng);
    let degraded = service.is_degraded();
    drop(service);
    let (_, survived, identical, mut detail) = recover_and_compare(&mesh, &dir, &driven.acked)?;
    detail = format!("degraded={degraded}, {detail}");
    let mut out = outcome(
        "fsync-error",
        driven.acked.len(),
        survived,
        false,
        identical,
        detail,
    );
    out.bit_identical &= state.fired() && degraded;
    Ok(out)
}

/// kill-9 with a tail truncated at an arbitrary byte offset (what a
/// crashed page cache leaves behind under `--fsync never`): loss of a
/// suffix is expected; the survivors must be an exact prefix.
fn scenario_kill9_truncate(cfg: &ChaosConfig, base: &Path) -> io::Result<ScenarioOutcome> {
    let mesh = Mesh::mesh2d(cfg.width, cfg.height);
    let dir = scenario_dir(base, "kill9-truncate")?;
    let file = Box::new(RealFile::open(&dir.join(WAL_FILE))?);
    let service = durable_service(&mesh, &dir, FsyncPolicy::Never, 0, file)?;
    let mut rng = cfg.seed ^ 0x9111;
    let driven = drive(&service, &mesh, cfg.ops, &mut rng);
    drop(service);
    // Truncate at a seeded byte offset anywhere past the header.
    let wal_path = dir.join(WAL_FILE);
    let bytes = std::fs::read(&wal_path)?;
    let header = crate::wal::WAL_HEADER_BYTES as usize;
    let cut = header + (splitmix64(&mut rng) % (bytes.len() - header + 1) as u64) as usize;
    std::fs::write(&wal_path, &bytes[..cut])?;
    let (_, survived, identical, mut detail) = recover_and_compare(&mesh, &dir, &driven.acked)?;
    detail = format!("cut {} of {} bytes, {detail}", cut, bytes.len());
    Ok(outcome(
        "kill9-truncate",
        driven.acked.len(),
        survived,
        true,
        identical,
        detail,
    ))
}

/// kill-9 under `--fsync always` with a garbage tail (a torn final
/// write): the garbage must be discarded and **every** acked op must
/// survive — the headline durability guarantee.
fn scenario_kill9_fsync_always(cfg: &ChaosConfig, base: &Path) -> io::Result<ScenarioOutcome> {
    let mesh = Mesh::mesh2d(cfg.width, cfg.height);
    let dir = scenario_dir(base, "kill9-fsync-always")?;
    let file = Box::new(RealFile::open(&dir.join(WAL_FILE))?);
    let service = durable_service(&mesh, &dir, FsyncPolicy::Always, 0, file)?;
    let mut rng = cfg.seed ^ 0xa1fa;
    let driven = drive(&service, &mesh, cfg.ops, &mut rng);
    drop(service);
    // A torn final append: garbage bytes after the last synced record.
    let wal_path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path)?;
    for _ in 0..37 {
        bytes.push((splitmix64(&mut rng) & 0xff) as u8);
    }
    std::fs::write(&wal_path, &bytes)?;
    let (_, survived, identical, detail) = recover_and_compare(&mesh, &dir, &driven.acked)?;
    Ok(outcome(
        "kill9-fsync-always",
        driven.acked.len(),
        survived,
        false,
        identical,
        detail,
    ))
}

/// Snapshot + WAL compaction mid-history, then kill-9: recovery stitches
/// snapshot and WAL tail back together with zero loss, and a duplicate
/// request id from before the crash still replays its original outcome
/// (no double admit).
fn scenario_snapshot_compaction(cfg: &ChaosConfig, base: &Path) -> io::Result<ScenarioOutcome> {
    let mesh = Mesh::mesh2d(cfg.width, cfg.height);
    let dir = scenario_dir(base, "snapshot-compaction")?;
    let file = Box::new(RealFile::open(&dir.join(WAL_FILE))?);
    let service = durable_service(
        &mesh,
        &dir,
        FsyncPolicy::Always,
        cfg.snapshot_every.max(1),
        file,
    )?;
    let mut rng = cfg.seed ^ 0x54a9;
    let driven = drive(&service, &mesh, cfg.ops.max(12), &mut rng);
    let streams_before = service.admitted_count();
    drop(service);

    let file = Box::new(RealFile::open(&dir.join(WAL_FILE))?);
    let (state, wal, report) = recover_with_file(&mesh, &dir, FsyncPolicy::Always, file)?;
    let compacted = report.snapshot_seq.is_some();
    let expected = serial_state(&mesh, &driven.acked);
    let got = recovered_state_pairs(&state);
    let mut identical = expected.as_ref().ok() == Some(&got) && compacted;
    let mut detail = format!(
        "snapshot_seq={:?}, wal_records={}, streams={}",
        report.snapshot_seq,
        report.wal_records,
        got.len()
    );

    // The crash-retry probe: resend the last acked admit's request id
    // against the recovered service; it must replay the original
    // handle, not create a new stream.
    if let Some((req_id, handle)) = driven.last_admit_req {
        let recovered_service = AdmissionService::with_durability(
            mesh.clone(),
            state,
            Durability {
                dir: dir.clone(),
                wal: GroupWal::new(wal),
                snapshot_every: cfg.snapshot_every.max(1),
            },
        );
        let resp = recovered_service.handle(&Request::Admit {
            req_id,
            src: (0, 0),
            dst: (5, 0),
            priority: 1,
            period: 500,
            length: 2,
            deadline: None,
        });
        let replayed = matches!(resp, Response::Admitted { id, .. } if id == handle);
        let unchanged = recovered_service.admitted_count() == streams_before;
        identical &= replayed && unchanged;
        detail.push_str(&format!(
            ", dup-req replay={replayed}, streams unchanged={unchanged}"
        ));
    }

    // `identical` compares the *full* acked history, so a match means
    // every acked op survived (ops and final streams differ because
    // removes shrink the stream set).
    let recovered_ops = if identical { driven.acked.len() } else { 0 };
    Ok(outcome(
        "snapshot-compaction",
        driven.acked.len(),
        recovered_ops,
        false,
        identical,
        detail,
    ))
}

/// One concurrent writer lane for the group-commit scenario: admits
/// (and occasional removals of its own streams) with a disjoint
/// request-id range, stopping early if the service degrades. Returns
/// how many of its ops were acknowledged.
fn concurrent_drive(
    service: &AdmissionService,
    mesh: &Mesh,
    target: usize,
    lane: u64,
    mut rng: u64,
) -> usize {
    let (width, height) = {
        let d = mesh.dims();
        (d[0], d[1])
    };
    let mut owned: Vec<u64> = Vec::new();
    let mut acked = 0usize;
    let mut attempts = 0usize;
    let mut req_id = lane * 1_000_000;
    while acked < target && attempts < target * 8 {
        attempts += 1;
        req_id += 1;
        let roll = splitmix64(&mut rng) % 100;
        if roll < 25 && !owned.is_empty() {
            let victim = (splitmix64(&mut rng) % owned.len() as u64) as usize;
            let id = owned[victim];
            match service.handle(&Request::Remove { req_id, id }) {
                Response::Removed { .. } => {
                    owned.swap_remove(victim);
                    acked += 1;
                }
                Response::Error { code, .. } if code == "degraded" || code == "wal" => break,
                _ => {}
            }
        } else {
            let sy = (splitmix64(&mut rng) % u64::from(height)) as u32;
            let sx = (splitmix64(&mut rng) % 3) as u32;
            let dx = sx + 4 + (splitmix64(&mut rng) % (u64::from(width) - 7)) as u32;
            let priority = 1 + (splitmix64(&mut rng) % 5) as u32;
            let period = 150 + splitmix64(&mut rng) % 400;
            let length = 2 + splitmix64(&mut rng) % 6;
            match service.handle(&Request::Admit {
                req_id,
                src: (sx, sy),
                dst: (dx, sy),
                priority,
                period,
                length,
                deadline: None,
            }) {
                Response::Admitted { id, .. } => {
                    owned.push(id);
                    acked += 1;
                }
                Response::Error { code, .. } if code == "degraded" || code == "wal" => break,
                _ => {}
            }
        }
    }
    acked
}

/// kill-9 in the middle of a group commit: concurrent writers pile up
/// behind a slow fsync (the latency failpoint), so WAL batches really
/// hold several operations; the "crash" then cuts the log at an
/// arbitrary byte offset — possibly mid-batch, mid-record. Recovery
/// must land on a clean prefix of the service's journal (the
/// group-commit serial order), bit-identical to a serial replay of
/// that prefix, even though the ops were validated and applied
/// concurrently.
fn scenario_kill9_group_commit(cfg: &ChaosConfig, base: &Path) -> io::Result<ScenarioOutcome> {
    let mesh = Mesh::mesh2d(cfg.width, cfg.height);
    let dir = scenario_dir(base, "kill9-group-commit")?;
    let plan = FaultPlan {
        sync_delay: Some(std::time::Duration::from_millis(3)),
        ..FaultPlan::default()
    };
    let state = Arc::new(FaultState::default());
    let file = Box::new(FailpointFile::open(
        &dir.join(WAL_FILE),
        plan,
        Arc::clone(&state),
    )?);
    let mut service = durable_service(&mesh, &dir, FsyncPolicy::Always, 0, file)?;
    // Concurrent admits also take the optimistic validate-then-commit
    // path, so this scenario exercises both tentpole concurrency
    // mechanisms at once.
    service.set_optimistic(true);
    let service = Arc::new(service);

    let lanes = 4usize;
    let per_lane = cfg.ops.max(8);
    let mut joins = Vec::new();
    for lane in 0..lanes {
        let service = Arc::clone(&service);
        let mesh = mesh.clone();
        let rng = cfg.seed ^ (0x6c01 + lane as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        joins.push(std::thread::spawn(move || {
            concurrent_drive(&service, &mesh, per_lane, 1 + lane as u64, rng)
        }));
    }
    let mut acked = 0usize;
    for j in joins {
        acked += j.join().expect("concurrent driver panicked");
    }
    // The journal is the group-commit serial order — the ground truth
    // the cut-down WAL must replay a prefix of.
    let journal: Vec<AcceptedOp> = service.ops().iter().map(|op| (**op).clone()).collect();
    let stats = service
        .group_commit_stats()
        .expect("durable service has group-commit stats");
    drop(service);

    // kill -9 at an arbitrary byte offset past the header.
    let mut rng = cfg.seed ^ 0x6ba7;
    let wal_path = dir.join(WAL_FILE);
    let bytes = std::fs::read(&wal_path)?;
    let header = crate::wal::WAL_HEADER_BYTES as usize;
    let cut = header + (splitmix64(&mut rng) % (bytes.len() - header + 1) as u64) as usize;
    std::fs::write(&wal_path, &bytes[..cut])?;

    let (_, survived, identical, mut detail) = recover_and_compare(&mesh, &dir, &journal)?;
    let batched = stats.max_batch >= 2;
    detail = format!(
        "journal={} ops, syncs={}, mean_batch={:.2}, max_batch={}, cut {} of {} bytes, {detail}",
        journal.len(),
        stats.syncs,
        stats.mean_batch(),
        stats.max_batch,
        cut,
        bytes.len()
    );
    let mut out = outcome(
        "kill9-group-commit",
        acked,
        survived,
        true,
        identical,
        detail,
    );
    // The point of the scenario is a *batch* in flight: with four
    // writers stalled behind a 3ms fsync, at least one multi-op batch
    // must have formed, or the failpoint never did its job.
    out.bit_identical &= batched;
    Ok(out)
}

/// kill-9 of the replication leader: a live follower streams the WAL
/// over real TCP while the leader takes the workload; the leader then
/// dies without a clean shutdown, the warm standby is promoted, and the
/// last acked admit is retried with its original request id. The
/// promoted replica's durable state must be bit-identical to a serial
/// replay of everything the dead leader acknowledged, and the duplicate
/// must replay its original handle — exactly-once across failover.
fn scenario_repl_failover(cfg: &ChaosConfig, base: &Path) -> io::Result<ScenarioOutcome> {
    let mesh = Mesh::mesh2d(cfg.width, cfg.height);
    let leader_dir = scenario_dir(base, "repl-failover-leader")?;
    let follower_dir = scenario_dir(base, "repl-failover-follower")?;

    let file = Box::new(RealFile::open(&leader_dir.join(WAL_FILE))?);
    let leader = Arc::new(durable_service(
        &mesh,
        &leader_dir,
        FsyncPolicy::Always,
        0,
        file,
    )?);
    leader.attach_repl(Arc::new(ReplHub::leader()));
    let shipper = Shipper::spawn(
        std::net::TcpListener::bind("127.0.0.1:0")?,
        Arc::clone(&leader),
        ShipperConfig::new(leader_dir.clone()),
    )?;
    let ship_addr = shipper.addr().to_string();

    let file = Box::new(RealFile::open(&follower_dir.join(WAL_FILE))?);
    let follower = Arc::new(durable_service(
        &mesh,
        &follower_dir,
        FsyncPolicy::Always,
        0,
        file,
    )?);
    let hub = Arc::new(ReplHub::follower(&ship_addr));
    follower.attach_repl(Arc::clone(&hub));
    let follower_loop = Follower::spawn(Arc::clone(&follower), FollowerConfig::new(&ship_addr))?;

    let mut rng = cfg.seed ^ 0x4e4f;
    let driven = drive(&leader, &mesh, cfg.ops, &mut rng);
    let acked = driven.acked.len();

    // Let the standby drain the acked stream before the murder.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while hub.applied_seq() < acked as u64 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let caught_up = hub.applied_seq() >= acked as u64;

    // kill -9: the leader vanishes, shipper and all, with no flush
    // (everything acked is already fsynced under `always`).
    shipper.stop();
    drop(leader);

    let promoted = matches!(follower.promote(), Response::Promoted { .. });

    // The crash-retry probe, now against the *new* leader.
    let streams_before = follower.admitted_count();
    let mut replayed = true;
    if let Some((req_id, handle)) = driven.last_admit_req {
        let resp = follower.handle(&Request::Admit {
            req_id,
            src: (0, 0),
            dst: (5, 0),
            priority: 1,
            period: 500,
            length: 2,
            deadline: None,
        });
        replayed = matches!(resp, Response::Admitted { id, .. } if id == handle)
            && follower.admitted_count() == streams_before;
    }
    follower_loop.stop();
    drop(follower);

    let (_, survived, identical, mut detail) =
        recover_and_compare(&mesh, &follower_dir, &driven.acked)?;
    detail =
        format!("caught_up={caught_up}, promoted={promoted}, dup-req replay={replayed}, {detail}");
    let mut out = outcome("repl-failover", acked, survived, false, identical, detail);
    out.bit_identical &= caught_up && promoted && replayed;
    Ok(out)
}

/// A follower joining behind a compacted WAL over a flaky link: the
/// first snapshot catch-up is severed mid-transfer (injected), the
/// retry resumes from the chunk manifest instead of re-fetching, and
/// the follower then streams the WAL tail to full equality with the
/// leader's acked history.
fn scenario_repl_catchup_resume(cfg: &ChaosConfig, base: &Path) -> io::Result<ScenarioOutcome> {
    let mesh = Mesh::mesh2d(cfg.width, cfg.height);
    let leader_dir = scenario_dir(base, "repl-catchup-leader")?;
    let follower_dir = scenario_dir(base, "repl-catchup-follower")?;

    let file = Box::new(RealFile::open(&leader_dir.join(WAL_FILE))?);
    // Aggressive compaction: a joining follower *must* take the
    // snapshot path because the WAL base has moved past sequence 0.
    let leader = Arc::new(durable_service(
        &mesh,
        &leader_dir,
        FsyncPolicy::Always,
        4,
        file,
    )?);
    leader.attach_repl(Arc::new(ReplHub::leader()));
    let mut rng = cfg.seed ^ 0xca7c;
    let driven = drive(&leader, &mesh, cfg.ops.max(12), &mut rng);
    let acked = driven.acked.len();

    let mut ship_cfg = ShipperConfig::new(leader_dir.clone());
    // Tiny chunks so the transfer spans several and a severed link
    // really leaves work behind.
    ship_cfg.chunk_size = 128;
    let shipper = Shipper::spawn(
        std::net::TcpListener::bind("127.0.0.1:0")?,
        Arc::clone(&leader),
        ship_cfg,
    )?;
    let ship_addr = shipper.addr().to_string();

    // Attempt one: severed after a single chunk; the partial image and
    // its manifest survive on disk.
    let severed = catch_up(
        &ship_addr,
        &follower_dir,
        FsyncPolicy::Always,
        &CatchupOpts {
            fail_after_chunks: Some(1),
        },
    )
    .is_err();
    // Attempt two: the manifest resumes; only the remainder transfers.
    let resumed = catch_up(
        &ship_addr,
        &follower_dir,
        FsyncPolicy::Always,
        &CatchupOpts::default(),
    )?;
    let resumed_chunks = resumed.map_or(0, |c| c.resumed);

    // Stream the WAL tail past the snapshot to full equality.
    let file = Box::new(RealFile::open(&follower_dir.join(WAL_FILE))?);
    let follower = Arc::new(durable_service(
        &mesh,
        &follower_dir,
        FsyncPolicy::Always,
        0,
        file,
    )?);
    let hub = Arc::new(ReplHub::follower(&ship_addr));
    follower.attach_repl(Arc::clone(&hub));
    let follower_loop = Follower::spawn(Arc::clone(&follower), FollowerConfig::new(&ship_addr))?;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while hub.applied_seq() < acked as u64 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let caught_up = hub.applied_seq() >= acked as u64;
    follower_loop.stop();
    shipper.stop();
    drop(leader);
    drop(follower);

    let (_, survived, identical, mut detail) =
        recover_and_compare(&mesh, &follower_dir, &driven.acked)?;
    detail = format!(
        "severed={severed}, resumed_chunks={resumed_chunks}, caught_up={caught_up}, {detail}"
    );
    let mut out = outcome(
        "repl-catchup-resume",
        acked,
        survived,
        false,
        identical,
        detail,
    );
    // The sever must have fired and the retry must have *resumed* (the
    // manifest skipped at least the chunk already journaled).
    out.bit_identical &= severed && resumed_chunks >= 1 && caught_up;
    Ok(out)
}

/// Leader write lease used by the partition scenarios.
const PARTITION_LEASE: Duration = Duration::from_millis(200);
/// Follower promotion grace for the partition scenarios; must strictly
/// exceed [`PARTITION_LEASE`] (the follower refuses to run otherwise).
const PARTITION_GRACE: Duration = Duration::from_millis(550);

/// Polls `cond` every 2 ms until it holds or `timeout` passes.
fn wait_for(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Admits exactly one seeded stream (re-drawing refused parameter
/// combinations): `true` once an admit is acknowledged, `false` when
/// the service sheds the write (`sealed` / `not_leader`) or nothing
/// feasible was drawn.
fn admit_one(service: &AdmissionService, mesh: &Mesh, req_id: u64, rng: &mut u64) -> bool {
    let (width, height) = {
        let d = mesh.dims();
        (d[0], d[1])
    };
    for _ in 0..40 {
        let sy = (splitmix64(rng) % u64::from(height)) as u32;
        let sx = (splitmix64(rng) % 3) as u32;
        let dx = sx + 4 + (splitmix64(rng) % (u64::from(width) - 7)) as u32;
        let priority = 1 + (splitmix64(rng) % 5) as u32;
        let period = 120 + splitmix64(rng) % 400;
        let length = 2 + splitmix64(rng) % 6;
        match service.handle(&Request::Admit {
            req_id,
            src: (sx, sy),
            dst: (dx, sy),
            priority,
            period,
            length,
            deadline: None,
        }) {
            Response::Admitted { .. } => return true,
            Response::Error { code, .. } if code == "sealed" || code == "not_leader" => {
                return false
            }
            _ => {}
        }
    }
    false
}

/// The error code a write got, for probing sealed/fenced nodes.
fn write_probe_code(service: &AdmissionService, req_id: u64) -> String {
    match service.handle(&Request::Admit {
        req_id,
        src: (0, 0),
        dst: (5, 0),
        priority: 1,
        period: 500,
        length: 2,
        deadline: None,
    }) {
        Response::Error { code, .. } => code.to_string(),
        other => format!("{other:?}"),
    }
}

/// A leader/standby pair joined through a [`NetChaos`] proxy, with the
/// lease/grace pair armed and the standby fully caught up — the common
/// starting point of every partition scenario.
struct PartitionRig {
    mesh: Mesh,
    old_dir: PathBuf,
    new_dir: PathBuf,
    /// The original leader (will be partitioned away and fenced).
    old: Arc<AdmissionService>,
    old_hub: Arc<ReplHub>,
    /// The standby that will take over.
    new: Arc<AdmissionService>,
    new_hub: Arc<ReplHub>,
    shipper: Shipper,
    proxy: NetChaos,
    follower_loop: Follower,
    /// Standby applied everything and the leader heard the ack (the
    /// lease is armed and fresh) before any fault was injected.
    synced: bool,
}

fn partition_rig(
    cfg: &ChaosConfig,
    base: &Path,
    name: &str,
    new_snapshot_every: u64,
    advertise: &str,
    salt: u64,
) -> io::Result<PartitionRig> {
    let mesh = Mesh::mesh2d(cfg.width, cfg.height);
    let old_dir = scenario_dir(base, &format!("{name}-old"))?;
    let new_dir = scenario_dir(base, &format!("{name}-new"))?;

    let file = Box::new(RealFile::open(&old_dir.join(WAL_FILE))?);
    let old = Arc::new(durable_service(
        &mesh,
        &old_dir,
        FsyncPolicy::Always,
        0,
        file,
    )?);
    let old_hub = Arc::new(ReplHub::leader());
    old_hub.set_lease(PARTITION_LEASE);
    old.attach_repl(Arc::clone(&old_hub));
    let mut ship_cfg = ShipperConfig::new(old_dir.clone());
    // A tight heartbeat keeps ack round-trips (and so the lease)
    // fresh on an idle link without slowing the scenario down.
    ship_cfg.heartbeat = Duration::from_millis(25);
    let shipper = Shipper::spawn(
        std::net::TcpListener::bind("127.0.0.1:0")?,
        Arc::clone(&old),
        ship_cfg,
    )?;

    // Every byte between the peers crosses the seeded proxy.
    let proxy = NetChaos::spawn(
        std::net::TcpListener::bind("127.0.0.1:0")?,
        &shipper.addr().to_string(),
        cfg.seed ^ salt,
    )?;
    let proxy_addr = proxy.addr().to_string();

    let file = Box::new(RealFile::open(&new_dir.join(WAL_FILE))?);
    let new = Arc::new(durable_service(
        &mesh,
        &new_dir,
        FsyncPolicy::Always,
        new_snapshot_every,
        file,
    )?);
    let new_hub = Arc::new(ReplHub::follower(&proxy_addr));
    new.attach_repl(Arc::clone(&new_hub));
    let mut fcfg = FollowerConfig::new(&proxy_addr);
    fcfg.promote_grace = Some(PARTITION_GRACE);
    fcfg.advertise = advertise.to_string();
    let follower_loop = Follower::spawn(Arc::clone(&new), fcfg)?;

    let mut rng = cfg.seed ^ salt;
    let driven = drive(&old, &mesh, cfg.ops, &mut rng);
    let acked = driven.acked.len() as u64;
    let synced = wait_for(Duration::from_secs(10), || new_hub.applied_seq() >= acked)
        && wait_for(Duration::from_secs(10), || {
            old_hub
                .report(0, 0)
                .followers
                .iter()
                .any(|f| f.acked_seq >= acked)
        });

    Ok(PartitionRig {
        mesh,
        old_dir,
        new_dir,
        old,
        old_hub,
        new,
        new_hub,
        shipper,
        proxy,
        follower_loop,
        synced,
    })
}

/// A symmetric partition between leader and standby: the leader's
/// write lease lapses and it *seals* (sheds writes) strictly before
/// the standby's promotion grace elapses, so there is no instant at
/// which both sides can acknowledge a write. The merged epoch-stamped
/// ack log proves the zero-dual-ack window; at heal time the promoted
/// node's `Fence` lands, the deposed leader permanently demotes and
/// audits its divergent suffix, and the survivor's durable state is
/// bit-identical to a serial replay of its acknowledged history.
fn scenario_partition_symmetric(cfg: &ChaosConfig, base: &Path) -> io::Result<ScenarioOutcome> {
    const ADVERTISE: &str = "127.0.0.1:4242";
    let rig = partition_rig(cfg, base, "partition-symmetric", 0, ADVERTISE, 0x5e1f)?;
    let mut rng = cfg.seed ^ 0x5e1f_0001;

    rig.proxy.handle().apply(NetAction::Partition);

    // The merged ack log: (epoch, tick) per acknowledged write, plus
    // ticks for the seal and promotion events, all on one logical
    // clock. The no-dual-ack invariant is a total order on it.
    let mut tick = 0u64;
    let mut acks: Vec<(u64, u64)> = Vec::new();

    // Inside the lease the partitioned leader still acks writes —
    // the divergent suffix the fence will later audit.
    let mut divergent = 0u64;
    for i in 0..2u64 {
        if admit_one(&rig.old, &rig.mesh, 9_000_000 + i, &mut rng) {
            acks.push((rig.old_hub.epoch(), tick));
            tick += 1;
            divergent += 1;
        }
    }

    // Lease lapse: the leader seals and sheds writes with a retryable
    // error, strictly before anyone else can take over.
    let sealed = wait_for(Duration::from_secs(5), || rig.old_hub.write_sealed());
    let seal_tick = tick;
    tick += 1;
    let shed_code = write_probe_code(&rig.old, 9_000_100);

    // Grace lapse: the standby promotes itself only after the leader
    // is already sealed (grace > lease by construction).
    let promoted = wait_for(Duration::from_secs(5), || !rig.new_hub.is_follower());
    let promote_tick = tick;
    tick += 1;

    let mut new_acked = 0u64;
    for i in 0..2u64 {
        if admit_one(&rig.new, &rig.mesh, 8_000_000 + i, &mut rng) {
            acks.push((rig.new_hub.epoch(), tick));
            tick += 1;
            new_acked += 1;
        }
    }

    // Zero dual-ack window: every epoch-1 ack precedes the seal, which
    // precedes the promotion, which precedes every epoch-2 ack.
    let ordered = acks.iter().all(|&(e, t)| {
        if e <= 1 {
            t < seal_tick
        } else {
            t > promote_tick
        }
    });

    // The partition alone must not fence: fencing needs the explicit
    // higher-epoch message, and that is still blackholed.
    let fenced_early = rig.old_hub.is_fenced();

    rig.proxy.handle().apply(NetAction::Heal);
    // At heal the promoted node's retrying Fence finally lands: the
    // deposed leader permanently demotes and audits its suffix.
    let fenced = wait_for(Duration::from_secs(10), || rig.old_hub.is_fenced());
    let demoted_code = write_probe_code(&rig.old, 9_000_101);
    let old_divergence = rig.old_hub.divergence_ops();
    let redirect = rig.old_hub.leader_addr();

    rig.follower_loop.stop();
    rig.shipper.stop();
    let journal: Vec<AcceptedOp> = rig.new.ops().iter().map(|op| (**op).clone()).collect();
    drop(rig.old);
    drop(rig.new);
    rig.proxy.stop();

    let (_, survived, identical, mut detail) =
        recover_and_compare(&rig.mesh, &rig.new_dir, &journal)?;
    detail = format!(
        "synced={}, divergent={divergent} shed at tick {seal_tick} ({shed_code}), \
         promoted={promoted} at tick {promote_tick}, new_acked={new_acked}, ordered={ordered}, \
         fenced={fenced} (divergence={old_divergence}, redirect={redirect}), {detail}",
        rig.synced
    );
    let acked_total = journal.len() as u64 + divergent;
    let mut out = outcome(
        "partition-symmetric",
        acked_total as usize,
        survived,
        true,
        identical,
        detail,
    );
    out.bit_identical &= rig.synced
        && divergent == 2
        && sealed
        && shed_code == "sealed"
        && promoted
        && new_acked == 2
        && ordered
        && !fenced_early
        && fenced
        && old_divergence == divergent
        && demoted_code == "not_leader"
        && redirect == ADVERTISE;
    Ok(out)
}

/// A one-way blackhole leader→standby: the standby hears nothing and
/// promotes, while its Hellos and reconnect attempts *keep reaching*
/// the doomed leader. Because only ack round-trips feed the lease,
/// those one-way Hellos must not keep the leader writable — it seals
/// on schedule, before the promotion. The promoted node's `Fence` also
/// crosses the still-open direction, so the old leader demotes even
/// while the partition stands.
fn scenario_partition_asymmetric(cfg: &ChaosConfig, base: &Path) -> io::Result<ScenarioOutcome> {
    const ADVERTISE: &str = "127.0.0.1:4343";
    let rig = partition_rig(cfg, base, "partition-asymmetric", 0, ADVERTISE, 0xa57e)?;
    let mut rng = cfg.seed ^ 0xa57e_0001;

    // Drop only leader→standby bytes; the reverse path stays open.
    rig.proxy.handle().apply(NetAction::BlackholeDown);

    // The leader keeps hearing the standby's Hellos, yet seals: a
    // Hello only proves standby→leader reachability, and a lease fed
    // by it would keep this doomed leader acking writes while the
    // isolated standby promotes — the exact dual-ack bug this scenario
    // guards against.
    let sealed = wait_for(Duration::from_secs(5), || rig.old_hub.write_sealed());
    let shed_code = write_probe_code(&rig.old, 9_100_000);
    let sealed_before_promotion = sealed && rig.new_hub.is_follower();

    let promoted = wait_for(Duration::from_secs(5), || !rig.new_hub.is_follower());

    // The fence crosses the open direction without waiting for heal.
    let fenced_during_fault = wait_for(Duration::from_secs(5), || rig.old_hub.is_fenced());

    let mut new_acked = 0u64;
    if admit_one(&rig.new, &rig.mesh, 8_100_000, &mut rng) {
        new_acked += 1;
    }

    rig.proxy.handle().apply(NetAction::Heal);
    // Post-heal the deposed leader stays demoted; nothing diverged
    // (it took no writes while partitioned).
    let demoted_code = write_probe_code(&rig.old, 9_100_001);
    let old_divergence = rig.old_hub.divergence_ops();
    let fence_events = rig.old_hub.fence_events();

    rig.follower_loop.stop();
    rig.shipper.stop();
    let journal: Vec<AcceptedOp> = rig.new.ops().iter().map(|op| (**op).clone()).collect();
    drop(rig.old);
    drop(rig.new);
    rig.proxy.stop();

    let (_, survived, identical, mut detail) =
        recover_and_compare(&rig.mesh, &rig.new_dir, &journal)?;
    detail = format!(
        "synced={}, sealed_before_promotion={sealed_before_promotion} ({shed_code}), \
         promoted={promoted}, fenced_during_fault={fenced_during_fault} \
         (fence_events={fence_events}, divergence={old_divergence}), new_acked={new_acked}, \
         {detail}",
        rig.synced
    );
    let mut out = outcome(
        "partition-asymmetric",
        journal.len(),
        survived,
        false,
        identical,
        detail,
    );
    out.bit_identical &= rig.synced
        && sealed_before_promotion
        && shed_code == "sealed"
        && promoted
        && fenced_during_fault
        && new_acked == 1
        && old_divergence == 0
        && fence_events == 1
        && demoted_code == "not_leader";
    Ok(out)
}

/// Partition, failover, heal, **rejoin**: the deposed leader acks a
/// divergent suffix inside its lease, is fenced at heal (emitting a
/// `DivergenceReport` / A110 audit for the acked-but-discarded ops),
/// and then rejoins as a follower through the chunked snapshot
/// catch-up — the new leader has compacted past the shared prefix, so
/// the catch-up resets the divergent WAL. The rejoined node's durable
/// state must be bit-identical to a serial replay of the survivor's
/// acknowledged history.
fn scenario_partition_heal_rejoin(cfg: &ChaosConfig, base: &Path) -> io::Result<ScenarioOutcome> {
    const ADVERTISE: &str = "127.0.0.1:4444";
    // Aggressive compaction on the standby: its post-promotion writes
    // move the WAL base past the shared prefix, forcing the rejoining
    // node onto the snapshot path.
    let rig = partition_rig(cfg, base, "partition-heal-rejoin", 4, ADVERTISE, 0xbea1)?;
    let mut rng = cfg.seed ^ 0xbea1_0001;

    rig.proxy.handle().apply(NetAction::Partition);

    let mut divergent = 0u64;
    for i in 0..2u64 {
        if admit_one(&rig.old, &rig.mesh, 9_200_000 + i, &mut rng) {
            divergent += 1;
        }
    }
    let old_seq = rig.old.seq();
    let sealed = wait_for(Duration::from_secs(5), || rig.old_hub.write_sealed());
    let promoted = wait_for(Duration::from_secs(5), || !rig.new_hub.is_follower());

    // Enough post-promotion history that the every-4-ops snapshot
    // cadence compacts past the deposed leader's divergent WAL.
    let mut new_acked = 0u64;
    for i in 0..8u64 {
        if admit_one(&rig.new, &rig.mesh, 8_200_000 + i, &mut rng) {
            new_acked += 1;
        }
    }
    let compacted_past = rig.new.wal_base_seq().unwrap_or(0) > old_seq;

    rig.proxy.handle().apply(NetAction::Heal);
    let fenced = wait_for(Duration::from_secs(10), || rig.old_hub.is_fenced());
    let old_divergence = rig.old_hub.divergence_ops();

    rig.follower_loop.stop();
    rig.shipper.stop();
    let journal: Vec<AcceptedOp> = rig.new.ops().iter().map(|op| (**op).clone()).collect();
    let survivor_seq = rig.new.seq();
    // The fenced node restarts as a follower of the winner: its
    // divergent WAL is behind the winner's compacted base, so catch-up
    // installs the snapshot and resets the WAL past the suffix.
    drop(rig.old);
    let rejoin_shipper = Shipper::spawn(
        std::net::TcpListener::bind("127.0.0.1:0")?,
        Arc::clone(&rig.new),
        ShipperConfig::new(rig.new_dir.clone()),
    )?;
    let winner_addr = rejoin_shipper.addr().to_string();
    let snap_installed = catch_up(
        &winner_addr,
        &rig.old_dir,
        FsyncPolicy::Always,
        &CatchupOpts::default(),
    )?
    .is_some();

    let file = Box::new(RealFile::open(&rig.old_dir.join(WAL_FILE))?);
    let rejoined = Arc::new(durable_service(
        &rig.mesh,
        &rig.old_dir,
        FsyncPolicy::Always,
        0,
        file,
    )?);
    let rejoined_hub = Arc::new(ReplHub::follower(&winner_addr));
    rejoined.attach_repl(Arc::clone(&rejoined_hub));
    let rejoin_loop = Follower::spawn(Arc::clone(&rejoined), FollowerConfig::new(&winner_addr))?;
    let rejoined_synced = wait_for(Duration::from_secs(10), || {
        rejoined_hub.applied_seq() >= survivor_seq
    });
    rejoin_loop.stop();
    rejoin_shipper.stop();
    drop(rejoined);
    drop(rig.new);
    rig.proxy.stop();

    // The headline comparison runs on the *rejoined* node's directory:
    // after discarding its divergent suffix it must replay the
    // survivor's history bit for bit.
    let (_, survived, identical, mut detail) =
        recover_and_compare(&rig.mesh, &rig.old_dir, &journal)?;
    detail = format!(
        "synced={}, divergent={divergent} audited (DivergenceReport/A110, \
         divergence={old_divergence}), promoted={promoted}, new_acked={new_acked}, \
         compacted_past={compacted_past}, snap_rejoin={snap_installed}, \
         rejoined_synced={rejoined_synced}, {detail}",
        rig.synced
    );
    let acked_total = journal.len() as u64 + divergent;
    let mut out = outcome(
        "partition-heal-rejoin",
        acked_total as usize,
        survived,
        true,
        identical,
        detail,
    );
    out.bit_identical &= rig.synced
        && divergent == 2
        && sealed
        && promoted
        && new_acked == 8
        && compacted_past
        && fenced
        && old_divergence == divergent
        && snap_installed
        && rejoined_synced;
    Ok(out)
}

/// Runs every fault-class scenario with the same seed and returns the
/// verdicts.
pub fn run_chaos(cfg: &ChaosConfig) -> io::Result<ChaosOutcome> {
    let base = match &cfg.dir {
        Some(d) => d.clone(),
        None => std::env::temp_dir().join(format!("rtwc-chaos-{}", std::process::id())),
    };
    std::fs::create_dir_all(&base)?;
    let scenarios = vec![
        scenario_torn_write(cfg, &base)?,
        scenario_short_write(cfg, &base)?,
        scenario_fsync_error(cfg, &base)?,
        scenario_kill9_truncate(cfg, &base)?,
        scenario_kill9_fsync_always(cfg, &base)?,
        scenario_kill9_group_commit(cfg, &base)?,
        scenario_snapshot_compaction(cfg, &base)?,
        scenario_repl_failover(cfg, &base)?,
        scenario_repl_catchup_resume(cfg, &base)?,
        scenario_partition_symmetric(cfg, &base)?,
        scenario_partition_asymmetric(cfg, &base)?,
        scenario_partition_heal_rejoin(cfg, &base)?,
    ];
    if cfg.dir.is_none() {
        let _ = std::fs::remove_dir_all(&base);
    }
    Ok(ChaosOutcome { scenarios })
}

/// Renders the chaos report; CI greps for the `bit-identical` marker.
pub fn render_chaos_report(o: &ChaosOutcome) -> String {
    let mut out = String::new();
    for s in &o.scenarios {
        let verdict = if s.ok() {
            if s.lost == 0 {
                "bit-identical, no acked op lost"
            } else {
                "bit-identical prefix (loss allowed for this class)"
            }
        } else {
            "FAILED"
        };
        out.push_str(&format!(
            "{:<20} acked={:<3} recovered={:<3} lost={:<3} {} [{}]\n",
            s.name, s.acked, s.recovered, s.lost, verdict, s.detail
        ));
    }
    if o.passed() {
        out.push_str(&format!(
            "CHAOS PASS: {}/{} fault classes recovered bit-identical to serial replay\n",
            o.scenarios.len(),
            o.scenarios.len()
        ));
    } else {
        let failed: Vec<&str> = o
            .scenarios
            .iter()
            .filter(|s| !s.ok())
            .map(|s| s.name)
            .collect();
        out.push_str(&format!("CHAOS FAIL: {}\n", failed.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fault_classes_recover_bit_identical() {
        let cfg = ChaosConfig {
            ops: 14,
            ..ChaosConfig::default()
        };
        let o = run_chaos(&cfg).unwrap();
        let report = render_chaos_report(&o);
        assert!(o.passed(), "{report}");
        assert_eq!(o.scenarios.len(), 12);
        assert!(report.contains("bit-identical"), "{report}");
        assert!(report.contains("CHAOS PASS"), "{report}");
        // The always-fsync classes lost nothing.
        for s in &o.scenarios {
            if !s.loss_allowed {
                assert_eq!(s.lost, 0, "{}: {report}", s.name);
            }
        }
        // The lying-disk class actually lost something (else the fault
        // never bit) and still recovered a clean prefix.
        let short = o
            .scenarios
            .iter()
            .find(|s| s.name == "short-write")
            .unwrap();
        assert!(short.lost > 0, "{report}");
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let cfg = ChaosConfig {
            ops: 10,
            seed: 42,
            ..ChaosConfig::default()
        };
        let a = run_chaos(&cfg).unwrap();
        let b = run_chaos(&cfg).unwrap();
        for (x, y) in a.scenarios.iter().zip(&b.scenarios) {
            // The group-commit scenario drives concurrent writers, so
            // its interleaving (and thus its op count) is not
            // reproducible — only its recovery invariant is.
            if x.name == "kill9-group-commit" {
                continue;
            }
            assert_eq!(x.acked, y.acked, "{}", x.name);
            assert_eq!(x.recovered, y.recovered, "{}", x.name);
            assert_eq!(x.lost, y.lost, "{}", x.name);
        }
    }
}
