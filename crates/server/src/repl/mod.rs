//! Replication: WAL shipping to warm-standby followers, snapshot
//! catch-up, and leader failover.
//!
//! ## Shape
//!
//! The subsystem is a layer *over* the durability stack, not inside
//! it: the group-commit path is untouched, and the shipper simply
//! tails the WAL file with [`crate::wal::FrameIter`] up to the safe
//! frontier reported by [`crate::group_commit::GroupWal::frontiers`]
//! (`synced` under `--fsync always` — a flushed-but-unsynced batch can
//! still be rolled back whole; `flushed` otherwise, where nothing
//! published is ever rolled back).
//!
//! - [`proto`] — the length-prefixed TCP message set.
//! - [`ship`] — the leader side: a listener plus one session thread
//!   per follower, streaming frames and serving snapshot chunks.
//! - [`catchup`] — the follower's resumable chunked snapshot
//!   transfer (offset manifest on disk; completed chunks are never
//!   re-fetched).
//! - [`follower`] — the follower side: connect/apply loop, lag
//!   tracking, and promotion on leader loss after a grace period.
//!
//! ## Roles and promotion
//!
//! A node is either **leader** (serves writes, ships its WAL) or
//! **follower** (applies replicated frames, serves reads, rejects
//! writes with a `not_leader` redirect). `PROMOTE` — or leader-loss
//! past the configured grace — flips a follower to leader under a
//! bumped *epoch*; the epoch travels in every handshake so a deposed
//! leader's stream is refused rather than applied. Promotion runs the
//! recovery audit (A107–A109 via the existing recover path when the
//! state is reloaded; A107/A108 via [`crate::audit`] when promoting
//! live), so a new leader never starts from an unchecked state.
//!
//! ## Locking
//!
//! The hub's mutable state (leader address, per-follower progress)
//! lives in one [`TrackedMutex`] at rank `repl.state` (35): above the
//! service's state lock, below both WAL locks, so a shipper may hold
//! it while consulting the group-commit frontiers and the service may
//! publish progress while holding its own lock. Scalars every request
//! path reads (role, epoch, applied sequence) are plain atomics.

pub mod catchup;
pub mod follower;
pub mod proto;
pub mod ship;

use crate::lock_order::{classes, TrackedMutex};
use crate::protocol::{FollowerLag, ReplReport};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Shared replication state: role, epoch, and progress gauges. One hub
/// is attached to the [`crate::service::AdmissionService`] of every
/// node that participates in replication (leader or follower).
#[derive(Debug)]
pub struct ReplHub {
    /// True while this node is a follower (write requests redirect).
    follower: AtomicBool,
    /// Promotion epoch; bumped by every takeover.
    epoch: AtomicU64,
    /// Highest replicated sequence applied locally (followers).
    applied: AtomicU64,
    /// The leader's sync frontier as last heard (followers).
    source_synced: AtomicU64,
    /// Leader address + per-follower acked sequences.
    shared: TrackedMutex<Shared>,
}

#[derive(Debug)]
struct Shared {
    /// Where writes should go (the `not_leader` redirect target while
    /// a follower; informational once promoted).
    leader_addr: String,
    /// Peer address -> highest acked sequence, for connected
    /// followers (leader side).
    followers: HashMap<String, u64>,
}

impl ReplHub {
    fn new(follower: bool, epoch: u64, leader_addr: String) -> ReplHub {
        ReplHub {
            follower: AtomicBool::new(follower),
            epoch: AtomicU64::new(epoch),
            applied: AtomicU64::new(0),
            source_synced: AtomicU64::new(0),
            shared: TrackedMutex::new(
                &classes::REPL_STATE,
                Shared {
                    leader_addr,
                    followers: HashMap::new(),
                },
            ),
        }
    }

    /// A hub for a node born leader (epoch 1).
    pub fn leader() -> ReplHub {
        ReplHub::new(false, 1, String::new())
    }

    /// A hub for a follower of `leader_addr` (epoch 1 until promoted).
    pub fn follower(leader_addr: &str) -> ReplHub {
        ReplHub::new(true, 1, leader_addr.to_string())
    }

    /// Is this node currently a follower?
    pub fn is_follower(&self) -> bool {
        // Relaxed: role and epoch are independent gauges; promotion
        // correctness does not ride on ordering between them (a write
        // racing a promotion is refused either before or after — both
        // are correct at the linearization point of the flip).
        self.follower.load(Ordering::Relaxed)
    }

    /// The current promotion epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Where writes should be sent (the redirect target).
    pub fn leader_addr(&self) -> String {
        self.shared.lock().leader_addr.clone()
    }

    /// Highest replicated sequence applied locally.
    pub fn applied_seq(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// Records replicated progress (monotonic).
    pub fn set_applied(&self, seq: u64) {
        self.applied.fetch_max(seq, Ordering::Relaxed);
    }

    /// Records the leader's sync frontier as heard over the wire.
    pub fn note_source_synced(&self, seq: u64) {
        self.source_synced.fetch_max(seq, Ordering::Relaxed);
    }

    /// The leader's sync frontier as last heard.
    pub fn source_synced(&self) -> u64 {
        self.source_synced.load(Ordering::Relaxed)
    }

    /// Leader side: records a connected follower's progress.
    pub fn note_follower(&self, peer: &str, acked_seq: u64) {
        let mut s = self.shared.lock();
        let e = s.followers.entry(peer.to_string()).or_insert(0);
        *e = (*e).max(acked_seq);
    }

    /// Leader side: forgets a disconnected follower.
    pub fn drop_follower(&self, peer: &str) {
        self.shared.lock().followers.remove(peer);
    }

    /// Flips this node to leader under a fresh epoch; returns the new
    /// epoch. Idempotent on a leader (the epoch still bumps, which is
    /// harmless: epochs only ever need to grow).
    pub fn promote(&self) -> u64 {
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        self.follower.store(false, Ordering::Relaxed);
        epoch
    }

    /// Builds the STATS gauge block. `wal_synced` is the local WAL
    /// sync frontier ([`crate::group_commit::GroupWal::frontiers`]),
    /// or the applied sequence for a node without local durability.
    /// `ship_frontier` is what the shipper measures follower lag
    /// against (leader only; pass `wal_synced` when in doubt).
    pub fn report(&self, wal_synced: u64, ship_frontier: u64) -> ReplReport {
        if self.is_follower() {
            let applied = self.applied_seq();
            ReplReport {
                role: "follower",
                epoch: self.epoch(),
                wal_last_synced_seq: wal_synced,
                applied_seq: Some(applied),
                replication_lag_frames: self.source_synced().saturating_sub(applied),
                followers: Vec::new(),
            }
        } else {
            let s = self.shared.lock();
            let mut followers: Vec<FollowerLag> = s
                .followers
                .iter()
                .map(|(peer, &acked)| FollowerLag {
                    peer: peer.clone(),
                    acked_seq: acked,
                    lag_frames: ship_frontier.saturating_sub(acked),
                })
                .collect();
            drop(s);
            followers.sort_by(|a, b| a.peer.cmp(&b.peer));
            let max_lag = followers.iter().map(|f| f.lag_frames).max().unwrap_or(0);
            ReplReport {
                role: "leader",
                epoch: self.epoch(),
                wal_last_synced_seq: wal_synced,
                applied_seq: None,
                replication_lag_frames: max_lag,
                followers,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_flips_role_and_bumps_epoch() {
        let hub = ReplHub::follower("127.0.0.1:7000");
        assert!(hub.is_follower());
        assert_eq!(hub.epoch(), 1);
        assert_eq!(hub.leader_addr(), "127.0.0.1:7000");
        assert_eq!(hub.promote(), 2);
        assert!(!hub.is_follower());
        assert_eq!(hub.epoch(), 2);
    }

    #[test]
    fn progress_gauges_are_monotonic() {
        let hub = ReplHub::follower("x");
        hub.set_applied(5);
        hub.set_applied(3); // stale write must not regress
        assert_eq!(hub.applied_seq(), 5);
        hub.note_source_synced(9);
        hub.note_source_synced(7);
        assert_eq!(hub.source_synced(), 9);
        let r = hub.report(5, 5);
        assert_eq!(r.role, "follower");
        assert_eq!(r.applied_seq, Some(5));
        assert_eq!(r.replication_lag_frames, 4);
    }

    #[test]
    fn leader_report_takes_max_follower_lag() {
        let hub = ReplHub::leader();
        hub.note_follower("a:1", 10);
        hub.note_follower("b:2", 7);
        hub.note_follower("a:1", 9); // stale ack must not regress
        let r = hub.report(12, 12);
        assert_eq!(r.role, "leader");
        assert_eq!(r.replication_lag_frames, 5);
        assert_eq!(r.followers.len(), 2);
        assert_eq!(r.followers[0].peer, "a:1");
        assert_eq!(r.followers[0].lag_frames, 2);
        hub.drop_follower("b:2");
        assert_eq!(hub.report(12, 12).replication_lag_frames, 2);
    }
}
