//! Replication: WAL shipping to warm-standby followers, snapshot
//! catch-up, and leader failover.
//!
//! ## Shape
//!
//! The subsystem is a layer *over* the durability stack, not inside
//! it: the group-commit path is untouched, and the shipper simply
//! tails the WAL file with [`crate::wal::FrameIter`] up to the safe
//! frontier reported by [`crate::group_commit::GroupWal::frontiers`]
//! (`synced` under `--fsync always` — a flushed-but-unsynced batch can
//! still be rolled back whole; `flushed` otherwise, where nothing
//! published is ever rolled back).
//!
//! - [`proto`] — the length-prefixed TCP message set.
//! - [`ship`] — the leader side: a listener plus one session thread
//!   per follower, streaming frames and serving snapshot chunks.
//! - [`catchup`] — the follower's resumable chunked snapshot
//!   transfer (offset manifest on disk; completed chunks are never
//!   re-fetched).
//! - [`follower`] — the follower side: connect/apply loop, lag
//!   tracking, and promotion on leader loss after a grace period.
//!
//! ## Roles and promotion
//!
//! A node is either **leader** (serves writes, ships its WAL) or
//! **follower** (applies replicated frames, serves reads, rejects
//! writes with a `not_leader` redirect). `PROMOTE` — or leader-loss
//! past the configured grace — flips a follower to leader under a
//! bumped *epoch*; the epoch travels in every handshake so a deposed
//! leader's stream is refused rather than applied. Promotion runs the
//! recovery audit (A107–A109 via the existing recover path when the
//! state is reloaded; A107/A108 via [`crate::audit`] when promoting
//! live), so a new leader never starts from an unchecked state.
//!
//! ## Locking
//!
//! The hub's mutable state (leader address, per-follower progress)
//! lives in one [`TrackedMutex`] at rank `repl.state` (35): above the
//! service's state lock, below both WAL locks, so a shipper may hold
//! it while consulting the group-commit frontiers and the service may
//! publish progress while holding its own lock. Scalars every request
//! path reads (role, epoch, applied sequence) are plain atomics.

pub mod catchup;
pub mod follower;
pub mod proto;
pub mod ship;

use crate::lock_order::{classes, TrackedMutex};
use crate::protocol::{FollowerLag, ReplReport};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Sentinel for "no follower ack heard yet": the lease is not armed
/// until the first ack, so a leader that never had a follower never
/// seals (nobody exists who could promote against it).
const LEASE_UNARMED: u64 = u64::MAX;

/// Shared replication state: role, epoch, and progress gauges. One hub
/// is attached to the [`crate::service::AdmissionService`] of every
/// node that participates in replication (leader or follower).
#[derive(Debug)]
pub struct ReplHub {
    /// Role and epoch packed into one word (`epoch << 1 | follower`),
    /// so the pair is always published and read atomically: a reader
    /// that observes the leader role also observes the epoch that role
    /// was taken under.
    state: AtomicU64,
    /// Highest replicated sequence applied locally (followers).
    applied: AtomicU64,
    /// The leader's sync frontier as last heard (followers).
    source_synced: AtomicU64,
    /// Write lease in ms (0 = no lease configured).
    lease_ms: AtomicU64,
    /// Milliseconds since `base` of the last follower ack heard
    /// (leader side); [`LEASE_UNARMED`] until the first ack.
    last_ack_ms: AtomicU64,
    /// True while the lease has lapsed: writes shed with `sealed`.
    sealed: AtomicBool,
    /// True once a higher epoch was learned: permanently demoted.
    fenced: AtomicBool,
    /// How many fence events this node has processed.
    fence_events: AtomicU64,
    /// Operations audited as divergent at the last fence.
    divergence: AtomicU64,
    /// Monotonic base for the lease clock.
    base: Instant,
    /// Leader address + per-follower acked sequences.
    shared: TrackedMutex<Shared>,
}

#[derive(Debug)]
struct Shared {
    /// Where writes should go (the `not_leader` redirect target while
    /// a follower; informational once promoted).
    leader_addr: String,
    /// Peer address -> highest acked sequence, for connected
    /// followers (leader side).
    followers: HashMap<String, u64>,
}

impl ReplHub {
    fn new(follower: bool, epoch: u64, leader_addr: String) -> ReplHub {
        ReplHub {
            state: AtomicU64::new(epoch << 1 | u64::from(follower)),
            applied: AtomicU64::new(0),
            source_synced: AtomicU64::new(0),
            lease_ms: AtomicU64::new(0),
            last_ack_ms: AtomicU64::new(LEASE_UNARMED),
            sealed: AtomicBool::new(false),
            fenced: AtomicBool::new(false),
            fence_events: AtomicU64::new(0),
            divergence: AtomicU64::new(0),
            base: Instant::now(),
            shared: TrackedMutex::new(
                &classes::REPL_STATE,
                Shared {
                    leader_addr,
                    followers: HashMap::new(),
                },
            ),
        }
    }

    /// A hub for a node born leader (epoch 1).
    pub fn leader() -> ReplHub {
        ReplHub::new(false, 1, String::new())
    }

    /// A hub for a follower of `leader_addr` (epoch 1 until promoted).
    pub fn follower(leader_addr: &str) -> ReplHub {
        ReplHub::new(true, 1, leader_addr.to_string())
    }

    /// Is this node currently a follower?
    pub fn is_follower(&self) -> bool {
        self.state.load(Ordering::Acquire) & 1 == 1
    }

    /// The current promotion epoch.
    pub fn epoch(&self) -> u64 {
        self.state.load(Ordering::Acquire) >> 1
    }

    /// Adopts a higher epoch heard over the wire without changing the
    /// role (a follower tracking its leader's promotions).
    pub fn observe_epoch(&self, epoch: u64) {
        let _ = self
            .state
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                (epoch > cur >> 1).then_some(epoch << 1 | (cur & 1))
            });
    }

    /// Where writes should be sent (the redirect target).
    pub fn leader_addr(&self) -> String {
        self.shared.lock().leader_addr.clone()
    }

    /// Highest replicated sequence applied locally.
    pub fn applied_seq(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// Records replicated progress (monotonic).
    pub fn set_applied(&self, seq: u64) {
        self.applied.fetch_max(seq, Ordering::Relaxed);
    }

    /// Records the leader's sync frontier as heard over the wire.
    pub fn note_source_synced(&self, seq: u64) {
        self.source_synced.fetch_max(seq, Ordering::Relaxed);
    }

    /// The leader's sync frontier as last heard.
    pub fn source_synced(&self) -> u64 {
        self.source_synced.load(Ordering::Relaxed)
    }

    /// Leader side: records a connected follower's progress (from a
    /// `Hello`; does NOT feed the lease — see [`Self::note_follower_ack`]).
    pub fn note_follower(&self, peer: &str, acked_seq: u64) {
        let mut s = self.shared.lock();
        let e = s.followers.entry(peer.to_string()).or_insert(0);
        *e = (*e).max(acked_seq);
    }

    /// Leader side: records an `Ack` — progress plus the lease clock.
    /// An ack is a *response*, so it proves the follower heard leader
    /// traffic moments ago; that round-trip evidence is what makes
    /// `lease < grace` a no-dual-ack guarantee.
    pub fn note_follower_ack(&self, peer: &str, acked_seq: u64) {
        self.note_follower(peer, acked_seq);
        self.note_lease_contact();
    }

    /// Leader side: forgets a disconnected follower.
    pub fn drop_follower(&self, peer: &str) {
        self.shared.lock().followers.remove(peer);
    }

    /// Flips this node to leader under a fresh epoch; returns the
    /// (possibly unchanged) epoch. Promoting an existing leader is a
    /// true no-op: the role and epoch move together in one CAS, so a
    /// reader can never observe the leader role paired with a stale
    /// epoch, and concurrent promotions bump the epoch exactly once.
    pub fn promote(&self) -> u64 {
        loop {
            let cur = self.state.load(Ordering::Acquire);
            if cur & 1 == 0 {
                return cur >> 1; // already leader: nothing to do
            }
            let next = ((cur >> 1) + 1) << 1;
            if self
                .state
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return next >> 1;
            }
        }
    }

    /// Arms the write lease: a leader sheds writes with `sealed` once
    /// this long passes without hearing a follower ack.
    pub fn set_lease(&self, lease: std::time::Duration) {
        self.lease_ms.store(
            u64::try_from(lease.as_millis()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }

    /// The configured lease in milliseconds (0 = none).
    pub fn lease_ms(&self) -> u64 {
        self.lease_ms.load(Ordering::Relaxed)
    }

    /// Milliseconds on the hub's monotonic lease clock.
    fn now_ms(&self) -> u64 {
        u64::try_from(self.base.elapsed().as_millis()).unwrap_or(u64::MAX - 1)
    }

    /// Records a follower ack on the lease clock (the only traffic
    /// that proves the follower heard us recently — a `Hello` only
    /// proves the follower-to-leader direction works, which is not
    /// enough under a one-way blackhole).
    fn note_lease_contact(&self) {
        let now = self.now_ms();
        // Not `fetch_max`: the unarmed sentinel is `u64::MAX`, which
        // would win every max and keep the lease unarmed forever.
        let _ = self
            .last_ack_ms
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |last| {
                (last == LEASE_UNARMED || now > last).then_some(now)
            });
    }

    /// The seal decision at `now_ms`, split out so the state machine
    /// is unit-testable without waiting out a real lease. Seals when
    /// the armed lease has lapsed; un-seals when contact returns (a
    /// healed partition whose follower never promoted).
    fn seal_check(&self, now_ms: u64) -> bool {
        if self.fenced.load(Ordering::Acquire) {
            return true;
        }
        let lease = self.lease_ms.load(Ordering::Relaxed);
        if lease == 0 || self.is_follower() {
            return false;
        }
        let last = self.last_ack_ms.load(Ordering::Relaxed);
        if last == LEASE_UNARMED {
            return false;
        }
        let lapsed = now_ms.saturating_sub(last) > lease;
        self.sealed.store(lapsed, Ordering::Release);
        lapsed
    }

    /// Should the write path shed with `sealed` right now? Evaluated
    /// lazily on every write, so the seal takes effect at the first
    /// write after the lease lapses.
    pub fn write_sealed(&self) -> bool {
        self.seal_check(self.now_ms())
    }

    /// Is the node currently sealed (gauge; updated by the write
    /// path's lease checks)?
    pub fn is_sealed(&self) -> bool {
        self.sealed.load(Ordering::Acquire) || self.fenced.load(Ordering::Acquire)
    }

    /// Has this node been permanently demoted by a higher epoch?
    pub fn is_fenced(&self) -> bool {
        self.fenced.load(Ordering::Acquire)
    }

    /// Fence events processed (gauge).
    pub fn fence_events(&self) -> u64 {
        self.fence_events.load(Ordering::Relaxed)
    }

    /// Operations audited as divergent at the last fence (gauge).
    pub fn divergence_ops(&self) -> u64 {
        self.divergence.load(Ordering::Relaxed)
    }

    /// Permanently demotes this node under `epoch` (a higher epoch
    /// was learned from a promoted peer). The role flips to follower,
    /// the epoch adopts the fence's, and the node can never promote
    /// or unseal again. `new_leader` (when non-empty) becomes the
    /// redirect target; `divergence` is the audited count of acked
    /// operations the new leader never saw. Returns `false` when the
    /// fence is stale (its epoch does not exceed ours).
    pub fn fence(&self, epoch: u64, new_leader: &str, divergence: u64) -> bool {
        let raised = self
            .state
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                (epoch > cur >> 1).then_some(epoch << 1 | 1)
            })
            .is_ok();
        if !raised {
            return false;
        }
        self.fenced.store(true, Ordering::Release);
        self.sealed.store(true, Ordering::Release);
        self.fence_events.fetch_add(1, Ordering::Relaxed);
        self.divergence.store(divergence, Ordering::Relaxed);
        if !new_leader.is_empty() {
            self.shared.lock().leader_addr = new_leader.to_string();
        }
        true
    }

    /// Builds the STATS gauge block. `wal_synced` is the local WAL
    /// sync frontier ([`crate::group_commit::GroupWal::frontiers`]),
    /// or the applied sequence for a node without local durability.
    /// `ship_frontier` is what the shipper measures follower lag
    /// against (leader only; pass `wal_synced` when in doubt).
    pub fn report(&self, wal_synced: u64, ship_frontier: u64) -> ReplReport {
        if self.is_follower() {
            let applied = self.applied_seq();
            ReplReport {
                role: "follower",
                epoch: self.epoch(),
                wal_last_synced_seq: wal_synced,
                applied_seq: Some(applied),
                replication_lag_frames: self.source_synced().saturating_sub(applied),
                followers: Vec::new(),
                sealed: self.is_sealed(),
                lease_ms: self.lease_ms(),
                fence_events: self.fence_events(),
            }
        } else {
            let s = self.shared.lock();
            let mut followers: Vec<FollowerLag> = s
                .followers
                .iter()
                .map(|(peer, &acked)| FollowerLag {
                    peer: peer.clone(),
                    acked_seq: acked,
                    lag_frames: ship_frontier.saturating_sub(acked),
                })
                .collect();
            drop(s);
            followers.sort_by(|a, b| a.peer.cmp(&b.peer));
            let max_lag = followers.iter().map(|f| f.lag_frames).max().unwrap_or(0);
            ReplReport {
                role: "leader",
                epoch: self.epoch(),
                wal_last_synced_seq: wal_synced,
                applied_seq: None,
                replication_lag_frames: max_lag,
                followers,
                sealed: self.write_sealed(),
                lease_ms: self.lease_ms(),
                fence_events: self.fence_events(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_flips_role_and_bumps_epoch() {
        let hub = ReplHub::follower("127.0.0.1:7000");
        assert!(hub.is_follower());
        assert_eq!(hub.epoch(), 1);
        assert_eq!(hub.leader_addr(), "127.0.0.1:7000");
        assert_eq!(hub.promote(), 2);
        assert!(!hub.is_follower());
        assert_eq!(hub.epoch(), 2);
    }

    #[test]
    fn promoting_a_leader_is_a_true_no_op() {
        let hub = ReplHub::leader();
        assert_eq!(hub.epoch(), 1);
        assert_eq!(hub.promote(), 1, "a leader's epoch must not bump");
        assert_eq!(hub.epoch(), 1);
        assert!(!hub.is_follower());
        // A real promotion still bumps exactly once.
        let hub = ReplHub::follower("x");
        assert_eq!(hub.promote(), 2);
        assert_eq!(hub.promote(), 2, "second promote is a no-op");
    }

    #[test]
    fn lease_seal_state_machine() {
        let hub = ReplHub::leader();
        // No lease configured: never seals.
        assert!(!hub.seal_check(10_000_000));
        hub.set_lease(std::time::Duration::from_millis(100));
        // Lease armed only by the first ack.
        assert!(!hub.seal_check(10_000_000), "unarmed lease never seals");
        hub.note_follower_ack("f:1", 3);
        let t0 = hub.last_ack_ms.load(Ordering::Relaxed);
        assert!(!hub.seal_check(t0 + 100), "within the lease");
        assert!(hub.seal_check(t0 + 101), "past the lease");
        assert!(hub.is_sealed());
        // Contact returning (healed partition, no promotion) un-seals.
        hub.note_follower_ack("f:1", 4);
        let t1 = hub.last_ack_ms.load(Ordering::Relaxed);
        assert!(!hub.seal_check(t1 + 1));
        assert!(!hub.is_sealed());
    }

    #[test]
    fn followers_and_unleased_leaders_never_seal() {
        let hub = ReplHub::follower("x");
        hub.set_lease(std::time::Duration::from_millis(1));
        hub.note_follower_ack("f:1", 1);
        assert!(!hub.seal_check(u64::MAX - 2), "followers have no lease");
    }

    #[test]
    fn fencing_is_permanent_and_epoch_guarded() {
        let hub = ReplHub::leader();
        hub.set_lease(std::time::Duration::from_millis(50));
        // A stale fence (epoch not above ours) is refused.
        assert!(!hub.fence(1, "new:1", 0));
        assert!(!hub.is_fenced());
        // A real fence demotes, adopts the epoch, and redirects.
        assert!(hub.fence(3, "new:1", 7));
        assert!(hub.is_fenced());
        assert!(hub.is_follower());
        assert_eq!(hub.epoch(), 3);
        assert_eq!(hub.leader_addr(), "new:1");
        assert_eq!(hub.fence_events(), 1);
        assert_eq!(hub.divergence_ops(), 7);
        // Fenced wins over fresh contact: no un-seal, no promotion.
        hub.note_follower_ack("f:1", 9);
        assert!(hub.is_sealed());
        assert!(hub.seal_check(hub.now_ms()));
        // Duplicate fence at the same epoch is ignored.
        assert!(!hub.fence(3, "other:2", 1));
        assert_eq!(hub.fence_events(), 1);
        assert_eq!(hub.leader_addr(), "new:1");
    }

    #[test]
    fn observe_epoch_tracks_without_role_change() {
        let hub = ReplHub::follower("x");
        hub.observe_epoch(5);
        assert_eq!(hub.epoch(), 5);
        assert!(hub.is_follower());
        hub.observe_epoch(4); // stale: ignored
        assert_eq!(hub.epoch(), 5);
    }

    #[test]
    fn progress_gauges_are_monotonic() {
        let hub = ReplHub::follower("x");
        hub.set_applied(5);
        hub.set_applied(3); // stale write must not regress
        assert_eq!(hub.applied_seq(), 5);
        hub.note_source_synced(9);
        hub.note_source_synced(7);
        assert_eq!(hub.source_synced(), 9);
        let r = hub.report(5, 5);
        assert_eq!(r.role, "follower");
        assert_eq!(r.applied_seq, Some(5));
        assert_eq!(r.replication_lag_frames, 4);
    }

    #[test]
    fn leader_report_takes_max_follower_lag() {
        let hub = ReplHub::leader();
        hub.note_follower("a:1", 10);
        hub.note_follower("b:2", 7);
        hub.note_follower("a:1", 9); // stale ack must not regress
        let r = hub.report(12, 12);
        assert_eq!(r.role, "leader");
        assert_eq!(r.replication_lag_frames, 5);
        assert_eq!(r.followers.len(), 2);
        assert_eq!(r.followers[0].peer, "a:1");
        assert_eq!(r.followers[0].lag_frames, 2);
        hub.drop_follower("b:2");
        assert_eq!(hub.report(12, 12).replication_lag_frames, 2);
    }
}
