//! The follower side of replication: the connect/apply loop and the
//! pre-service catch-up step.
//!
//! A follower runs an ordinary [`AdmissionService`] with a
//! [`crate::repl::ReplHub`] in follower mode attached: reads are
//! served locally, writes redirect to the leader, and a background
//! thread applies the leader's WAL frames in sequence through
//! [`AdmissionService::apply_replicated`]. Any anomaly — torn frame,
//! sequence gap, undecodable payload — tears the session down and
//! reconnects; the re-sent `Hello` carries the applied sequence, so
//! the leader rewinds and duplicate deliveries land as idempotent
//! no-ops. When the leader goes silent past the configured grace the
//! thread promotes the node through the audited
//! [`AdmissionService::promote`] path and exits.
//!
//! [`catch_up`] runs *before* the service is built: if the leader's
//! WAL has been compacted past the local state, the latest snapshot is
//! pulled (resumably — see [`super::catchup`]) and the local WAL is
//! reset to the snapshot sequence, so the normal recovery path then
//! reconstructs exactly the leader's state and streaming continues
//! from there.

use super::catchup::{fetch_snapshot, CatchupOpts, CatchupOutcome, TransferSpec};
use super::proto::{read_msg, write_msg, ReplMsg};
use crate::faultfs::RealFile;
use crate::service::AdmissionService;
use crate::snapshot::load_snapshot;
use crate::wal::{crc32, decode_payload, FrameIter, FsyncPolicy, Wal, WAL_FILE};
use std::fs;
use std::io::{self, ErrorKind};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A source of monotonic time, injected into the follower loop so the
/// grace/lease state machine is unit-testable without waiting out real
/// timeouts. Production uses [`SystemClock`]; tests substitute a
/// manually advanced clock.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// The current instant on this clock.
    fn now(&self) -> Instant;
}

/// The real monotonic clock.
#[derive(Clone, Copy, Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// The promotion-grace state machine: tracks when the leader was last
/// heard and decides whether the silence has lapsed the grace. Kept
/// free of IO so the transitions are testable deterministically.
#[derive(Debug)]
pub struct GraceTimer {
    clock: Arc<dyn Clock>,
    last_contact: Instant,
}

impl GraceTimer {
    /// A timer that treats "now" as the last contact.
    pub fn new(clock: Arc<dyn Clock>) -> GraceTimer {
        let last_contact = clock.now();
        GraceTimer {
            clock,
            last_contact,
        }
    }

    /// The leader was heard (frame, heartbeat, or handshake): the
    /// grace window restarts from now.
    pub fn touch(&mut self) {
        self.last_contact = self.clock.now();
    }

    /// Has the leader been silent for at least `grace`?
    pub fn lapsed(&self, grace: Duration) -> bool {
        self.clock
            .now()
            .saturating_duration_since(self.last_contact)
            >= grace
    }
}

/// Knobs for the follower's replication loop.
#[derive(Clone, Debug)]
pub struct FollowerConfig {
    /// The leader's replication address (`--follower-of`).
    pub leader: String,
    /// Promote to leader after this much silence; `None` = never
    /// auto-promote (explicit `rtwc promote` only).
    pub promote_grace: Option<Duration>,
    /// Delay between reconnect attempts.
    pub reconnect_delay: Duration,
    /// Per-cycle read timeout on the session.
    pub poll: Duration,
    /// This node's own client address, advertised in the `Fence` sent
    /// to a deposed leader so it can redirect writes here. Empty =
    /// nothing to advertise.
    pub advertise: String,
    /// Time source for the grace state machine.
    pub clock: Arc<dyn Clock>,
}

impl FollowerConfig {
    /// Defaults for `leader`: no auto-promotion, 50 ms reconnect
    /// delay, 25 ms poll, the system clock.
    pub fn new(leader: &str) -> FollowerConfig {
        FollowerConfig {
            leader: leader.to_string(),
            promote_grace: None,
            reconnect_delay: Duration::from_millis(50),
            poll: Duration::from_millis(25),
            advertise: String::new(),
            clock: Arc::new(SystemClock),
        }
    }
}

/// The running follower loop. [`Follower::stop`] joins the thread;
/// dropping without it detaches (the thread exits with the process or
/// on promotion).
#[derive(Debug)]
pub struct Follower {
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl Follower {
    /// Starts the connect/apply loop. The service must have a hub in
    /// follower mode attached.
    pub fn spawn(service: Arc<AdmissionService>, cfg: FollowerConfig) -> io::Result<Follower> {
        if service.repl_hub().is_none() {
            return Err(io::Error::new(
                ErrorKind::InvalidInput,
                "follower without a replication hub",
            ));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let run_stop = Arc::clone(&stop);
        let thread = thread::Builder::new()
            .name("repl-follow".to_string())
            .spawn(move || run(&service, &cfg, &run_stop))?;
        Ok(Follower {
            stop,
            thread: Some(thread),
        })
    }

    /// Stops the loop and joins the thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

fn run(service: &AdmissionService, cfg: &FollowerConfig, stop: &AtomicBool) {
    let hub = service.repl_hub().expect("checked at spawn").clone();
    // Locally recovered history counts as applied: a follower whose
    // catch-up snapshot already covers the leader's whole stream gets
    // no frames at all, and the gauge would otherwise sit at zero
    // (reporting a bogus lag) until the first new write.
    hub.set_applied(service.seq());
    let mut promoted = false;
    let mut timer = GraceTimer::new(Arc::clone(&cfg.clock));
    while !stop.load(Ordering::Relaxed) && hub.is_follower() {
        if let Ok(stream) = connect(&cfg.leader) {
            // Any session error (disconnect, torn frame, gap, stale
            // leader) lands here; the reconnect below re-Hellos from
            // the applied sequence.
            if let Err(e) = session(stream, service, cfg, stop, &mut timer) {
                if e.kind() == ErrorKind::InvalidInput {
                    // The leader advertised a lease our grace does not
                    // strictly exceed: promoting could overlap a live
                    // lease and void the no-dual-ack guarantee. Refuse
                    // to run at all rather than run unsafely.
                    eprintln!("fatal: {e}");
                    return;
                }
                if std::env::var_os("RTWC_REPL_DEBUG").is_some() {
                    eprintln!("follower session error: {e}");
                }
            }
        }
        if stop.load(Ordering::Relaxed) || !hub.is_follower() {
            break;
        }
        if let Some(grace) = cfg.promote_grace {
            if timer.lapsed(grace) {
                if let crate::protocol::Response::Promoted { epoch, .. } = service.promote() {
                    println!("promoted to leader (epoch {epoch}) after leader loss");
                    promoted = true;
                }
                // Promotion flips the role and the loop exits; an
                // audit refusal keeps retrying the leader instead.
                timer.touch();
                continue;
            }
        }
        thread::sleep(cfg.reconnect_delay);
    }
    if promoted && !stop.load(Ordering::Relaxed) {
        // Fence the deposed leader: keep dialing its replication
        // address until the Fence lands (a partitioned peer hears it
        // at heal time) so it permanently demotes and audits its
        // divergent suffix instead of ever acking writes again.
        if deliver_fence(&cfg.leader, &hub, &cfg.advertise, stop, cfg.reconnect_delay) {
            println!(
                "fenced deposed leader at {} (epoch {})",
                cfg.leader,
                hub.epoch()
            );
        }
    }
}

/// Dials the deposed leader's replication address until a `Fence` for
/// our epoch is delivered or `stop` is raised. Returns whether the
/// fence was confirmed.
///
/// Confirmation is a heartbeat carrying an epoch at least ours: the
/// peer only echoes that epoch after processing the fence. Accepting
/// *any* reply would race a partitioned link — the fence bytes can be
/// swallowed by the partition while a steady-state heartbeat (still
/// stamped with the old epoch) crosses a just-healed link on the same
/// connection, and a false confirmation here would lose the fence
/// forever.
fn deliver_fence(
    leader: &str,
    hub: &crate::repl::ReplHub,
    advertise: &str,
    stop: &AtomicBool,
    retry: Duration,
) -> bool {
    while !stop.load(Ordering::Relaxed) {
        if let Ok(mut s) = connect(leader) {
            let _ = s.set_nodelay(true);
            let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
            let epoch = hub.epoch();
            let sent = write_msg(
                &mut s,
                &ReplMsg::Fence {
                    epoch,
                    applied_seq: hub.applied_seq(),
                    addr: advertise.to_string(),
                },
            );
            let confirmed = matches!(
                read_msg(&mut s),
                Ok(ReplMsg::Heartbeat { epoch: e, .. }) if e >= epoch
            );
            if sent.is_ok() && confirmed {
                return true;
            }
        }
        thread::sleep(retry);
    }
    false
}

fn connect(leader: &str) -> io::Result<TcpStream> {
    let addr = leader.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            ErrorKind::InvalidInput,
            "leader address resolves to nothing",
        )
    })?;
    TcpStream::connect_timeout(&addr, Duration::from_millis(500))
}

/// One connected session: handshake, then apply frames until the
/// stream breaks, the node stops being a follower, or the leader goes
/// silent past the grace.
fn session(
    mut stream: TcpStream,
    service: &AdmissionService,
    cfg: &FollowerConfig,
    stop: &AtomicBool,
    timer: &mut GraceTimer,
) -> io::Result<()> {
    let hub = service.repl_hub().expect("checked at spawn");
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(cfg.poll))?;
    let local_seq = service.seq();
    hub.set_applied(local_seq);
    write_msg(
        &mut stream,
        &ReplMsg::Hello {
            epoch: hub.epoch(),
            applied_seq: local_seq,
        },
    )?;
    let mut acked = local_seq;
    let mut unacked = 0u32;
    while !stop.load(Ordering::Relaxed) && hub.is_follower() {
        match read_msg(&mut stream) {
            Ok(ReplMsg::Welcome {
                epoch,
                synced_seq,
                lease_ms,
                ..
            }) => {
                if epoch < hub.epoch() {
                    return Err(io::Error::other(format!(
                        "stale leader (epoch {epoch} < local {})",
                        hub.epoch()
                    )));
                }
                hub.observe_epoch(epoch);
                if let Some(grace) = cfg.promote_grace {
                    // The no-dual-ack argument needs the grace to
                    // strictly exceed the leader's lease; a violating
                    // pairing is fatal (caught in `run`, never
                    // promotes) rather than silently unsafe.
                    let grace_ms = u64::try_from(grace.as_millis()).unwrap_or(u64::MAX);
                    if lease_ms > 0 && grace_ms <= lease_ms {
                        return Err(io::Error::new(
                            ErrorKind::InvalidInput,
                            format!(
                                "promotion grace {grace_ms}ms must strictly exceed the \
                                 leader's lease {lease_ms}ms"
                            ),
                        ));
                    }
                }
                hub.note_source_synced(synced_seq);
                timer.touch();
            }
            Ok(ReplMsg::Frame {
                seq,
                epoch,
                crc,
                payload,
            }) => {
                if epoch < hub.epoch() {
                    return Err(io::Error::other(format!(
                        "frame from a stale epoch {epoch} (local {})",
                        hub.epoch()
                    )));
                }
                hub.observe_epoch(epoch);
                if crc32(&payload) != crc {
                    return Err(io::Error::new(
                        ErrorKind::InvalidData,
                        format!("torn replicated frame at seq {seq}"),
                    ));
                }
                let record = decode_payload(&payload).ok_or_else(|| {
                    io::Error::new(
                        ErrorKind::InvalidData,
                        format!("undecodable replicated frame at seq {seq}"),
                    )
                })?;
                service
                    .apply_replicated(seq, record.req_id, &record.op)
                    .map_err(io::Error::other)?;
                timer.touch();
                unacked += 1;
                // Ack in small batches so leader-side lag gauges stay
                // honest without an ack per frame.
                if unacked >= 32 {
                    acked = hub.applied_seq();
                    unacked = 0;
                    write_msg(
                        &mut stream,
                        &ReplMsg::Ack {
                            epoch: hub.epoch(),
                            applied_seq: acked,
                        },
                    )?;
                }
            }
            Ok(ReplMsg::Heartbeat { epoch, synced_seq }) => {
                if epoch < hub.epoch() {
                    return Err(io::Error::other(format!(
                        "heartbeat from a stale epoch {epoch} (local {})",
                        hub.epoch()
                    )));
                }
                hub.observe_epoch(epoch);
                hub.note_source_synced(synced_seq);
                timer.touch();
                // Echo an ack so an idle leader keeps hearing us: the
                // leader's write lease is fed only by acks (round-trip
                // evidence), and a quiet-but-healthy link must not
                // seal it.
                acked = hub.applied_seq();
                unacked = 0;
                write_msg(
                    &mut stream,
                    &ReplMsg::Ack {
                        epoch: hub.epoch(),
                        applied_seq: acked,
                    },
                )?;
            }
            Ok(ReplMsg::SnapStart { .. }) => {
                // Mid-run compaction past our applied sequence: the
                // in-memory state cannot absorb a snapshot. Surface it;
                // the operator restarts the follower, whose catch-up
                // step installs the image before the service is built.
                return Err(io::Error::other(
                    "leader compacted past local state; restart the follower to catch up",
                ));
            }
            Ok(other) => {
                return Err(io::Error::new(
                    ErrorKind::InvalidData,
                    format!("unexpected {other:?} from the leader"),
                ))
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                let applied = hub.applied_seq();
                if applied > acked {
                    acked = applied;
                    unacked = 0;
                    write_msg(
                        &mut stream,
                        &ReplMsg::Ack {
                            epoch: hub.epoch(),
                            applied_seq: applied,
                        },
                    )?;
                }
                if let Some(grace) = cfg.promote_grace {
                    if timer.lapsed(grace) {
                        return Err(io::Error::new(
                            ErrorKind::TimedOut,
                            "leader silent past the promotion grace",
                        ));
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// The highest sequence the local durability directory can recover to
/// (snapshot sequence plus intact WAL tail), without building a
/// service. Zero for a fresh directory.
fn local_recoverable_seq(dir: &Path) -> u64 {
    let snap_seq = load_snapshot(dir).ok().flatten().map_or(0, |d| d.seq);
    let wal_seq = fs::read(dir.join(WAL_FILE))
        .ok()
        .and_then(|bytes| {
            let mut frames = FrameIter::new(&bytes).ok()?;
            let n = frames.by_ref().count() as u64;
            Some(frames.base_seq() + n)
        })
        .unwrap_or(0);
    snap_seq.max(wal_seq)
}

/// Pre-service catch-up: asks the leader whether the local state is
/// reachable by frames alone; if not (the leader's WAL base has moved
/// past it), pulls the leader's snapshot resumably and resets the
/// local WAL to its sequence. Run this *before* recovery so the
/// normal recover-and-audit path rebuilds exactly the leader's state.
///
/// Returns `Ok(None)` when no transfer was needed (including an
/// unreachable leader: the follower loop keeps retrying after the
/// service is up). The caller passes `fsync` so the reset WAL is
/// opened under the same policy the service will use.
pub fn catch_up(
    leader: &str,
    dir: &Path,
    fsync: FsyncPolicy,
    opts: &CatchupOpts,
) -> io::Result<Option<CatchupOutcome>> {
    let Ok(mut stream) = connect(leader) else {
        return Ok(None);
    };
    stream.set_nodelay(true)?;
    // Generous: catch-up is a startup step, not the steady-state loop.
    stream.set_read_timeout(Some(Duration::from_secs(1)))?;
    write_msg(
        &mut stream,
        &ReplMsg::Hello {
            epoch: 1,
            applied_seq: local_recoverable_seq(dir),
        },
    )?;
    match read_msg(&mut stream)? {
        ReplMsg::Welcome { .. } => {}
        other => {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                format!("expected Welcome, got {other:?}"),
            ))
        }
    }
    // The leader now either streams frames (local state is reachable —
    // nothing to do here, the live session will apply them), stays
    // quiet until a heartbeat, or opens a snapshot transfer.
    let spec = match read_msg(&mut stream) {
        Ok(ReplMsg::SnapStart {
            snap_seq,
            total_len,
            crc,
            chunk_size,
        }) => TransferSpec {
            snap_seq,
            total_len,
            crc,
            chunk_size,
        },
        Ok(ReplMsg::Frame { .. } | ReplMsg::Heartbeat { .. }) => return Ok(None),
        Ok(other) => {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                format!("unexpected {other:?} during catch-up"),
            ))
        }
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
            return Ok(None)
        }
        Err(e) => return Err(e),
    };
    let outcome = fetch_snapshot(&mut stream, dir, &spec, opts)?;
    // The installed snapshot supersedes whatever the local WAL held;
    // recovery refuses a WAL whose base is behind the snapshot with a
    // gap to it, and the group-commit frontier math needs the base to
    // match. Reset it to continue exactly from the snapshot.
    let (mut wal, _) = Wal::open(Box::new(RealFile::open(&dir.join(WAL_FILE))?), fsync)?;
    wal.reset(outcome.snap_seq)?;
    Ok(Some(outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::recover;
    use crate::repl::ship::{Shipper, ShipperConfig};
    use crate::repl::ReplHub;
    use crate::service::{AdmissionService, Durability};
    use crate::snapshot::SNAPSHOT_FILE;
    use crate::wal::encode_payload;
    use crate::GroupWal;
    use std::net::TcpListener;
    use wormnet_topology::Mesh;

    fn mesh() -> Mesh {
        Mesh::mesh2d(8, 8)
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rtwc-follower-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn durable_leader(dir: &Path, snapshot_every: u64) -> Arc<AdmissionService> {
        let (state, wal, _) = recover(&mesh(), dir, FsyncPolicy::Always).unwrap();
        let service = AdmissionService::with_durability(
            mesh(),
            state,
            Durability {
                dir: dir.to_path_buf(),
                wal: GroupWal::new(wal),
                snapshot_every,
            },
        );
        service.attach_repl(Arc::new(ReplHub::leader()));
        Arc::new(service)
    }

    /// Admits `n` streams on disjoint rows starting at `start`: the XY
    /// routes never share a link, so every admit succeeds.
    fn admit_n(service: &AdmissionService, start: u64, n: u64) {
        for k in 0..n {
            let row = (start + k) as u32;
            assert!(row < 8, "rows exhausted");
            let r = service.admit(100 + start + k, (0, row), (5, row), 2, 50, 4, None);
            assert!(
                matches!(r, crate::protocol::Response::Admitted { .. }),
                "{r:?}"
            );
        }
    }

    fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if done() {
                return true;
            }
            thread::sleep(Duration::from_millis(10));
        }
        false
    }

    #[test]
    fn follower_applies_the_leaders_stream_live() {
        let dir = tmpdir("live");
        let leader = durable_leader(&dir, 0);
        admit_n(&leader, 0, 3);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let shipper = Shipper::spawn(
            listener,
            Arc::clone(&leader),
            ShipperConfig::new(dir.clone()),
        )
        .unwrap();

        let standby = Arc::new(AdmissionService::new(mesh()));
        standby.attach_repl(Arc::new(ReplHub::follower(&shipper.addr().to_string())));
        let follower = Follower::spawn(
            Arc::clone(&standby),
            FollowerConfig::new(&shipper.addr().to_string()),
        )
        .unwrap();

        assert!(
            wait_until(Duration::from_secs(10), || standby.seq() >= 3),
            "follower never applied the backlog (applied {})",
            standby.seq()
        );
        // Live tail: new leader writes flow through the open session.
        admit_n(&leader, 3, 2);
        assert!(
            wait_until(Duration::from_secs(10), || standby.seq() >= 5),
            "follower never applied the live tail (applied {})",
            standby.seq()
        );
        assert_eq!(standby.admitted_count(), leader.admitted_count());
        assert_eq!(standby.audit().unwrap(), 5);

        follower.stop();
        shipper.stop();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_frame_tears_the_session_down_for_a_clean_reconnect() {
        // A hand-rolled "leader" that serves one corrupt frame on the
        // first connection and an honest stream on the second.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let spec = rtwc_core::StreamSpec::new(
            wormnet_topology::NodeId(0),
            wormnet_topology::NodeId(63),
            1,
            200,
            2,
            200,
        );
        let op = crate::service::AcceptedOp::Admit {
            handle: 0,
            spec: spec.clone(),
        };
        let payload = encode_payload(7, &op);
        let fake = thread::spawn(move || {
            for attempt in 0..2 {
                let (mut s, _) = listener.accept().unwrap();
                let hello = read_msg(&mut s).unwrap();
                assert!(matches!(hello, ReplMsg::Hello { .. }), "{hello:?}");
                write_msg(
                    &mut s,
                    &ReplMsg::Welcome {
                        epoch: 1,
                        base_seq: 0,
                        synced_seq: 1,
                        lease_ms: 0,
                    },
                )
                .unwrap();
                let crc = crc32(&payload);
                write_msg(
                    &mut s,
                    &ReplMsg::Frame {
                        seq: 1,
                        epoch: 1,
                        // First attempt lies about the checksum.
                        crc: if attempt == 0 { crc ^ 0xffff } else { crc },
                        payload: payload.clone(),
                    },
                )
                .unwrap();
                // Hold the socket open until the follower reacts.
                let _ = read_msg(&mut s);
            }
        });

        let standby = Arc::new(AdmissionService::new(mesh()));
        standby.attach_repl(Arc::new(ReplHub::follower(&addr.to_string())));
        let follower =
            Follower::spawn(Arc::clone(&standby), FollowerConfig::new(&addr.to_string())).unwrap();
        assert!(
            wait_until(Duration::from_secs(10), || standby.seq() >= 1),
            "the reconnect never delivered the honest frame"
        );
        assert_eq!(standby.admitted_count(), 1);
        follower.stop();
        fake.join().unwrap();
    }

    #[test]
    fn deposed_leader_drops_a_follower_from_a_newer_epoch() {
        let dir = tmpdir("deposed");
        let leader = durable_leader(&dir, 0);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let shipper = Shipper::spawn(
            listener,
            Arc::clone(&leader),
            ShipperConfig::new(dir.clone()),
        )
        .unwrap();

        // A peer from promotion epoch 99 says hello: the stale leader
        // must drop the connection rather than stream to it.
        let mut s = TcpStream::connect(shipper.addr()).unwrap();
        write_msg(
            &mut s,
            &ReplMsg::Hello {
                epoch: 99,
                applied_seq: 0,
            },
        )
        .unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let err = read_msg(&mut s).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof, "{err:?}");

        shipper.stop();
        fs::remove_dir_all(&dir).ok();
    }

    /// A manually advanced clock for deterministic grace tests.
    #[derive(Clone, Debug)]
    struct TestClock(Arc<std::sync::Mutex<Instant>>);

    impl TestClock {
        fn new() -> TestClock {
            TestClock(Arc::new(std::sync::Mutex::new(Instant::now())))
        }

        fn advance(&self, by: Duration) {
            let mut t = self.0.lock().unwrap();
            *t = t.checked_add(by).unwrap();
        }
    }

    impl Clock for TestClock {
        fn now(&self) -> Instant {
            *self.0.lock().unwrap()
        }
    }

    #[test]
    fn grace_timer_lapses_and_resets_deterministically() {
        let clock = TestClock::new();
        let mut timer = GraceTimer::new(Arc::new(clock.clone()));
        let grace = Duration::from_millis(100);
        assert!(!timer.lapsed(grace), "fresh timer must not have lapsed");
        clock.advance(Duration::from_millis(99));
        assert!(!timer.lapsed(grace), "one ms short of the grace");
        clock.advance(Duration::from_millis(1));
        assert!(timer.lapsed(grace), "exactly the grace lapses");
        // A heartbeat resets the window in full.
        timer.touch();
        assert!(!timer.lapsed(grace));
        clock.advance(Duration::from_millis(99));
        timer.touch(); // another heartbeat just in time
        clock.advance(Duration::from_millis(99));
        assert!(!timer.lapsed(grace), "each contact restarts the window");
        clock.advance(Duration::from_millis(1));
        assert!(timer.lapsed(grace));
    }

    #[test]
    fn stale_leader_handshake_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fake = thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let hello = read_msg(&mut s).unwrap();
            let ReplMsg::Hello { epoch, .. } = hello else {
                panic!("expected Hello, got {hello:?}");
            };
            assert_eq!(epoch, 5, "the follower must advertise its epoch");
            // This "leader" is from a deposed epoch: the follower must
            // hang up rather than apply anything it streams.
            write_msg(
                &mut s,
                &ReplMsg::Welcome {
                    epoch: 1,
                    base_seq: 0,
                    synced_seq: 9,
                    lease_ms: 0,
                },
            )
            .unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let err = read_msg(&mut s).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::UnexpectedEof, "{err:?}");
        });

        let standby = Arc::new(AdmissionService::new(mesh()));
        let hub = Arc::new(ReplHub::follower(&addr.to_string()));
        hub.observe_epoch(5);
        standby.attach_repl(hub);
        let follower =
            Follower::spawn(Arc::clone(&standby), FollowerConfig::new(&addr.to_string())).unwrap();
        fake.join().unwrap();
        follower.stop();
        assert_eq!(standby.seq(), 0, "nothing from a stale leader applies");
    }

    #[test]
    fn unsafe_grace_versus_lease_refuses_to_promote() {
        // The leader advertises a 10 s lease; the follower's 50 ms
        // grace does not exceed it. An unchecked follower would
        // promote after 50 ms of silence — inside the lease, while the
        // leader still acks writes. The Welcome check must make this
        // pairing fatal instead.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fake = thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = read_msg(&mut s).unwrap();
            write_msg(
                &mut s,
                &ReplMsg::Welcome {
                    epoch: 1,
                    base_seq: 0,
                    synced_seq: 0,
                    lease_ms: 10_000,
                },
            )
            .unwrap();
            // Go silent, holding the socket open past the grace.
            thread::sleep(Duration::from_millis(400));
        });

        let standby = Arc::new(AdmissionService::new(mesh()));
        let hub = Arc::new(ReplHub::follower(&addr.to_string()));
        standby.attach_repl(Arc::clone(&hub));
        let mut cfg = FollowerConfig::new(&addr.to_string());
        cfg.promote_grace = Some(Duration::from_millis(50));
        let follower = Follower::spawn(Arc::clone(&standby), cfg).unwrap();
        thread::sleep(Duration::from_millis(300));
        assert!(hub.is_follower(), "an unsafe grace must never promote");
        assert_eq!(hub.epoch(), 1);
        follower.stop();
        fake.join().unwrap();
    }

    #[test]
    fn catch_up_installs_the_snapshot_and_resets_the_wal() {
        let leader_dir = tmpdir("catchup-leader");
        let follower_dir = tmpdir("catchup-follower");
        // Leader compacts aggressively: after a few ops the WAL base
        // has moved and a fresh follower needs the snapshot.
        let leader = durable_leader(&leader_dir, 2);
        admit_n(&leader, 0, 5);
        assert!(
            leader.wal_base_seq().unwrap() > 0,
            "compaction never fired; the scenario needs a moved base"
        );

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let shipper = Shipper::spawn(
            listener,
            Arc::clone(&leader),
            ShipperConfig::new(leader_dir.clone()),
        )
        .unwrap();
        let addr = shipper.addr().to_string();

        let outcome = catch_up(
            &addr,
            &follower_dir,
            FsyncPolicy::Always,
            &CatchupOpts::default(),
        )
        .unwrap()
        .expect("a fresh follower behind a compacted WAL needs the snapshot");
        assert_eq!(outcome.snap_seq, leader.wal_base_seq().unwrap());
        // The local WAL now continues exactly from the snapshot.
        let bytes = fs::read(follower_dir.join(WAL_FILE)).unwrap();
        assert_eq!(FrameIter::new(&bytes).unwrap().base_seq(), outcome.snap_seq);
        assert!(follower_dir.join(SNAPSHOT_FILE).exists());

        // An up-to-date directory needs nothing on a second pass.
        assert_eq!(
            local_recoverable_seq(&follower_dir),
            outcome.snap_seq,
            "recoverable seq must reflect the installed snapshot"
        );

        shipper.stop();
        fs::remove_dir_all(&leader_dir).ok();
        fs::remove_dir_all(&follower_dir).ok();
    }
}
