//! The leader side of replication: a listener plus one session thread
//! per connected follower.
//!
//! Each session is a tiny state machine over one TCP connection. The
//! read timeout doubles as the pacing clock: every cycle the session
//! first drains whatever the follower sent (`Hello`, `Ack`,
//! `GetChunk`), then ships WAL frames between the follower's cursor
//! and the durable frontier, opening a chunked snapshot transfer when
//! the follower is behind the compacted WAL base, and finally emits a
//! heartbeat when the link has been quiet.
//!
//! The shipper never touches the group-commit internals: it re-reads
//! the WAL *file* with [`FrameIter`] and trusts
//! [`AdmissionService::ship_frontier`] for what is safe to publish.
//! Transient file races with a concurrent compaction (the file being
//! swapped under us, a half-written snapshot) are simply skipped —
//! the next cycle sees a consistent pair. During a snapshot transfer
//! the whole image is pinned in memory, so a compaction replacing
//! `snapshot.bin` mid-transfer cannot tear the bytes being served.

use super::catchup::chunk_reply;
use super::proto::{read_msg, write_msg, ReplMsg, DEFAULT_CHUNK};
use crate::service::AdmissionService;
use crate::snapshot::{parse_snapshot, SNAPSHOT_FILE};
use crate::wal::{FrameIter, WAL_FILE};
use std::fs;
use std::io::{self, ErrorKind};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Knobs for the leader's replication listener.
#[derive(Clone, Debug)]
pub struct ShipperConfig {
    /// The leader's durability directory (WAL + snapshot live here).
    pub dir: PathBuf,
    /// Snapshot-transfer chunk size, bytes.
    pub chunk_size: u32,
    /// Per-cycle read timeout; also the shipping poll interval.
    pub poll: Duration,
    /// Heartbeat interval on a quiet link.
    pub heartbeat: Duration,
}

impl ShipperConfig {
    /// Defaults for `dir`: 64 KiB chunks, 25 ms poll, 250 ms
    /// heartbeat.
    pub fn new(dir: PathBuf) -> ShipperConfig {
        ShipperConfig {
            dir,
            chunk_size: DEFAULT_CHUNK,
            poll: Duration::from_millis(25),
            heartbeat: Duration::from_millis(250),
        }
    }
}

/// The running replication listener. Dropping it without [`Shipper::stop`]
/// detaches the threads (they exit with the process); `stop` joins
/// them.
#[derive(Debug)]
pub struct Shipper {
    stop: Arc<AtomicBool>,
    addr: std::net::SocketAddr,
    accept: Option<thread::JoinHandle<()>>,
}

impl Shipper {
    /// Starts accepting followers on `listener`. The service must have
    /// a [`crate::repl::ReplHub`] attached and local durability (the
    /// WAL file is what gets shipped).
    pub fn spawn(
        listener: TcpListener,
        service: Arc<AdmissionService>,
        cfg: ShipperConfig,
    ) -> io::Result<Shipper> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept = thread::Builder::new()
            .name("repl-ship".to_string())
            .spawn(move || accept_loop(listener, service, cfg, accept_stop))?;
        Ok(Shipper {
            stop,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound replication address (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops accepting, closes every session, and joins the threads.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<AdmissionService>,
    cfg: ShipperConfig,
    stop: Arc<AtomicBool>,
) {
    let mut sessions: Vec<thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let service = Arc::clone(&service);
                let cfg = cfg.clone();
                let stop = Arc::clone(&stop);
                let spawned = thread::Builder::new()
                    .name(format!("repl-ship-{peer}"))
                    .spawn(move || {
                        let peer = peer.to_string();
                        let _ = session(stream, &peer, &service, &cfg, &stop);
                        if let Some(hub) = service.repl_hub() {
                            hub.drop_follower(&peer);
                        }
                    });
                if let Ok(h) = spawned {
                    sessions.push(h);
                }
                sessions.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
    for h in sessions {
        let _ = h.join();
    }
}

/// One follower session. Returns when the peer disconnects, the
/// shipper stops, or the protocol is violated.
fn session(
    stream: TcpStream,
    peer: &str,
    service: &AdmissionService,
    cfg: &ShipperConfig,
    stop: &AtomicBool,
) -> io::Result<()> {
    let hub = service.repl_hub().ok_or_else(|| {
        io::Error::new(ErrorKind::InvalidInput, "shipper without a replication hub")
    })?;
    let mut stream = stream;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(cfg.poll))?;

    // Where this follower is: `None` until its Hello arrives. During a
    // snapshot transfer the image is pinned here and frame shipping
    // pauses until the follower re-Hellos at the snapshot sequence.
    let mut cursor: Option<u64> = None;
    let mut xfer: Option<Vec<u8>> = None;
    let mut last_beat = Instant::now();

    while !stop.load(Ordering::Relaxed) {
        // Drain everything the follower sent this cycle.
        loop {
            match read_msg(&mut stream) {
                Ok(ReplMsg::Hello { epoch, applied_seq }) => {
                    if epoch > hub.epoch() {
                        // A follower promoted past us: this leader is
                        // deposed. Fence permanently (demote, audit
                        // the divergent suffix) and drop the session.
                        service.fence(epoch, applied_seq, "");
                        return Err(io::Error::other(format!("superseded by epoch {epoch}")));
                    }
                    let frontier = service.ship_frontier().unwrap_or(0);
                    write_msg(
                        &mut stream,
                        &ReplMsg::Welcome {
                            epoch: hub.epoch(),
                            base_seq: service.wal_base_seq().unwrap_or(0),
                            synced_seq: frontier,
                            lease_ms: hub.lease_ms(),
                        },
                    )?;
                    cursor = Some(applied_seq);
                    xfer = None;
                    hub.note_follower(peer, applied_seq);
                }
                Ok(ReplMsg::Ack { epoch, applied_seq }) => {
                    if epoch > hub.epoch() {
                        service.fence(epoch, applied_seq, "");
                        return Err(io::Error::other(format!("superseded by epoch {epoch}")));
                    }
                    // An ack is round-trip evidence: it feeds the
                    // leader's write lease as well as the lag gauges.
                    hub.note_follower_ack(peer, applied_seq);
                }
                Ok(ReplMsg::Fence {
                    epoch,
                    applied_seq,
                    addr,
                }) => {
                    // A promoted follower is fencing us explicitly.
                    // Confirm delivery before dropping the session so
                    // the promoted node's fence loop can stop retrying.
                    service.fence(epoch, applied_seq, &addr);
                    let _ = write_msg(
                        &mut stream,
                        &ReplMsg::Heartbeat {
                            epoch: hub.epoch(),
                            synced_seq: service.ship_frontier().unwrap_or(0),
                        },
                    );
                    return Err(io::Error::other(format!("fenced by epoch {epoch}")));
                }
                Ok(ReplMsg::GetChunk { index }) => {
                    let image = xfer.as_deref().ok_or_else(|| {
                        io::Error::new(ErrorKind::InvalidData, "GetChunk without a transfer")
                    })?;
                    let reply = chunk_reply(image, cfg.chunk_size, index).ok_or_else(|| {
                        io::Error::new(
                            ErrorKind::InvalidData,
                            format!("GetChunk {index} out of range"),
                        )
                    })?;
                    write_msg(&mut stream, &reply)?;
                }
                Ok(other) => {
                    return Err(io::Error::new(
                        ErrorKind::InvalidData,
                        format!("unexpected {other:?} from a follower"),
                    ))
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    break;
                }
                Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(()),
                Err(e) => return Err(e),
            }
        }

        // Ship WAL frames up to the durable frontier.
        let frontier = service.ship_frontier().unwrap_or(0);
        if let (Some(cur), None) = (cursor, &xfer) {
            if frontier > cur {
                // A compaction can swap the file between the read and
                // the parse; treat any inconsistency as "try again
                // next cycle" rather than a session error.
                if let Some(advanced) =
                    ship_cycle(&mut stream, cfg, hub.epoch(), cur, frontier, &mut xfer)?
                {
                    cursor = Some(advanced);
                    last_beat = Instant::now();
                }
            }
        }

        if last_beat.elapsed() >= cfg.heartbeat {
            write_msg(
                &mut stream,
                &ReplMsg::Heartbeat {
                    epoch: hub.epoch(),
                    synced_seq: frontier,
                },
            )?;
            last_beat = Instant::now();
        }
    }
    Ok(())
}

/// One shipping pass: streams the frames in `(cur, frontier]`, or
/// opens a snapshot transfer when the WAL base has moved past `cur`.
/// Returns the advanced cursor, or `None` when a transient file race
/// (mid-compaction) made this cycle unreadable. IO errors on the
/// *socket* still propagate — only local file inconsistency is
/// retried.
fn ship_cycle(
    stream: &mut TcpStream,
    cfg: &ShipperConfig,
    epoch: u64,
    cur: u64,
    frontier: u64,
    xfer: &mut Option<Vec<u8>>,
) -> io::Result<Option<u64>> {
    let Ok(wal_bytes) = fs::read(cfg.dir.join(WAL_FILE)) else {
        return Ok(None);
    };
    let Ok(frames) = FrameIter::new(&wal_bytes) else {
        return Ok(None);
    };
    if frames.base_seq() > cur {
        // The follower predates the compacted WAL: only a snapshot
        // can bring it forward. Pin the image and offer the transfer;
        // frames resume after the follower installs it and re-Hellos.
        let Ok(image) = fs::read(cfg.dir.join(SNAPSHOT_FILE)) else {
            return Ok(None);
        };
        let Ok(data) = parse_snapshot(&image) else {
            return Ok(None);
        };
        write_msg(
            stream,
            &ReplMsg::SnapStart {
                snap_seq: data.seq,
                total_len: image.len() as u64,
                crc: crate::wal::crc32(&image),
                chunk_size: cfg.chunk_size,
            },
        )?;
        *xfer = Some(image);
        return Ok(Some(cur));
    }
    let mut advanced = cur;
    for frame in frames {
        if frame.seq > cur && frame.seq <= frontier {
            write_msg(
                stream,
                &ReplMsg::Frame {
                    seq: frame.seq,
                    epoch,
                    crc: frame.crc,
                    payload: frame.payload.to_vec(),
                },
            )?;
            advanced = frame.seq;
        }
    }
    Ok(if advanced > cur { Some(advanced) } else { None })
}
