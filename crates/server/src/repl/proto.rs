//! The replication wire protocol: length-prefixed binary messages over
//! one TCP connection per follower.
//!
//! ## Framing
//!
//! ```text
//! len: u32 LE        (tag + body, 1..=MAX_BODY bytes)
//! tag: u8
//! body               (tag-specific, all integers u64/u32 LE)
//! ```
//!
//! ## Session shape
//!
//! The **follower** connects and sends [`ReplMsg::Hello`] with its
//! promotion epoch and the highest sequence it has applied. The
//! **leader** answers [`ReplMsg::Welcome`] and then either streams
//! [`ReplMsg::Frame`]s (WAL records, verbatim payload bytes plus their
//! CRC) starting after the follower's applied sequence, or — when the
//! follower is behind the leader's compacted WAL base — opens a
//! snapshot transfer with [`ReplMsg::SnapStart`], serving
//! [`ReplMsg::Chunk`]s on demand ([`ReplMsg::GetChunk`] is the only
//! follower-driven pull, which is what makes the transfer resumable:
//! the follower asks only for chunks its manifest lacks). After
//! installing the snapshot the follower re-sends `Hello` on the same
//! connection and streaming resumes from the snapshot sequence.
//! [`ReplMsg::Ack`] flows follower→leader after frames are applied
//! (and in response to heartbeats, which is what feeds the leader's
//! lease clock); [`ReplMsg::Heartbeat`] flows leader→follower when
//! there is nothing to ship, carrying the sync frontier so the
//! follower can gauge lag and leader liveness.
//!
//! Epoch rules: every post-handshake message is epoch-stamped. A
//! leader that learns of a greater epoch — from a `Hello`, an `Ack`,
//! or an explicit [`ReplMsg::Fence`] sent by a promoted follower —
//! has been superseded and permanently demotes (the service audits
//! its unshipped WAL suffix into a divergence report first); a
//! follower that receives a `Welcome` or `Frame` with an epoch below
//! its own is talking to a stale leader and disconnects. `Welcome`
//! also carries the leader's write lease so the follower can refuse
//! to run with a promotion grace that does not strictly exceed it.

use std::io::{self, Read, Write};

/// Magic carried in [`ReplMsg::Hello`]: protocol + version.
pub const REPL_MAGIC: &[u8; 8] = b"RTWCREP1";

/// Default snapshot-transfer chunk size (bytes).
pub const DEFAULT_CHUNK: u32 = 64 * 1024;

/// Hard cap on one message's tag+body, matching the text protocol's
/// line cap: a 1 MiB WAL payload or snapshot chunk plus headers.
pub const MAX_BODY: usize = (1024 * 1024) + 64;

const TAG_HELLO: u8 = 1;
const TAG_WELCOME: u8 = 2;
const TAG_FRAME: u8 = 3;
const TAG_ACK: u8 = 4;
const TAG_SNAP_START: u8 = 5;
const TAG_GET_CHUNK: u8 = 6;
const TAG_CHUNK: u8 = 7;
const TAG_HEARTBEAT: u8 = 8;
const TAG_FENCE: u8 = 9;

/// One replication message (see the module docs for the session
/// shape).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplMsg {
    /// Follower → leader: open (or re-open, after a snapshot install)
    /// a streaming session.
    Hello {
        /// The follower's promotion epoch.
        epoch: u64,
        /// Highest sequence the follower has applied; the leader
        /// streams strictly-greater frames.
        applied_seq: u64,
    },
    /// Leader → follower: handshake accepted.
    Welcome {
        /// The leader's promotion epoch.
        epoch: u64,
        /// The leader WAL's base sequence (below it only a snapshot
        /// transfer can help).
        base_seq: u64,
        /// The leader's current sync frontier.
        synced_seq: u64,
        /// The leader's write lease in milliseconds (0 = no lease).
        /// A follower must run with a promotion grace strictly above
        /// this, or refuse to auto-promote.
        lease_ms: u64,
    },
    /// Leader → follower: one WAL record.
    Frame {
        /// The record's operation sequence.
        seq: u64,
        /// The epoch the leader shipped this record under.
        epoch: u64,
        /// CRC32 of `payload`, recomputed by the follower.
        crc: u32,
        /// The WAL payload bytes, verbatim.
        payload: Vec<u8>,
    },
    /// Follower → leader: everything up to `applied_seq` is applied.
    /// Also sent in response to a heartbeat, so an idle leader keeps
    /// hearing its followers (the lease feed).
    Ack {
        /// The follower's promotion epoch.
        epoch: u64,
        /// Highest contiguously-applied sequence.
        applied_seq: u64,
    },
    /// Leader → follower: a snapshot transfer is required (the
    /// follower is behind the leader's WAL base).
    SnapStart {
        /// Sequence the snapshot captures (the follower's WAL resets
        /// here after install).
        snap_seq: u64,
        /// Total snapshot image length, bytes.
        total_len: u64,
        /// CRC32 of the whole image.
        crc: u32,
        /// Chunk size the leader will serve (last chunk may be short).
        chunk_size: u32,
    },
    /// Follower → leader: request chunk `index` of the open transfer.
    GetChunk {
        /// Zero-based chunk index.
        index: u64,
    },
    /// Leader → follower: one snapshot chunk.
    Chunk {
        /// Echoed chunk index.
        index: u64,
        /// CRC32 of `bytes`.
        crc: u32,
        /// The chunk payload.
        bytes: Vec<u8>,
    },
    /// Leader → follower: nothing to ship; carries the sync frontier.
    Heartbeat {
        /// The sender's promotion epoch.
        epoch: u64,
        /// The leader's current sync frontier.
        synced_seq: u64,
    },
    /// Promoted node → deposed leader: you have been superseded.
    /// The receiver permanently demotes, audits the WAL suffix past
    /// `applied_seq` as divergent, and redirects writes to `addr`.
    Fence {
        /// The sender's (higher) promotion epoch.
        epoch: u64,
        /// The highest sequence the sender applied from the old
        /// leader's stream — the last point the histories share.
        applied_seq: u64,
        /// Where the fenced node should redirect clients (may be
        /// empty when the new leader has no advertised address).
        addr: String,
    },
}

fn u64_at(b: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(b.get(at..at + 8)?.try_into().ok()?))
}

fn u32_at(b: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(b.get(at..at + 4)?.try_into().ok()?))
}

impl ReplMsg {
    /// Encodes the full wire image: length prefix, tag, body.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(32);
        match self {
            ReplMsg::Hello { epoch, applied_seq } => {
                body.push(TAG_HELLO);
                body.extend_from_slice(REPL_MAGIC);
                body.extend_from_slice(&epoch.to_le_bytes());
                body.extend_from_slice(&applied_seq.to_le_bytes());
            }
            ReplMsg::Welcome {
                epoch,
                base_seq,
                synced_seq,
                lease_ms,
            } => {
                body.push(TAG_WELCOME);
                body.extend_from_slice(&epoch.to_le_bytes());
                body.extend_from_slice(&base_seq.to_le_bytes());
                body.extend_from_slice(&synced_seq.to_le_bytes());
                body.extend_from_slice(&lease_ms.to_le_bytes());
            }
            ReplMsg::Frame {
                seq,
                epoch,
                crc,
                payload,
            } => {
                body.push(TAG_FRAME);
                body.extend_from_slice(&seq.to_le_bytes());
                body.extend_from_slice(&epoch.to_le_bytes());
                body.extend_from_slice(&crc.to_le_bytes());
                body.extend_from_slice(payload);
            }
            ReplMsg::Ack { epoch, applied_seq } => {
                body.push(TAG_ACK);
                body.extend_from_slice(&epoch.to_le_bytes());
                body.extend_from_slice(&applied_seq.to_le_bytes());
            }
            ReplMsg::SnapStart {
                snap_seq,
                total_len,
                crc,
                chunk_size,
            } => {
                body.push(TAG_SNAP_START);
                body.extend_from_slice(&snap_seq.to_le_bytes());
                body.extend_from_slice(&total_len.to_le_bytes());
                body.extend_from_slice(&crc.to_le_bytes());
                body.extend_from_slice(&chunk_size.to_le_bytes());
            }
            ReplMsg::GetChunk { index } => {
                body.push(TAG_GET_CHUNK);
                body.extend_from_slice(&index.to_le_bytes());
            }
            ReplMsg::Chunk { index, crc, bytes } => {
                body.push(TAG_CHUNK);
                body.extend_from_slice(&index.to_le_bytes());
                body.extend_from_slice(&crc.to_le_bytes());
                body.extend_from_slice(bytes);
            }
            ReplMsg::Heartbeat { epoch, synced_seq } => {
                body.push(TAG_HEARTBEAT);
                body.extend_from_slice(&epoch.to_le_bytes());
                body.extend_from_slice(&synced_seq.to_le_bytes());
            }
            ReplMsg::Fence {
                epoch,
                applied_seq,
                addr,
            } => {
                body.push(TAG_FENCE);
                body.extend_from_slice(&epoch.to_le_bytes());
                body.extend_from_slice(&applied_seq.to_le_bytes());
                body.extend_from_slice(addr.as_bytes());
            }
        }
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(
            &u32::try_from(body.len())
                .expect("message fits u32")
                .to_le_bytes(),
        );
        out.extend_from_slice(&body);
        out
    }

    /// Decodes a tag+body image (the bytes after the length prefix).
    /// `None` on any malformed shape — replication input is a network
    /// peer, never trusted.
    pub fn decode(frame: &[u8]) -> Option<ReplMsg> {
        let (&tag, body) = frame.split_first()?;
        match tag {
            TAG_HELLO => {
                if body.len() != 24 || &body[..8] != REPL_MAGIC {
                    return None;
                }
                Some(ReplMsg::Hello {
                    epoch: u64_at(body, 8)?,
                    applied_seq: u64_at(body, 16)?,
                })
            }
            TAG_WELCOME => {
                if body.len() != 32 {
                    return None;
                }
                Some(ReplMsg::Welcome {
                    epoch: u64_at(body, 0)?,
                    base_seq: u64_at(body, 8)?,
                    synced_seq: u64_at(body, 16)?,
                    lease_ms: u64_at(body, 24)?,
                })
            }
            TAG_FRAME => {
                if body.len() < 20 {
                    return None;
                }
                Some(ReplMsg::Frame {
                    seq: u64_at(body, 0)?,
                    epoch: u64_at(body, 8)?,
                    crc: u32_at(body, 16)?,
                    payload: body[20..].to_vec(),
                })
            }
            TAG_ACK => {
                if body.len() != 16 {
                    return None;
                }
                Some(ReplMsg::Ack {
                    epoch: u64_at(body, 0)?,
                    applied_seq: u64_at(body, 8)?,
                })
            }
            TAG_SNAP_START => {
                if body.len() != 24 {
                    return None;
                }
                Some(ReplMsg::SnapStart {
                    snap_seq: u64_at(body, 0)?,
                    total_len: u64_at(body, 8)?,
                    crc: u32_at(body, 16)?,
                    chunk_size: u32_at(body, 20)?,
                })
            }
            TAG_GET_CHUNK => {
                if body.len() != 8 {
                    return None;
                }
                Some(ReplMsg::GetChunk {
                    index: u64_at(body, 0)?,
                })
            }
            TAG_CHUNK => {
                if body.len() < 12 {
                    return None;
                }
                Some(ReplMsg::Chunk {
                    index: u64_at(body, 0)?,
                    crc: u32_at(body, 8)?,
                    bytes: body[12..].to_vec(),
                })
            }
            TAG_HEARTBEAT => {
                if body.len() != 16 {
                    return None;
                }
                Some(ReplMsg::Heartbeat {
                    epoch: u64_at(body, 0)?,
                    synced_seq: u64_at(body, 8)?,
                })
            }
            TAG_FENCE => {
                if body.len() < 16 {
                    return None;
                }
                Some(ReplMsg::Fence {
                    epoch: u64_at(body, 0)?,
                    applied_seq: u64_at(body, 8)?,
                    addr: String::from_utf8(body[16..].to_vec()).ok()?,
                })
            }
            _ => None,
        }
    }
}

/// Writes one message to `w` (no flush; TCP streams here are
/// `TCP_NODELAY`).
pub fn write_msg(w: &mut impl Write, msg: &ReplMsg) -> io::Result<()> {
    w.write_all(&msg.encode())
}

/// Reads one message from `r`.
///
/// Errors are the peer's problem surface: `UnexpectedEof` on a closed
/// connection, `WouldBlock`/`TimedOut` under a read timeout (note that
/// a timeout firing *mid-message* desynchronizes the stream — callers
/// treat any subsequent `InvalidData` as a cue to reconnect), and
/// `InvalidData` for malformed or oversized frames.
pub fn read_msg(r: &mut impl Read) -> io::Result<ReplMsg> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_le_bytes(len4) as usize;
    if len == 0 || len > MAX_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("replication message length {len} out of range"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    ReplMsg::decode(&buf)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed replication message"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: ReplMsg) {
        let wire = msg.encode();
        let mut cursor = io::Cursor::new(&wire);
        assert_eq!(read_msg(&mut cursor).unwrap(), msg);
        assert_eq!(cursor.position() as usize, wire.len(), "trailing bytes");
    }

    #[test]
    fn every_message_round_trips() {
        round_trip(ReplMsg::Hello {
            epoch: 3,
            applied_seq: 41,
        });
        round_trip(ReplMsg::Welcome {
            epoch: 3,
            base_seq: 16,
            synced_seq: 44,
            lease_ms: 500,
        });
        round_trip(ReplMsg::Frame {
            seq: 42,
            epoch: 3,
            crc: 0xdead_beef,
            payload: vec![1, 2, 3, 4, 5],
        });
        round_trip(ReplMsg::Ack {
            epoch: 3,
            applied_seq: 42,
        });
        round_trip(ReplMsg::SnapStart {
            snap_seq: 16,
            total_len: 100_000,
            crc: 7,
            chunk_size: 4096,
        });
        round_trip(ReplMsg::GetChunk { index: 9 });
        round_trip(ReplMsg::Chunk {
            index: 9,
            crc: 17,
            bytes: vec![0; 4096],
        });
        round_trip(ReplMsg::Heartbeat {
            epoch: 3,
            synced_seq: 44,
        });
        round_trip(ReplMsg::Fence {
            epoch: 4,
            applied_seq: 40,
            addr: "127.0.0.1:7077".to_string(),
        });
        round_trip(ReplMsg::Fence {
            epoch: 4,
            applied_seq: 40,
            addr: String::new(),
        });
    }

    #[test]
    fn malformed_messages_are_rejected_not_panics() {
        // Bad magic in Hello.
        let mut hello = ReplMsg::Hello {
            epoch: 1,
            applied_seq: 2,
        }
        .encode();
        hello[5] ^= 0xff; // inside the magic
        assert!(read_msg(&mut io::Cursor::new(&hello)).is_err());

        // Unknown tag.
        let mut bogus = vec![0u8; 0];
        bogus.extend_from_slice(&9u32.to_le_bytes());
        bogus.push(200);
        bogus.extend_from_slice(&[0; 8]);
        assert!(read_msg(&mut io::Cursor::new(&bogus)).is_err());

        // Oversized length prefix.
        let big = (MAX_BODY as u32 + 1).to_le_bytes();
        assert!(read_msg(&mut io::Cursor::new(&big[..])).is_err());

        // Zero length.
        let zero = 0u32.to_le_bytes();
        assert!(read_msg(&mut io::Cursor::new(&zero[..])).is_err());

        // Truncated body.
        let frame = ReplMsg::Ack {
            epoch: 1,
            applied_seq: 5,
        }
        .encode();
        assert!(read_msg(&mut io::Cursor::new(&frame[..frame.len() - 2])).is_err());

        // Wrong body arity for a fixed-size message.
        let mut short = vec![];
        short.extend_from_slice(&2u32.to_le_bytes());
        short.push(4); // TAG_ACK with a 1-byte body
        short.push(9);
        assert!(read_msg(&mut io::Cursor::new(&short)).is_err());

        // A Fence whose address is not UTF-8.
        let mut fence = vec![];
        let body_len: u32 = 1 + 16 + 2;
        fence.extend_from_slice(&body_len.to_le_bytes());
        fence.push(9); // TAG_FENCE
        fence.extend_from_slice(&2u64.to_le_bytes());
        fence.extend_from_slice(&7u64.to_le_bytes());
        fence.extend_from_slice(&[0xff, 0xfe]);
        assert!(read_msg(&mut io::Cursor::new(&fence)).is_err());

        // A Fence too short to carry its fixed fields.
        let mut stub = vec![];
        stub.extend_from_slice(&9u32.to_le_bytes());
        stub.push(9); // TAG_FENCE with an 8-byte body
        stub.extend_from_slice(&2u64.to_le_bytes());
        assert!(read_msg(&mut io::Cursor::new(&stub)).is_err());
    }
}
