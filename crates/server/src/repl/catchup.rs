//! Resumable chunked snapshot transfer: the follower side of
//! catch-up.
//!
//! When a follower's applied sequence is behind the leader's compacted
//! WAL base, frames alone cannot bring it current: it must first
//! install the leader's latest `snapshot.bin`. The image is pulled in
//! checksummed chunks, follower-driven ([`ReplMsg::GetChunk`] per
//! chunk), with progress journaled to an **offset manifest** on disk:
//!
//! ```text
//! catchup.manifest:
//!   RTWCCAT1 <snap_seq> <total_len> <crc> <chunk_size>
//!   <completed chunk index>
//!   ...
//! snapshot.partial: the image, chunks written at index*chunk_size
//! ```
//!
//! If the link (or the follower) dies mid-transfer, the next attempt
//! reloads the manifest; when the leader still offers the *same* image
//! (identity = all four header fields), every journaled chunk is
//! skipped and only the remainder crosses the wire. A different image
//! restarts the transfer from scratch. After the last chunk the whole
//! image is re-checksummed, parsed (magic + body CRC), and renamed
//! atomically over `snapshot.bin`; only then is the manifest removed.

use super::proto::{read_msg, write_msg, ReplMsg};
use crate::snapshot::{parse_snapshot, SNAPSHOT_FILE};
use crate::wal::crc32;
use std::collections::BTreeSet;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// The transfer-progress journal's file name inside a `--wal-dir`.
pub const MANIFEST_FILE: &str = "catchup.manifest";
/// The in-progress snapshot image's file name.
pub const PARTIAL_FILE: &str = "snapshot.partial";

const MANIFEST_MAGIC: &str = "RTWCCAT1";

/// Identity of the image being transferred (the [`ReplMsg::SnapStart`]
/// fields).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransferSpec {
    /// Sequence the snapshot captures.
    pub snap_seq: u64,
    /// Total image length, bytes.
    pub total_len: u64,
    /// CRC32 of the whole image.
    pub crc: u32,
    /// Chunk size the leader serves.
    pub chunk_size: u32,
}

/// Knobs for the transfer loop.
#[derive(Clone, Copy, Debug, Default)]
pub struct CatchupOpts {
    /// Fault-injection hook: abort (as a simulated severed link) after
    /// this many chunks have been fetched *this attempt*. Chaos uses
    /// it to prove the manifest resumes without re-transfer.
    pub fail_after_chunks: Option<u64>,
}

/// What a completed transfer did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CatchupOutcome {
    /// Chunks fetched over the wire this attempt.
    pub requested: u64,
    /// Chunks skipped because the manifest had already journaled them.
    pub resumed: u64,
    /// The installed snapshot's sequence (WAL resets here).
    pub snap_seq: u64,
}

fn manifest_header(spec: &TransferSpec) -> String {
    format!(
        "{MANIFEST_MAGIC} {} {} {} {}\n",
        spec.snap_seq, spec.total_len, spec.crc, spec.chunk_size
    )
}

/// Loads the journaled chunk set if the manifest matches `spec`'s
/// identity; `None` for a missing, foreign, or corrupt manifest.
fn load_manifest(dir: &Path, spec: &TransferSpec) -> Option<BTreeSet<u64>> {
    let text = fs::read_to_string(dir.join(MANIFEST_FILE)).ok()?;
    let mut lines = text.lines();
    let header = lines.next()?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 5 || fields[0] != MANIFEST_MAGIC {
        return None;
    }
    let same = fields[1].parse() == Ok(spec.snap_seq)
        && fields[2].parse() == Ok(spec.total_len)
        && fields[3].parse() == Ok(spec.crc)
        && fields[4].parse() == Ok(spec.chunk_size);
    if !same {
        return None;
    }
    // A torn final line (crash mid-append) parses as garbage and is
    // simply dropped: the chunk is re-fetched, which is safe.
    Some(lines.filter_map(|l| l.trim().parse().ok()).collect())
}

fn expected_chunk_len(spec: &TransferSpec, index: u64, total_chunks: u64) -> usize {
    let cs = u64::from(spec.chunk_size);
    let len = if index + 1 == total_chunks {
        spec.total_len - index * cs
    } else {
        cs
    };
    usize::try_from(len).expect("chunk fits usize")
}

/// Pulls the image described by `spec` from `stream` into `dir`,
/// resuming from any matching manifest, then installs it atomically as
/// `snapshot.bin`. On success the manifest and partial are gone and
/// the caller must reset its WAL to `spec.snap_seq`.
pub fn fetch_snapshot<S: Read + Write>(
    stream: &mut S,
    dir: &Path,
    spec: &TransferSpec,
    opts: &CatchupOpts,
) -> io::Result<CatchupOutcome> {
    if spec.chunk_size == 0 || spec.total_len == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "snapshot transfer with a zero length or chunk size",
        ));
    }
    let total_chunks = spec.total_len.div_ceil(u64::from(spec.chunk_size));
    let manifest_path = dir.join(MANIFEST_FILE);
    let partial_path = dir.join(PARTIAL_FILE);

    let done = match load_manifest(dir, spec) {
        Some(done) if partial_path.exists() => done,
        _ => {
            // Fresh transfer (no manifest, or one for a different
            // image): restart from nothing.
            let _ = fs::remove_file(&partial_path);
            fs::write(&manifest_path, manifest_header(spec))?;
            let f = File::create(&partial_path)?;
            f.set_len(spec.total_len)?;
            BTreeSet::new()
        }
    };

    let mut partial = OpenOptions::new().write(true).open(&partial_path)?;
    let mut manifest = OpenOptions::new().append(true).open(&manifest_path)?;
    let resumed = done.len() as u64;
    let mut requested = 0u64;

    for index in 0..total_chunks {
        if done.contains(&index) {
            continue;
        }
        if opts.fail_after_chunks == Some(requested) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "replication link severed mid-catch-up (injected)",
            ));
        }
        write_msg(stream, &ReplMsg::GetChunk { index })?;
        let (got_index, crc, bytes) = loop {
            match read_msg(stream)? {
                ReplMsg::Chunk { index, crc, bytes } => break (index, crc, bytes),
                // The leader may interleave liveness pings.
                ReplMsg::Heartbeat { .. } => {}
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected {other:?} during snapshot transfer"),
                    ))
                }
            }
        };
        let want = expected_chunk_len(spec, index, total_chunks);
        if got_index != index || bytes.len() != want || crc32(&bytes) != crc {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("snapshot chunk {index} failed verification"),
            ));
        }
        partial.seek(SeekFrom::Start(index * u64::from(spec.chunk_size)))?;
        partial.write_all(&bytes)?;
        partial.sync_data()?;
        // Journal the chunk only after its bytes are durable, so the
        // manifest never claims data the partial does not hold.
        writeln!(manifest, "{index}")?;
        manifest.sync_data()?;
        requested += 1;
    }
    drop(partial);
    drop(manifest);

    // Whole-image verification before install: length, CRC, and a
    // full parse (the image must be a valid RTWCSNP1 snapshot at the
    // advertised sequence).
    let image = fs::read(&partial_path)?;
    if image.len() as u64 != spec.total_len || crc32(&image) != spec.crc {
        // The assembled image is bad even though every chunk checked
        // out — the leader's offer changed under us. Scrap the
        // transfer so the next attempt restarts clean.
        let _ = fs::remove_file(&manifest_path);
        let _ = fs::remove_file(&partial_path);
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "assembled snapshot image fails verification",
        ));
    }
    let data = parse_snapshot(&image)?;
    if data.seq != spec.snap_seq {
        let _ = fs::remove_file(&manifest_path);
        let _ = fs::remove_file(&partial_path);
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "snapshot image sequence disagrees with the transfer offer",
        ));
    }
    fs::rename(&partial_path, dir.join(SNAPSHOT_FILE))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    fs::remove_file(&manifest_path)?;
    Ok(CatchupOutcome {
        requested,
        resumed,
        snap_seq: spec.snap_seq,
    })
}

/// Serves the leader side of one chunk request against an in-memory
/// image (the leader pins the image bytes for the whole transfer so a
/// concurrent compaction cannot tear it).
pub fn chunk_reply(image: &[u8], chunk_size: u32, index: u64) -> Option<ReplMsg> {
    let cs = chunk_size as usize;
    let start = usize::try_from(index.checked_mul(cs as u64)?).ok()?;
    if cs == 0 || start >= image.len() {
        return None;
    }
    let bytes = image[start..image.len().min(start + cs)].to_vec();
    Some(ReplMsg::Chunk {
        index,
        crc: crc32(&bytes),
        bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{write_snapshot, SnapshotData};
    use rtwc_core::StreamSpec;
    use wormnet_topology::NodeId;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rtwc-catchup-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_image(dir: &Path) -> Vec<u8> {
        let data = SnapshotData {
            seq: 11,
            next_handle: 4,
            streams: vec![
                (1, StreamSpec::new(NodeId(0), NodeId(5), 2, 50, 4, 50)),
                (3, StreamSpec::new(NodeId(12), NodeId(17), 1, 60, 6, 55)),
            ],
            dedup: vec![],
        };
        write_snapshot(dir, &data).unwrap();
        fs::read(dir.join(SNAPSHOT_FILE)).unwrap()
    }

    /// An in-memory "leader": answers `GetChunk` from the pinned image.
    struct FakeLeader {
        image: Vec<u8>,
        chunk_size: u32,
        inbox: Vec<u8>,
        outbox: io::Cursor<Vec<u8>>,
        chunks_served: u64,
    }

    impl FakeLeader {
        fn new(image: Vec<u8>, chunk_size: u32) -> FakeLeader {
            FakeLeader {
                image,
                chunk_size,
                inbox: vec![],
                outbox: io::Cursor::new(vec![]),
                chunks_served: 0,
            }
        }
    }

    impl Write for FakeLeader {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            // A write from the follower: accumulate until a whole
            // message parses, then answer it into the outbox.
            self.inbox.extend_from_slice(buf);
            let mut cursor = io::Cursor::new(self.inbox.clone());
            if let Ok(ReplMsg::GetChunk { index }) = read_msg(&mut cursor) {
                self.inbox.drain(..cursor.position() as usize);
                let reply = chunk_reply(&self.image, self.chunk_size, index)
                    .expect("follower asked for a valid chunk");
                self.chunks_served += 1;
                let at = self.outbox.position();
                self.outbox.get_mut().extend_from_slice(&reply.encode());
                self.outbox.set_position(at);
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Read for FakeLeader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.outbox.read(buf)
        }
    }

    #[test]
    fn severed_transfer_resumes_without_refetching_chunks() {
        let leader_dir = tmpdir("sever-leader");
        let follower_dir = tmpdir("sever-follower");
        let image = sample_image(&leader_dir);
        let spec = TransferSpec {
            snap_seq: 11,
            total_len: image.len() as u64,
            crc: crc32(&image),
            chunk_size: 16, // force many chunks
        };
        let total_chunks = spec.total_len.div_ceil(16);
        assert!(total_chunks >= 4, "image too small for the scenario");

        // First attempt dies after two chunks.
        let mut leader = FakeLeader::new(image.clone(), 16);
        let err = fetch_snapshot(
            &mut leader,
            &follower_dir,
            &spec,
            &CatchupOpts {
                fail_after_chunks: Some(2),
            },
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
        assert_eq!(leader.chunks_served, 2);
        assert!(follower_dir.join(MANIFEST_FILE).exists());
        assert!(follower_dir.join(PARTIAL_FILE).exists());

        // Second attempt resumes: only the remaining chunks cross.
        let mut leader = FakeLeader::new(image.clone(), 16);
        let out =
            fetch_snapshot(&mut leader, &follower_dir, &spec, &CatchupOpts::default()).unwrap();
        assert_eq!(out.resumed, 2, "manifest chunks must be skipped");
        assert_eq!(out.requested, total_chunks - 2);
        assert_eq!(leader.chunks_served, total_chunks - 2);
        assert_eq!(out.snap_seq, 11);

        // Installed image is byte-identical; transfer scratch is gone.
        assert_eq!(fs::read(follower_dir.join(SNAPSHOT_FILE)).unwrap(), image);
        assert!(!follower_dir.join(MANIFEST_FILE).exists());
        assert!(!follower_dir.join(PARTIAL_FILE).exists());

        fs::remove_dir_all(&leader_dir).ok();
        fs::remove_dir_all(&follower_dir).ok();
    }

    #[test]
    fn manifest_for_a_different_image_restarts_the_transfer() {
        let leader_dir = tmpdir("stale-leader");
        let follower_dir = tmpdir("stale-follower");
        let image = sample_image(&leader_dir);
        let spec = TransferSpec {
            snap_seq: 11,
            total_len: image.len() as u64,
            crc: crc32(&image),
            chunk_size: 32,
        };
        // A leftover manifest from some other image (different CRC).
        fs::write(
            follower_dir.join(MANIFEST_FILE),
            format!("{MANIFEST_MAGIC} 9 999 12345 32\n0\n1\n"),
        )
        .unwrap();
        fs::write(follower_dir.join(PARTIAL_FILE), vec![0u8; 999]).unwrap();

        let mut leader = FakeLeader::new(image.clone(), 32);
        let out =
            fetch_snapshot(&mut leader, &follower_dir, &spec, &CatchupOpts::default()).unwrap();
        assert_eq!(out.resumed, 0, "foreign manifest must not be trusted");
        assert_eq!(out.requested, spec.total_len.div_ceil(32));
        assert_eq!(fs::read(follower_dir.join(SNAPSHOT_FILE)).unwrap(), image);

        fs::remove_dir_all(&leader_dir).ok();
        fs::remove_dir_all(&follower_dir).ok();
    }

    #[test]
    fn corrupt_chunk_is_detected() {
        let leader_dir = tmpdir("corrupt-leader");
        let follower_dir = tmpdir("corrupt-follower");
        let mut image = sample_image(&leader_dir);
        let spec = TransferSpec {
            snap_seq: 11,
            total_len: image.len() as u64,
            crc: crc32(&image),
            chunk_size: 64,
        };
        // The leader serves a flipped byte but an honest per-chunk
        // CRC of the *original* — model a lying wire by corrupting
        // after CRC: easiest is to corrupt the image and keep the
        // spec CRC, which the whole-image check must catch.
        image[3] ^= 0x10;
        let mut leader = FakeLeader::new(image, 64);
        let err =
            fetch_snapshot(&mut leader, &follower_dir, &spec, &CatchupOpts::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Scratch state was scrapped so the next attempt starts clean.
        assert!(!follower_dir.join(MANIFEST_FILE).exists());
        assert!(!follower_dir.join(PARTIAL_FILE).exists());

        fs::remove_dir_all(&leader_dir).ok();
        fs::remove_dir_all(&follower_dir).ok();
    }
}
