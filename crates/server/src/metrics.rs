//! Per-request service metrics: lock-free counters and power-of-two
//! latency histograms, dumped by the `STATS` request.
//!
//! Everything here is plain atomics so the hot read path (`QUERY`)
//! never takes a lock to record itself. Each histogram buckets latency
//! by `floor(log2(ns))`, which bounds the relative error of a reported
//! percentile by 2x — good enough for a health endpoint; the load
//! generator computes exact client-side percentiles separately.
//!
//! Three histograms are kept: **total** latency (what the pre-reactor
//! server reported — still the `latency_us` block of `STATS`),
//! **queue wait** (time a parsed request sat in the reactor's
//! per-connection queue before a worker picked it up), and **service
//! time** (the handler itself). Queue wait is only recorded on the
//! queued path; a direct [`Metrics::observe`] counts its full duration
//! as service time.
//!
//! # Memory ordering
//!
//! Every atomic here is `Relaxed`, deliberately. Each counter and
//! bucket is an independent monotonic statistic: no other memory is
//! published through it, so no acquire/release edge is needed — the
//! only guarantee required is that each individual `fetch_add` lands
//! exactly once, which relaxed RMWs give. The price is that a
//! [`Metrics::snapshot`] taken while writers are running may *tear*
//! across counters (e.g. a request counted in `counts` whose latency
//! has not reached the histogram yet); `STATS` is a health endpoint
//! and tolerates that. Once writers are quiescent — thread join, or
//! any other happens-before edge to the reader — every recorded
//! operation is visible and the cross-counter invariants hold exactly:
//! the total histogram's population equals the sum of `counts`, and
//! the queued population splits into matching queue-wait and
//! service-time entries (asserted by
//! `histogram_totals_match_op_counts_under_concurrent_recording`).

use std::sync::atomic::{AtomicU64, Ordering};

/// Request kinds, in counter order (see [`Metrics::counts`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestKind {
    /// `ADMIT`.
    Admit = 0,
    /// `REMOVE`.
    Remove = 1,
    /// `QUERY`.
    Query = 2,
    /// `SNAPSHOT`.
    Snapshot = 3,
    /// `STATS`.
    Stats = 4,
    /// `SHUTDOWN`.
    Shutdown = 5,
    /// `PROMOTE` (follower -> leader).
    Promote = 6,
    /// Unparseable input.
    Malformed = 7,
}

/// Number of [`RequestKind`]s.
pub const KINDS: usize = 8;

const BUCKETS: usize = 64;

/// A histogram over `floor(log2(nanoseconds))` buckets.
#[derive(Debug)]
struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    fn observe(&self, ns: u64) {
        let b = 63 - ns.max(1).leading_zeros() as usize;
        // Relaxed: each bucket is its own monotonic counter and
        // max_ns its own high-water mark; nothing is published
        // through either, and relaxed RMWs still never lose an
        // increment (or a larger max).
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Upper edge (in ns) of the bucket where the cumulative count
    /// reaches `pct` percent of all observations; 0 when empty.
    fn percentile_ns(&self, pct: f64) -> u64 {
        // Relaxed loads: the snapshot is racy by design — buckets are
        // copied one at a time while writers may still be recording,
        // so a percentile can be off by the handful of in-flight
        // observations. Stronger orderings would not fix that (it is
        // a multi-word tear, not a reordering), only a lock would.
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // Rank math in f64: populations stay far below 2^52 and the
        // ceil of a non-negative product cannot go negative.
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let rank = ((pct / 100.0) * total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                // Upper edge of bucket i: 2^(i+1) - 1, clamped to the
                // true maximum so the tail percentile never exceeds it.
                let edge = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                return edge.min(self.max_ns.load(Ordering::Relaxed));
            }
        }
        self.max_ns.load(Ordering::Relaxed)
    }

    fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// Service-side metrics shared by every worker thread.
#[derive(Debug, Default)]
pub struct Metrics {
    counts: [AtomicU64; KINDS],
    admitted: AtomicU64,
    rejected: AtomicU64,
    removed: AtomicU64,
    replayed: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    optimistic: AtomicU64,
    hist: LatencyHistogram,
    queue_hist: LatencyHistogram,
    service_hist: LatencyHistogram,
}

/// A point-in-time copy of every counter, plus latency percentiles in
/// microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests by kind (see [`RequestKind`] for the order).
    pub counts: [u64; KINDS],
    /// Successful admissions.
    pub admitted: u64,
    /// Refused admissions.
    pub rejected: u64,
    /// Successful removals.
    pub removed: u64,
    /// Duplicate request ids answered from the idempotency window
    /// (never counted as fresh admissions or removals).
    pub replayed: u64,
    /// Error responses.
    pub errors: u64,
    /// Requests shed with `busy` under overload.
    pub shed: u64,
    /// Admissions committed through the optimistic concurrent path
    /// (validated under the shared lock, applied without re-analysis).
    pub optimistic: u64,
    /// Latency observations.
    pub latency_count: u64,
    /// Median, microseconds (bucketed: upper power-of-two edge).
    pub p50_us: u64,
    /// 90th percentile, microseconds.
    pub p90_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Maximum, microseconds.
    pub max_us: u64,
    /// Queue-wait observations (requests served via the queued path).
    pub queue_count: u64,
    /// Median queue wait, microseconds.
    pub queue_p50_us: u64,
    /// 90th-percentile queue wait, microseconds.
    pub queue_p90_us: u64,
    /// 99th-percentile queue wait, microseconds.
    pub queue_p99_us: u64,
    /// Worst queue wait, microseconds.
    pub queue_max_us: u64,
    /// Median service time, microseconds.
    pub service_p50_us: u64,
    /// 90th-percentile service time, microseconds.
    pub service_p90_us: u64,
    /// 99th-percentile service time, microseconds.
    pub service_p99_us: u64,
    /// Worst service time, microseconds.
    pub service_max_us: u64,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one request of `kind` served directly (no queue): its
    /// full duration is service time.
    pub fn observe(&self, kind: RequestKind, ns: u64) {
        // Relaxed (here and in every counter below): each statistic
        // stands alone — see the module doc's "Memory ordering"
        // section for why no acquire/release pairing is needed.
        self.counts[kind as usize].fetch_add(1, Ordering::Relaxed);
        self.hist.observe(ns);
        self.service_hist.observe(ns);
    }

    /// Counts one request of `kind` served off a queue, splitting its
    /// latency into queue wait and service time. The total histogram
    /// (what clients experience) records the sum.
    pub fn observe_queued(&self, kind: RequestKind, queue_ns: u64, service_ns: u64) {
        self.counts[kind as usize].fetch_add(1, Ordering::Relaxed);
        self.hist.observe(queue_ns.saturating_add(service_ns));
        self.queue_hist.observe(queue_ns);
        self.service_hist.observe(service_ns);
    }

    /// Counts a successful admission.
    pub fn count_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a refused admission.
    pub fn count_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a successful removal.
    pub fn count_removed(&self) {
        self.removed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a duplicate request id replayed from the dedup window.
    pub fn count_replayed(&self) {
        self.replayed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an error response.
    pub fn count_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request shed with `busy` under overload.
    pub fn count_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an admission committed through the optimistic path.
    pub fn count_optimistic(&self) {
        self.optimistic.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies every counter and summarizes the histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counts = [0u64; KINDS];
        for (o, c) in counts.iter_mut().zip(&self.counts) {
            *o = c.load(Ordering::Relaxed);
        }
        MetricsSnapshot {
            counts,
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            removed: self.removed.load(Ordering::Relaxed),
            replayed: self.replayed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            optimistic: self.optimistic.load(Ordering::Relaxed),
            latency_count: self.hist.count(),
            p50_us: self.hist.percentile_ns(50.0) / 1_000,
            p90_us: self.hist.percentile_ns(90.0) / 1_000,
            p99_us: self.hist.percentile_ns(99.0) / 1_000,
            max_us: self.hist.max_ns.load(Ordering::Relaxed) / 1_000,
            queue_count: self.queue_hist.count(),
            queue_p50_us: self.queue_hist.percentile_ns(50.0) / 1_000,
            queue_p90_us: self.queue_hist.percentile_ns(90.0) / 1_000,
            queue_p99_us: self.queue_hist.percentile_ns(99.0) / 1_000,
            queue_max_us: self.queue_hist.max_ns.load(Ordering::Relaxed) / 1_000,
            service_p50_us: self.service_hist.percentile_ns(50.0) / 1_000,
            service_p90_us: self.service_hist.percentile_ns(90.0) / 1_000,
            service_p99_us: self.service_hist.percentile_ns(99.0) / 1_000,
            service_max_us: self.service_hist.max_ns.load(Ordering::Relaxed) / 1_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_snapshot_is_zero() {
        let m = Metrics::new();
        let s = m.snapshot();
        assert_eq!(s, MetricsSnapshot::default());
    }

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.observe(RequestKind::Admit, 1_000);
        m.observe(RequestKind::Admit, 2_000);
        m.observe(RequestKind::Query, 500);
        m.count_admitted();
        m.count_rejected();
        let s = m.snapshot();
        assert_eq!(s.counts[RequestKind::Admit as usize], 2);
        assert_eq!(s.counts[RequestKind::Query as usize], 1);
        assert_eq!(s.admitted, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.latency_count, 3);
    }

    #[test]
    fn percentiles_bracket_the_observations() {
        let m = Metrics::new();
        // 99 fast observations (~1us) and one slow outlier (~1ms).
        for _ in 0..99 {
            m.observe(RequestKind::Query, 1_024);
        }
        m.observe(RequestKind::Query, 1_048_576);
        let s = m.snapshot();
        assert_eq!(s.latency_count, 100);
        // p50 falls in the 1024..2047ns bucket -> 1 or 2 us after
        // integer division.
        assert!(s.p50_us <= 2, "{s:?}");
        // p99 must not be dragged to the outlier; p100 (max) must be it.
        assert!(s.p99_us <= 2, "{s:?}");
        assert_eq!(s.max_us, 1_048); // 1_048_576 ns / 1000
    }

    #[test]
    fn queued_observations_split_queue_and_service_time() {
        let m = Metrics::new();
        m.observe(RequestKind::Query, 2_000); // direct: all service time
        m.observe_queued(RequestKind::Admit, 1_000_000, 4_000);
        let s = m.snapshot();
        assert_eq!(s.latency_count, 2);
        assert_eq!(s.queue_count, 1, "direct path must not record queue wait");
        assert_eq!(s.queue_max_us, 1_000);
        assert_eq!(s.service_max_us, 4);
        // The total histogram sees queue + service.
        assert_eq!(s.max_us, 1_004);
    }

    #[test]
    fn histogram_totals_match_op_counts_under_concurrent_recording() {
        // The cross-counter invariant behind the Relaxed orderings:
        // once writers have joined (a happens-before edge to this
        // thread), every histogram population must equal the number
        // of operations recorded into it — nothing lost, nothing
        // double-counted, on any interleaving.
        use std::sync::Arc;

        // Scaled down under Miri (the CI job runs this test for data
        // races in the relaxed recording paths; the interpreter is
        // ~1000x slower than native).
        const THREADS: usize = if cfg!(miri) { 2 } else { 4 };
        const DIRECT_PER_THREAD: u64 = if cfg!(miri) { 24 } else { 500 };
        const QUEUED_PER_THREAD: u64 = if cfg!(miri) { 16 } else { 300 };

        let m = Arc::new(Metrics::new());
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..DIRECT_PER_THREAD {
                        m.observe(RequestKind::Query, 1 + (t as u64 * 7919 + i) % 4096);
                        m.count_admitted();
                    }
                    for i in 0..QUEUED_PER_THREAD {
                        m.observe_queued(
                            RequestKind::Admit,
                            1 + (i % 1024),
                            1 + (t as u64 + i) % 2048,
                        );
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }

        let s = m.snapshot();
        let direct = THREADS as u64 * DIRECT_PER_THREAD;
        let queued = THREADS as u64 * QUEUED_PER_THREAD;
        assert_eq!(s.counts[RequestKind::Query as usize], direct);
        assert_eq!(s.counts[RequestKind::Admit as usize], queued);
        assert_eq!(s.admitted, direct);
        // Total latency histogram: one entry per recorded operation.
        assert_eq!(s.latency_count, direct + queued);
        // Queue-wait histogram: exactly the queued operations.
        assert_eq!(s.queue_count, queued);
    }

    #[test]
    fn percentile_is_clamped_to_observed_max() {
        let m = Metrics::new();
        m.observe(RequestKind::Stats, 700);
        let s = m.snapshot();
        // A single 700ns observation: every percentile reports <= max.
        assert!(s.p50_us <= s.max_us.max(1), "{s:?}");
        assert_eq!(s.max_us, 0); // 700ns < 1us
    }
}
