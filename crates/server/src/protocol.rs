//! The wire protocol: newline-delimited text requests, single-line
//! JSON responses.
//!
//! ## Request grammar
//!
//! ```text
//! [@REQID] ADMIT SX,SY DX,DY PRIORITY PERIOD LENGTH [DEADLINE]
//! [@REQID] REMOVE <id>
//! QUERY <id>
//! SNAPSHOT
//! STATS
//! PROMOTE
//! SHUTDOWN
//! ```
//!
//! Keywords are case-insensitive; fields are whitespace-separated; the
//! `ADMIT` argument grammar is exactly the `.streams` `stream` line
//! (coordinates on the mesh, deadline defaulting to the period). Ids
//! are the stable handles the service assigned on admission — they
//! never shift when other streams are removed.
//!
//! The optional `@REQID` prefix (a nonzero integer, e.g.
//! `@17 ADMIT ...`) makes a state-changing request **idempotent**: a
//! client that lost the response can resend the same line and receive
//! the original outcome instead of double-admitting. The id is
//! persisted in the WAL, so the guarantee survives a server crash.
//!
//! ## Responses
//!
//! Every response is a single line of JSON with a `status` field:
//! `admitted`, `rejected`, `removed`, `ok`, `busy`, `shutting-down`, or
//! `error`. Errors carry a machine-readable `code` (`too_long`,
//! `degraded`, `unknown_id`, …); `busy` carries `retry_after_ms` for
//! client backoff. Rejections carry machine-readable diagnostics in the
//! same object shape as `rtwc lint --format json` (see
//! [`rtwc_verifier::render_diagnostic_json`]).

use rtwc_core::DelayBound;
use rtwc_verifier::{json_escape, render_diagnostic_json, Diagnostic};
use std::fmt::Write as _;

/// Hard cap on request-line length. The server answers an overlong
/// line with `{"status":"error","code":"too_long",...}`, discards
/// input up to the next newline, and keeps the connection.
pub const MAX_LINE_BYTES: usize = 1024 * 1024;

/// A parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Admit a candidate stream (the `.streams` `stream` grammar).
    Admit {
        /// Idempotency id from the `@REQID` prefix; 0 when absent.
        req_id: u64,
        /// Source `x,y` on the mesh.
        src: (u32, u32),
        /// Destination `x,y` on the mesh.
        dst: (u32, u32),
        /// Priority (1-based, larger = more urgent).
        priority: u32,
        /// Period `T` in flit times.
        period: u64,
        /// Maximum message length `C` in flits.
        length: u64,
        /// Relative deadline `D`; defaults to the period.
        deadline: Option<u64>,
    },
    /// Revoke an admitted stream by its stable id.
    Remove {
        /// Idempotency id from the `@REQID` prefix; 0 when absent.
        req_id: u64,
        /// The stream's stable id.
        id: u64,
    },
    /// Read an admitted stream's cached bound by its stable id.
    Query(u64),
    /// Dump every admitted stream with its cached bound.
    Snapshot,
    /// Dump request counters and the service latency histogram.
    Stats,
    /// Promote a follower to leader (no-op redirect on a leader).
    Promote,
    /// Stop the server after responding.
    Shutdown,
}

fn parse_coord(token: &str, what: &str) -> Result<(u32, u32), String> {
    let (x, y) = token
        .split_once(',')
        .ok_or_else(|| format!("expected {what} as X,Y, got '{token}'"))?;
    let x = x
        .parse::<u32>()
        .map_err(|_| format!("bad {what} X coordinate '{x}'"))?;
    let y = y
        .parse::<u32>()
        .map_err(|_| format!("bad {what} Y coordinate '{y}'"))?;
    Ok((x, y))
}

fn parse_num<T: std::str::FromStr>(token: &str, what: &str) -> Result<T, String> {
    token
        .parse::<T>()
        .map_err(|_| format!("bad {what} '{token}'"))
}

/// Parses one request line. The line is untrusted network input: every
/// malformed shape must come back as `Err`, never a panic.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut tokens = line.split_whitespace();
    let Some(mut keyword) = tokens.next() else {
        return Err("empty request".to_string());
    };
    let mut req_id = 0u64;
    if let Some(id) = keyword.strip_prefix('@') {
        req_id = id
            .parse::<u64>()
            .ok()
            .filter(|&id| id != 0)
            .ok_or_else(|| format!("bad request id '@{id}' (a nonzero integer)"))?;
        keyword = tokens
            .next()
            .ok_or_else(|| "request id without a request".to_string())?;
    }
    let rest: Vec<&str> = tokens.collect();
    let arity = |n: usize, usage: &str| -> Result<(), String> {
        if rest.len() == n {
            Ok(())
        } else {
            Err(format!("usage: {usage}"))
        }
    };
    let keyword = keyword.to_ascii_uppercase();
    if req_id != 0 && keyword != "ADMIT" && keyword != "REMOVE" {
        return Err("request ids apply to ADMIT/REMOVE only".to_string());
    }
    match keyword.as_str() {
        "ADMIT" => {
            if rest.len() < 5 || rest.len() > 6 {
                return Err(
                    "usage: ADMIT SX,SY DX,DY PRIORITY PERIOD LENGTH [DEADLINE]".to_string()
                );
            }
            let src = parse_coord(rest[0], "source")?;
            let dst = parse_coord(rest[1], "destination")?;
            let priority: u32 = parse_num(rest[2], "priority")?;
            let period: u64 = parse_num(rest[3], "period")?;
            let length: u64 = parse_num(rest[4], "length")?;
            let deadline = if rest.len() == 6 {
                Some(parse_num(rest[5], "deadline")?)
            } else {
                None
            };
            Ok(Request::Admit {
                req_id,
                src,
                dst,
                priority,
                period,
                length,
                deadline,
            })
        }
        "REMOVE" => {
            arity(1, "REMOVE <id>")?;
            Ok(Request::Remove {
                req_id,
                id: parse_num(rest[0], "stream id")?,
            })
        }
        "QUERY" => {
            arity(1, "QUERY <id>")?;
            Ok(Request::Query(parse_num(rest[0], "stream id")?))
        }
        "SNAPSHOT" => {
            arity(0, "SNAPSHOT")?;
            Ok(Request::Snapshot)
        }
        "STATS" => {
            arity(0, "STATS")?;
            Ok(Request::Stats)
        }
        "PROMOTE" => {
            arity(0, "PROMOTE")?;
            Ok(Request::Promote)
        }
        "SHUTDOWN" => {
            arity(0, "SHUTDOWN")?;
            Ok(Request::Shutdown)
        }
        other => Err(format!(
            "unknown request '{other}' (ADMIT|REMOVE|QUERY|SNAPSHOT|STATS|PROMOTE|SHUTDOWN)"
        )),
    }
}

/// Why an `ADMIT` was refused — the `reason` field of a rejection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The candidate failed the `W0xx` verifier rules.
    Lint,
    /// The candidate itself cannot meet its deadline.
    CandidateInfeasible,
    /// Admission would push already-admitted streams past theirs.
    BreaksExisting,
    /// The candidate spec is structurally invalid.
    Invalid,
}

impl RejectReason {
    fn as_str(self) -> &'static str {
        match self {
            RejectReason::Lint => "lint",
            RejectReason::CandidateInfeasible => "candidate-infeasible",
            RejectReason::BreaksExisting => "breaks-existing",
            RejectReason::Invalid => "invalid",
        }
    }
}

/// One admitted stream in a [`Response::Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotStream {
    /// Stable id.
    pub id: u64,
    /// Source `x,y`.
    pub src: (u32, u32),
    /// Destination `x,y`.
    pub dst: (u32, u32),
    /// Priority.
    pub priority: u32,
    /// Period `T`.
    pub period: u64,
    /// Maximum length `C`.
    pub length: u64,
    /// Deadline `D`.
    pub deadline: u64,
    /// Cached delay bound `U`.
    pub bound: DelayBound,
}

/// One follower's replication progress, as seen by the leader.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FollowerLag {
    /// The follower's peer address.
    pub peer: String,
    /// Highest sequence the follower has acknowledged applying.
    pub acked_seq: u64,
    /// Frames between the leader's ship frontier and `acked_seq`.
    pub lag_frames: u64,
}

/// Replication gauges, included in `STATS` when replication is
/// configured. A follower reports its own lag behind the leader's
/// sync frontier; a leader reports the worst lag across followers
/// plus a per-follower breakdown.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplReport {
    /// `"leader"` or `"follower"`.
    pub role: &'static str,
    /// Promotion epoch (bumped every time a follower takes over).
    pub epoch: u64,
    /// Highest operation sequence covered by a WAL fsync locally.
    pub wal_last_synced_seq: u64,
    /// Highest replicated sequence applied locally (followers only).
    pub applied_seq: Option<u64>,
    /// Follower: own lag behind the leader's sync frontier. Leader:
    /// max lag across connected followers (0 with none connected).
    pub replication_lag_frames: u64,
    /// Per-follower progress (leader only; empty on a follower).
    pub followers: Vec<FollowerLag>,
    /// True while the node sheds writes: the leader's lease lapsed,
    /// or the node was fenced by a higher epoch.
    pub sealed: bool,
    /// Configured write lease in milliseconds (0 = no lease).
    pub lease_ms: u64,
    /// Higher-epoch fence events this node has processed.
    pub fence_events: u64,
}

/// One region shard's gauges in a [`ShardsReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardStats {
    /// Streams resident in this shard (cross-shard streams count in
    /// every shard their route touches).
    pub streams: u64,
    /// Resident streams whose route spans more than one shard.
    pub cross: u64,
    /// Resident interference-index memory, bytes.
    pub index_bytes: u64,
}

/// Sharded-admission-plane gauges, included in `STATS` when the
/// service runs with `--shards`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardsReport {
    /// Number of region shards.
    pub count: u64,
    /// Committed cross-shard (two-phase) admissions.
    pub cross_admits: u64,
    /// Cross-shard admissions rejected by the analysis.
    pub cross_aborts: u64,
    /// Total resident index memory across shards, bytes.
    pub index_bytes: u64,
    /// Total shrinkable slack across shards, bytes.
    pub reclaimable_bytes: u64,
    /// Per-shard breakdown, by shard id.
    pub per_shard: Vec<ShardStats>,
}

/// The `STATS` payload: counters plus the service-side latency
/// histogram summary (microseconds, bucketed to powers of two).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsReport {
    /// Requests served, by kind: admit, remove, query, snapshot,
    /// stats, shutdown, promote, malformed.
    pub counts: [u64; 8],
    /// Successful admissions.
    pub admitted: u64,
    /// Refused admissions.
    pub rejected: u64,
    /// Successful removals.
    pub removed: u64,
    /// Duplicate request ids answered from the idempotency window.
    pub replayed: u64,
    /// Error responses (unknown ids, malformed requests).
    pub errors: u64,
    /// Requests shed with `busy` under overload.
    pub shed: u64,
    /// Streams currently admitted.
    pub streams: u64,
    /// `Cal_U` recomputations the controller has performed.
    pub recomputations: u64,
    /// Admissions committed through the optimistic concurrent path.
    pub optimistic: u64,
    /// Latency observations recorded.
    pub latency_count: u64,
    /// Median total latency, microseconds.
    pub p50_us: u64,
    /// 90th-percentile total latency, microseconds.
    pub p90_us: u64,
    /// 99th-percentile total latency, microseconds.
    pub p99_us: u64,
    /// Worst observed total latency, microseconds.
    pub max_us: u64,
    /// Queue-wait observations (requests served via the worker queue).
    pub queue_count: u64,
    /// Median queue wait, microseconds.
    pub queue_p50_us: u64,
    /// 90th-percentile queue wait, microseconds.
    pub queue_p90_us: u64,
    /// 99th-percentile queue wait, microseconds.
    pub queue_p99_us: u64,
    /// Worst queue wait, microseconds.
    pub queue_max_us: u64,
    /// Median service time, microseconds.
    pub service_p50_us: u64,
    /// 90th-percentile service time, microseconds.
    pub service_p90_us: u64,
    /// 99th-percentile service time, microseconds.
    pub service_p99_us: u64,
    /// Worst service time, microseconds.
    pub service_max_us: u64,
    /// Sharded-plane gauges; `None` when the admission plane is
    /// monolithic (the `shards` key is then omitted from the JSON).
    pub shards: Option<ShardsReport>,
    /// Replication gauges; `None` when replication is not configured
    /// (the `replication` key is then omitted from the JSON).
    pub repl: Option<ReplReport>,
}

/// A structured response, rendered to one JSON line by
/// [`render_response`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Admission succeeded.
    Admitted {
        /// The stable id assigned to the stream.
        id: u64,
        /// The cached delay bound `U`.
        bound: u64,
        /// The stream's deadline `D`.
        deadline: u64,
        /// `D - U` (admission guarantees `U <= D`).
        slack: u64,
        /// Warning-severity lint findings that did not block admission.
        warnings: Vec<Diagnostic>,
    },
    /// Admission refused; the controller is unchanged.
    Rejected {
        /// Why.
        reason: RejectReason,
        /// Human-readable explanation.
        message: String,
        /// The candidate's bound, when the analysis produced one.
        bound: Option<u64>,
        /// Ids of admitted streams that directly block the candidate.
        blocked_by: Vec<u64>,
        /// Ids of admitted streams the candidate would break.
        victims: Vec<u64>,
        /// Lint findings (for `reason = "lint"` rejections).
        diagnostics: Vec<Diagnostic>,
    },
    /// Removal succeeded.
    Removed {
        /// The removed stream's id.
        id: u64,
    },
    /// A `QUERY` hit.
    Query {
        /// Stable id.
        id: u64,
        /// Cached bound `U`.
        bound: u64,
        /// Deadline `D`.
        deadline: u64,
        /// `D - U`.
        slack: u64,
        /// Priority.
        priority: u32,
        /// Period `T`.
        period: u64,
        /// Length `C`.
        length: u64,
    },
    /// A `SNAPSHOT` dump.
    Snapshot {
        /// Mesh dimensions `[width, height]`.
        mesh: (u32, u32),
        /// Every admitted stream, in admission order.
        streams: Vec<SnapshotStream>,
    },
    /// A `STATS` dump (boxed: the report is by far the widest variant).
    Stats(Box<StatsReport>),
    /// `PROMOTE` succeeded: this node is now the leader.
    Promoted {
        /// The new promotion epoch.
        epoch: u64,
        /// Streams admitted at the moment of promotion.
        streams: u64,
        /// True when the recovery audit (A107-A109) passed.
        audited: bool,
    },
    /// `SHUTDOWN` acknowledged; the server stops accepting.
    ShuttingDown,
    /// The server is overloaded and shed this request before doing any
    /// work; retry after the hinted delay.
    Busy {
        /// Suggested client backoff before retrying, milliseconds.
        retry_after_ms: u64,
    },
    /// The request could not be served (parse failure, unknown id).
    Error {
        /// Machine-readable error class (`malformed`, `unknown_id`,
        /// `too_long`, `degraded`, `wal`, …).
        code: &'static str,
        /// What went wrong.
        message: String,
    },
}

impl Response {
    /// Builds an error response from a code and message.
    pub fn error(code: &'static str, message: impl Into<String>) -> Response {
        Response::Error {
            code,
            message: message.into(),
        }
    }
}

fn write_ids(out: &mut String, key: &str, ids: &[u64]) {
    let _ = write!(out, ",\"{key}\":[");
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{id}");
    }
    out.push(']');
}

fn write_diagnostics(out: &mut String, key: &str, diags: &[Diagnostic]) {
    let _ = write!(out, ",\"{key}\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render_diagnostic_json(d, None));
    }
    out.push(']');
}

/// Renders a response as a single JSON line (no trailing newline; the
/// server appends it). Hand-rolled like the verifier's renderer — the
/// build is offline, so there is no serde.
pub fn render_response(r: &Response) -> String {
    let mut out = String::new();
    match r {
        Response::Admitted {
            id,
            bound,
            deadline,
            slack,
            warnings,
        } => {
            let _ = write!(
                out,
                "{{\"status\":\"admitted\",\"id\":{id},\"bound\":{bound},\"deadline\":{deadline},\"slack\":{slack}"
            );
            if !warnings.is_empty() {
                write_diagnostics(&mut out, "warnings", warnings);
            }
            out.push('}');
        }
        Response::Rejected {
            reason,
            message,
            bound,
            blocked_by,
            victims,
            diagnostics,
        } => {
            let _ = write!(
                out,
                "{{\"status\":\"rejected\",\"reason\":\"{}\",\"message\":\"{}\"",
                reason.as_str(),
                json_escape(message)
            );
            if let Some(b) = bound {
                let _ = write!(out, ",\"bound\":{b}");
            }
            if !blocked_by.is_empty() {
                write_ids(&mut out, "blocked_by", blocked_by);
            }
            if !victims.is_empty() {
                write_ids(&mut out, "victims", victims);
            }
            if !diagnostics.is_empty() {
                write_diagnostics(&mut out, "diagnostics", diagnostics);
            }
            out.push('}');
        }
        Response::Removed { id } => {
            let _ = write!(out, "{{\"status\":\"removed\",\"id\":{id}}}");
        }
        Response::Query {
            id,
            bound,
            deadline,
            slack,
            priority,
            period,
            length,
        } => {
            let _ = write!(
                out,
                "{{\"status\":\"ok\",\"id\":{id},\"bound\":{bound},\"deadline\":{deadline},\"slack\":{slack},\"priority\":{priority},\"period\":{period},\"length\":{length}}}"
            );
        }
        Response::Snapshot { mesh, streams } => {
            let _ = write!(
                out,
                "{{\"status\":\"ok\",\"mesh\":[{},{}],\"count\":{},\"streams\":[",
                mesh.0,
                mesh.1,
                streams.len()
            );
            for (i, s) in streams.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"id\":{},\"src\":[{},{}],\"dst\":[{},{}],\"priority\":{},\"period\":{},\"length\":{},\"deadline\":{},\"bound\":",
                    s.id, s.src.0, s.src.1, s.dst.0, s.dst.1, s.priority, s.period, s.length, s.deadline
                );
                match s.bound.value() {
                    Some(u) => {
                        let _ = write!(out, "{u}");
                    }
                    None => out.push_str("null"),
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        Response::Stats(s) => {
            let _ = write!(
                out,
                "{{\"status\":\"ok\",\"requests\":{{\"admit\":{},\"remove\":{},\"query\":{},\"snapshot\":{},\"stats\":{},\"shutdown\":{},\"promote\":{},\"malformed\":{}}}",
                s.counts[0], s.counts[1], s.counts[2], s.counts[3], s.counts[4], s.counts[5], s.counts[6], s.counts[7]
            );
            let _ = write!(
                out,
                ",\"admitted\":{},\"rejected\":{},\"removed\":{},\"replayed\":{},\"errors\":{},\"shed\":{},\"streams\":{},\"recomputations\":{},\"optimistic\":{}",
                s.admitted, s.rejected, s.removed, s.replayed, s.errors, s.shed, s.streams, s.recomputations, s.optimistic
            );
            if let Some(sh) = &s.shards {
                let _ = write!(
                    out,
                    ",\"shards\":{{\"count\":{},\"cross_admits\":{},\"cross_aborts\":{},\"index_bytes\":{},\"reclaimable_bytes\":{},\"per_shard\":[",
                    sh.count, sh.cross_admits, sh.cross_aborts, sh.index_bytes, sh.reclaimable_bytes
                );
                for (i, p) in sh.per_shard.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"streams\":{},\"cross\":{},\"index_bytes\":{}}}",
                        p.streams, p.cross, p.index_bytes
                    );
                }
                out.push_str("]}");
            }
            if let Some(repl) = &s.repl {
                let _ = write!(
                    out,
                    ",\"replication\":{{\"role\":\"{}\",\"epoch\":{},\"wal_last_synced_seq\":{},\"replication_lag_frames\":{},\"sealed\":{},\"lease_ms\":{},\"fence_events\":{}",
                    repl.role,
                    repl.epoch,
                    repl.wal_last_synced_seq,
                    repl.replication_lag_frames,
                    repl.sealed,
                    repl.lease_ms,
                    repl.fence_events
                );
                if let Some(applied) = repl.applied_seq {
                    let _ = write!(out, ",\"applied_seq\":{applied}");
                }
                if !repl.followers.is_empty() {
                    out.push_str(",\"followers\":[");
                    for (i, f) in repl.followers.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(
                            out,
                            "{{\"peer\":\"{}\",\"acked_seq\":{},\"lag_frames\":{}}}",
                            json_escape(&f.peer),
                            f.acked_seq,
                            f.lag_frames
                        );
                    }
                    out.push(']');
                }
                out.push('}');
            }
            let _ = write!(
                out,
                ",\"queue_us\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                s.queue_count, s.queue_p50_us, s.queue_p90_us, s.queue_p99_us, s.queue_max_us
            );
            let _ = write!(
                out,
                ",\"service_us\":{{\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                s.service_p50_us, s.service_p90_us, s.service_p99_us, s.service_max_us
            );
            let _ = write!(
                out,
                ",\"latency_us\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}}}",
                s.latency_count, s.p50_us, s.p90_us, s.p99_us, s.max_us
            );
        }
        Response::Promoted {
            epoch,
            streams,
            audited,
        } => {
            let _ = write!(
                out,
                "{{\"status\":\"promoted\",\"epoch\":{epoch},\"streams\":{streams},\"audited\":{audited}}}"
            );
        }
        Response::ShuttingDown => out.push_str("{\"status\":\"shutting-down\"}"),
        Response::Busy { retry_after_ms } => {
            let _ = write!(
                out,
                "{{\"status\":\"busy\",\"retry_after_ms\":{retry_after_ms}}}"
            );
        }
        Response::Error { code, message } => {
            let _ = write!(
                out,
                "{{\"status\":\"error\",\"code\":\"{code}\",\"message\":\"{}\"}}",
                json_escape(message)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_request_kind() {
        assert_eq!(
            parse_request("ADMIT 1,2 3,4 2 50 4").unwrap(),
            Request::Admit {
                req_id: 0,
                src: (1, 2),
                dst: (3, 4),
                priority: 2,
                period: 50,
                length: 4,
                deadline: None,
            }
        );
        assert_eq!(
            parse_request("admit 1,2 3,4 2 50 4 40").unwrap(),
            Request::Admit {
                req_id: 0,
                src: (1, 2),
                dst: (3, 4),
                priority: 2,
                period: 50,
                length: 4,
                deadline: Some(40),
            }
        );
        assert_eq!(
            parse_request("REMOVE 7").unwrap(),
            Request::Remove { req_id: 0, id: 7 }
        );
        assert_eq!(parse_request("query 0").unwrap(), Request::Query(0));
        assert_eq!(parse_request("SNAPSHOT").unwrap(), Request::Snapshot);
        assert_eq!(parse_request("Stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("promote").unwrap(), Request::Promote);
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Request::Shutdown);
    }

    #[test]
    fn request_ids_parse_on_writes_only() {
        assert_eq!(
            parse_request("@17 ADMIT 1,2 3,4 2 50 4").unwrap(),
            Request::Admit {
                req_id: 17,
                src: (1, 2),
                dst: (3, 4),
                priority: 2,
                period: 50,
                length: 4,
                deadline: None,
            }
        );
        assert_eq!(
            parse_request("@9 remove 3").unwrap(),
            Request::Remove { req_id: 9, id: 3 }
        );
        for bad in [
            "@0 ADMIT 1,2 3,4 2 50 4",
            "@x REMOVE 1",
            "@5",
            "@5 QUERY 1",
            "@5 STATS",
        ] {
            assert!(parse_request(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn malformed_requests_error_without_panicking() {
        for bad in [
            "",
            "   ",
            "FROB",
            "ADMIT",
            "ADMIT 1,2 3,4 2 50",
            "ADMIT 1;2 3,4 2 50 4",
            "ADMIT 1,2 3,4 -1 50 4",
            "ADMIT 1,2 3,4 2 50 4 40 9",
            "REMOVE",
            "REMOVE x",
            "REMOVE 1 2",
            "QUERY -3",
            "SNAPSHOT now",
            "STATS --all",
            "PROMOTE now",
            "@5 PROMOTE",
            "SHUTDOWN please",
            "ADMIT 99999999999999999999,0 1,0 1 1 1",
        ] {
            assert!(parse_request(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn responses_render_as_single_json_lines() {
        let cases = vec![
            Response::Admitted {
                id: 3,
                bound: 23,
                deadline: 50,
                slack: 27,
                warnings: vec![],
            },
            Response::Rejected {
                reason: RejectReason::BreaksExisting,
                message: "would break \"M1\"".to_string(),
                bound: None,
                blocked_by: vec![],
                victims: vec![1, 4],
                diagnostics: vec![],
            },
            Response::Removed { id: 3 },
            Response::Query {
                id: 3,
                bound: 23,
                deadline: 50,
                slack: 27,
                priority: 2,
                period: 50,
                length: 4,
            },
            Response::Snapshot {
                mesh: (10, 10),
                streams: vec![SnapshotStream {
                    id: 0,
                    src: (1, 2),
                    dst: (3, 4),
                    priority: 2,
                    period: 50,
                    length: 4,
                    deadline: 50,
                    bound: DelayBound::Bounded(23),
                }],
            },
            Response::Stats(Box::default()),
            Response::ShuttingDown,
            Response::Busy { retry_after_ms: 25 },
            Response::error("unknown_id", "unknown stream id 9"),
        ];
        for r in &cases {
            let line = render_response(r);
            assert!(!line.contains('\n'), "{line}");
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"status\":\""), "{line}");
        }
        let rej = render_response(&cases[1]);
        assert!(rej.contains("\"reason\":\"breaks-existing\""), "{rej}");
        assert!(rej.contains("\"victims\":[1,4]"), "{rej}");
        assert!(rej.contains("would break \\\"M1\\\""), "{rej}");
        let snap = render_response(&cases[4]);
        assert!(snap.contains("\"mesh\":[10,10]"), "{snap}");
        assert!(snap.contains("\"src\":[1,2]"), "{snap}");
        assert!(snap.contains("\"bound\":23"), "{snap}");
        let stats = render_response(&cases[5]);
        assert!(stats.contains("\"queue_us\":{"), "{stats}");
        assert!(stats.contains("\"service_us\":{"), "{stats}");
        assert!(stats.contains("\"latency_us\":{"), "{stats}");
        let busy = render_response(&cases[7]);
        assert!(busy.contains("\"retry_after_ms\":25"), "{busy}");
        let err = render_response(&cases[8]);
        assert!(err.contains("\"code\":\"unknown_id\""), "{err}");
    }

    #[test]
    fn shard_stats_render() {
        // Monolithic plane: the key is absent, so the pre-sharding
        // STATS shape is unchanged.
        let plain = render_response(&Response::Stats(Box::default()));
        assert!(!plain.contains("shards"), "{plain}");

        let report = StatsReport {
            shards: Some(ShardsReport {
                count: 4,
                cross_admits: 3,
                cross_aborts: 1,
                index_bytes: 2048,
                reclaimable_bytes: 128,
                per_shard: vec![
                    ShardStats {
                        streams: 5,
                        cross: 2,
                        index_bytes: 1024,
                    },
                    ShardStats {
                        streams: 3,
                        cross: 1,
                        index_bytes: 1024,
                    },
                ],
            }),
            ..StatsReport::default()
        };
        let line = render_response(&Response::Stats(Box::new(report)));
        assert!(
            line.contains(
                "\"shards\":{\"count\":4,\"cross_admits\":3,\"cross_aborts\":1,\"index_bytes\":2048,\"reclaimable_bytes\":128,\"per_shard\":["
            ),
            "{line}"
        );
        assert!(
            line.contains("{\"streams\":5,\"cross\":2,\"index_bytes\":1024},{\"streams\":3,\"cross\":1,\"index_bytes\":1024}]}"),
            "{line}"
        );
        // The shard block sits between the counters and the histograms.
        let shards_at = line.find("\"shards\"").unwrap();
        assert!(line.find("\"optimistic\"").unwrap() < shards_at, "{line}");
        assert!(shards_at < line.find("\"queue_us\"").unwrap(), "{line}");
    }

    #[test]
    fn replication_stats_and_promotion_render() {
        // Without replication configured the key is absent, so the
        // pre-replication STATS shape is unchanged.
        let plain = render_response(&Response::Stats(Box::default()));
        assert!(!plain.contains("replication"), "{plain}");
        assert!(plain.contains("\"promote\":0"), "{plain}");

        let mut report = StatsReport {
            repl: Some(ReplReport {
                role: "leader",
                epoch: 2,
                wal_last_synced_seq: 40,
                applied_seq: None,
                replication_lag_frames: 3,
                followers: vec![FollowerLag {
                    peer: "127.0.0.1:9999".to_string(),
                    acked_seq: 37,
                    lag_frames: 3,
                }],
                sealed: false,
                lease_ms: 750,
                fence_events: 0,
            }),
            ..StatsReport::default()
        };
        let leader = render_response(&Response::Stats(Box::new(report.clone())));
        assert!(
            leader.contains("\"replication\":{\"role\":\"leader\""),
            "{leader}"
        );
        assert!(leader.contains("\"wal_last_synced_seq\":40"), "{leader}");
        assert!(leader.contains("\"replication_lag_frames\":3"), "{leader}");
        assert!(
            leader.contains("\"sealed\":false,\"lease_ms\":750,\"fence_events\":0"),
            "{leader}"
        );
        assert!(leader.contains("\"acked_seq\":37"), "{leader}");
        assert!(!leader.contains("applied_seq"), "{leader}");

        report.repl = Some(ReplReport {
            role: "follower",
            epoch: 1,
            wal_last_synced_seq: 37,
            applied_seq: Some(37),
            replication_lag_frames: 3,
            followers: vec![],
            sealed: true,
            lease_ms: 0,
            fence_events: 1,
        });
        let follower = render_response(&Response::Stats(Box::new(report)));
        assert!(follower.contains("\"role\":\"follower\""), "{follower}");
        assert!(
            follower.contains("\"sealed\":true,\"lease_ms\":0,\"fence_events\":1"),
            "{follower}"
        );
        assert!(follower.contains("\"applied_seq\":37"), "{follower}");
        assert!(!follower.contains("followers"), "{follower}");

        let promoted = render_response(&Response::Promoted {
            epoch: 3,
            streams: 12,
            audited: true,
        });
        assert_eq!(
            promoted,
            "{\"status\":\"promoted\",\"epoch\":3,\"streams\":12,\"audited\":true}"
        );
    }
}
