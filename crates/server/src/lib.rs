//! # rtwc-server
//!
//! The online admission-control service: the paper's host-processor
//! feasibility test exposed as a long-running daemon. Jobs ask for
//! real-time channels over a newline-delimited TCP protocol; every
//! `ADMIT` is gated by the `W0xx` verifier rules and then decided by
//! the incremental [`rtwc_core::AdmissionController`], so the admitted
//! set is feasible **at every instant** — the invariant the paper's
//! run-time scheme depends on.
//!
//! Layering (std only — the build is offline):
//!
//! - [`protocol`] — request grammar and single-line JSON responses,
//!   sharing the verifier's diagnostic JSON shape;
//! - [`service`] — the shared state machine: `RwLock`-guarded
//!   controller, stable ids, accepted-op journal, offline audit;
//! - [`shard_plane`] — the sharded admission plane: link-disjoint
//!   region shards behind per-shard ordered locks, with shard-local
//!   admissions taking only their region's lock and cross-shard
//!   admissions a two-phase canonical-order path (see DESIGN.md);
//! - [`metrics`] — lock-free request counters and a power-of-two
//!   latency histogram behind `STATS`;
//! - [`server`] / [`poll`] / [`client`] — the event-driven TCP front
//!   end: an epoll reactor with per-connection buffers and pipelined
//!   ordered responses, a small worker pool for admission work, and
//!   the matching blocking client;
//! - [`bench`] — the closed-loop multi-client load generator behind
//!   `rtwc bench-serve`;
//! - [`wal`] / [`group_commit`] / [`snapshot`] / [`recovery`] — the
//!   durability layer: a length-and-CRC-framed write-ahead log, group
//!   commit that acknowledges whole batches after one fsync, atomic
//!   snapshots with WAL compaction, and a startup recovery path that
//!   replays and then *audits* the rebuilt state against a fresh
//!   offline analysis;
//! - [`repl`] — replication over the durability layer: a WAL shipper
//!   streaming synced frames to warm-standby followers, resumable
//!   chunked snapshot catch-up, read-only followers that redirect
//!   writes, and audited promotion to leader on demand or on leader
//!   loss;
//! - [`faultfs`] / [`chaos`] — the fault-injection harness behind
//!   `rtwc chaos`: torn writes, lying short writes, fsync failures and
//!   kill-9 truncation, each asserting the recovered state is
//!   bit-identical to a serial replay of the acknowledged history;
//! - [`netchaos`] — deterministic *network* fault injection: a seeded
//!   in-process TCP proxy (partitions, one-way blackholes, latency,
//!   severs, duplicate delivery) that the partition chaos classes and
//!   `rtwc netchaos` drive with timed schedules;
//! - [`sync`] / [`lock_order`] / [`dispatch`] — the concurrency
//!   verification layer: a shim that swaps every lock, condvar, atomic
//!   and thread spawn on the hot paths for `loom` model-checked
//!   equivalents under `--cfg loom`; debug-build lock-rank tracking
//!   that panics on out-of-order acquisition (see DESIGN.md for the
//!   rank table); and the reactor's socket-free dispatch protocol so
//!   the loom models can drive it directly.

// `deny`, not `forbid`: the [`poll`] module is the one place allowed
// to contain `unsafe` — the four raw `epoll`/`close` syscall bindings
// the reactor needs. Everything else in the crate stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod chaos;
pub mod client;
pub mod dispatch;
pub mod faultfs;
pub mod group_commit;
pub mod lock_order;
pub mod metrics;
pub mod netchaos;
pub mod poll;
pub mod protocol;
pub mod recovery;
pub mod repl;
pub mod server;
pub mod service;
pub mod shard_plane;
pub mod snapshot;
pub mod sync;
pub mod wal;

pub use bench::{
    render_bench_json, render_repl_json, render_sweep_json, run_bench, run_bench_repl,
    run_wal_sweep, BenchConfig, BenchOutcome, PartitionBenchOutcome, ReplBenchOutcome, WalSweep,
};
pub use chaos::{render_chaos_report, run_chaos, ChaosConfig, ChaosOutcome, ScenarioOutcome};
pub use client::{Client, ClientConfig, ClientError};
pub use dispatch::{Completion, CompletionQueue, ConnFifo, Job, JobQueue, Wake, MAX_BATCH_LINES};
pub use faultfs::{FailpointFile, FaultPlan, FaultState, MemFile, RealFile, WalFile};
pub use group_commit::{GroupCommitStats, GroupWal};
pub use lock_order::{
    LockClass, TrackedCondvar, TrackedMutex, TrackedMutexGuard, TrackedRwLock,
    TrackedRwLockReadGuard, TrackedRwLockWriteGuard,
};
pub use metrics::{Metrics, MetricsSnapshot, RequestKind};
pub use netchaos::{NetAction, NetChaos, NetChaosHandle, NetSchedule};
pub use poll::{PollEvent, Poller};
pub use protocol::{
    parse_request, render_response, FollowerLag, RejectReason, ReplReport, Request, Response,
    ShardStats, ShardsReport, SnapshotStream, StatsReport, MAX_LINE_BYTES,
};
pub use recovery::{recover, recover_with_file, RecoveredState, RecoveryReport};
pub use repl::{
    catchup::{CatchupOpts, CatchupOutcome},
    follower::{catch_up, Follower, FollowerConfig},
    ship::{Shipper, ShipperConfig},
    ReplHub,
};
pub use server::{Server, ServerConfig, ShutdownHandle};
pub use service::{replay, AcceptedOp, AdmissionService, Durability};
pub use shard_plane::ShardPlane;
pub use snapshot::{load_snapshot, parse_snapshot, write_snapshot, DedupEntry, SnapshotData};
pub use wal::{crc32, FrameIter, FsyncPolicy, Wal, WalOpen, WalRecord};
