//! # rtwc-server
//!
//! The online admission-control service: the paper's host-processor
//! feasibility test exposed as a long-running daemon. Jobs ask for
//! real-time channels over a newline-delimited TCP protocol; every
//! `ADMIT` is gated by the `W0xx` verifier rules and then decided by
//! the incremental [`rtwc_core::AdmissionController`], so the admitted
//! set is feasible **at every instant** — the invariant the paper's
//! run-time scheme depends on.
//!
//! Layering (std only — the build is offline):
//!
//! - [`protocol`] — request grammar and single-line JSON responses,
//!   sharing the verifier's diagnostic JSON shape;
//! - [`service`] — the shared state machine: `RwLock`-guarded
//!   controller, stable ids, accepted-op journal, offline audit;
//! - [`metrics`] — lock-free request counters and a power-of-two
//!   latency histogram behind `STATS`;
//! - [`server`] / [`client`] — the TCP accept loop (thread per
//!   connection, cooperative shutdown) and the matching blocking
//!   client;
//! - [`bench`] — the closed-loop multi-client load generator behind
//!   `rtwc bench-serve`;
//! - [`wal`] / [`snapshot`] / [`recovery`] — the durability layer:
//!   a length-and-CRC-framed write-ahead log persisted before every
//!   acknowledgement, atomic snapshots with WAL compaction, and a
//!   startup recovery path that replays and then *audits* the rebuilt
//!   state against a fresh offline analysis;
//! - [`faultfs`] / [`chaos`] — the fault-injection harness behind
//!   `rtwc chaos`: torn writes, lying short writes, fsync failures and
//!   kill-9 truncation, each asserting the recovered state is
//!   bit-identical to a serial replay of the acknowledged history.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod chaos;
pub mod client;
pub mod faultfs;
pub mod metrics;
pub mod protocol;
pub mod recovery;
pub mod server;
pub mod service;
pub mod snapshot;
pub mod wal;

pub use bench::{
    render_bench_json, render_sweep_json, run_bench, run_wal_sweep, BenchConfig, BenchOutcome,
    WalSweep,
};
pub use chaos::{render_chaos_report, run_chaos, ChaosConfig, ChaosOutcome, ScenarioOutcome};
pub use client::{Client, ClientConfig, ClientError};
pub use faultfs::{FailpointFile, FaultPlan, FaultState, RealFile, WalFile};
pub use metrics::{Metrics, MetricsSnapshot, RequestKind};
pub use protocol::{
    parse_request, render_response, RejectReason, Request, Response, SnapshotStream, StatsReport,
    MAX_LINE_BYTES,
};
pub use recovery::{recover, recover_with_file, RecoveredState, RecoveryReport};
pub use server::{Server, ServerConfig, ShutdownHandle};
pub use service::{replay, AcceptedOp, AdmissionService, Durability};
pub use snapshot::{load_snapshot, write_snapshot, DedupEntry, SnapshotData};
pub use wal::{crc32, FsyncPolicy, Wal, WalOpen, WalRecord};
