//! # rtwc-server
//!
//! The online admission-control service: the paper's host-processor
//! feasibility test exposed as a long-running daemon. Jobs ask for
//! real-time channels over a newline-delimited TCP protocol; every
//! `ADMIT` is gated by the `W0xx` verifier rules and then decided by
//! the incremental [`rtwc_core::AdmissionController`], so the admitted
//! set is feasible **at every instant** — the invariant the paper's
//! run-time scheme depends on.
//!
//! Layering (std only — the build is offline):
//!
//! - [`protocol`] — request grammar and single-line JSON responses,
//!   sharing the verifier's diagnostic JSON shape;
//! - [`service`] — the shared state machine: `RwLock`-guarded
//!   controller, stable ids, accepted-op journal, offline audit;
//! - [`metrics`] — lock-free request counters and a power-of-two
//!   latency histogram behind `STATS`;
//! - [`server`] / [`client`] — the TCP accept loop (thread per
//!   connection, cooperative shutdown) and the matching blocking
//!   client;
//! - [`bench`] — the closed-loop multi-client load generator behind
//!   `rtwc bench-serve`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod client;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod service;

pub use bench::{render_bench_json, run_bench, BenchConfig, BenchOutcome};
pub use client::Client;
pub use metrics::{Metrics, MetricsSnapshot, RequestKind};
pub use protocol::{
    parse_request, render_response, RejectReason, Request, Response, SnapshotStream, StatsReport,
    MAX_LINE_BYTES,
};
pub use server::{Server, ShutdownHandle};
pub use service::{replay, AcceptedOp, AdmissionService};
