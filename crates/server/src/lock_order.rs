//! The lock-order sentinel: rank-annotated lock wrappers that detect
//! potential deadlocks in debug builds.
//!
//! Every long-lived lock in the server belongs to a [`LockClass`] with a
//! documented **rank** (see [`classes`] and the lock-rank table in
//! DESIGN.md "Concurrency verification"). The discipline: a thread may
//! only acquire locks in strictly increasing rank order. Because every
//! thread respects the same total order, no cycle of waiters can form —
//! the classic deadlock-freedom argument.
//!
//! In debug builds (and only there — the instrumentation is compiled out
//! entirely under `--release` and under `--cfg loom`, where the model
//! checker's own deadlock detection takes over), the wrappers enforce
//! this two ways:
//!
//! 1. **Rank check**: acquiring a class whose rank is not strictly above
//!    every class the thread already holds panics immediately, naming
//!    both classes.
//! 2. **Acquisition-order graph**: every observed `held -> acquired`
//!    edge is recorded globally with the backtrace of its first
//!    observation. If a new edge closes a cycle (the reverse path
//!    already exists), the sentinel panics with **both stacks**: the
//!    current acquisition's and the recorded one that established the
//!    opposite order. The graph catches inversions even between classes
//!    an operator added without ranks being total.
//!
//! The wrappers are thin newtypes over [`crate::sync`] primitives: in
//! release builds `lock()` compiles to the underlying `Mutex::lock` plus
//! a poison `expect` — zero additional synchronization, no thread-local
//! traffic, no graph.

use crate::sync;
use std::fmt;

/// A named, ranked equivalence class of locks. Instances are `static`s
/// in [`classes`]; every lock wrapper points at one.
#[derive(Debug)]
pub struct LockClass {
    /// Stable name used in panics and the DESIGN.md table.
    pub name: &'static str,
    /// Position in the global acquisition order (strictly increasing
    /// along any nesting chain).
    pub rank: u32,
    /// Ordered classes hold many parallel lock *instances* (e.g. one
    /// per admission shard); nesting within the class is legal provided
    /// instance numbers strictly increase — the canonical order that
    /// makes cross-instance acquisition deadlock-free.
    pub ordered: bool,
}

impl LockClass {
    /// A new class; `rank` places it in the global order. Instances of
    /// the class may never nest with each other.
    pub const fn new(name: &'static str, rank: u32) -> LockClass {
        LockClass {
            name,
            rank,
            ordered: false,
        }
    }

    /// A class whose instances may nest in strictly ascending instance
    /// order (see [`TrackedRwLock::new_instance`]).
    pub const fn new_ordered(name: &'static str, rank: u32) -> LockClass {
        LockClass {
            name,
            rank,
            ordered: true,
        }
    }
}

/// The server's lock-rank table. Keep in sync with DESIGN.md.
pub mod classes {
    use super::LockClass;

    /// Reactor-to-worker job queue (`dispatch::JobQueue`).
    pub static SERVER_JOBS: LockClass = LockClass::new("server.jobs", 10);
    /// Worker-to-reactor completion list (`dispatch::CompletionQueue`).
    pub static SERVER_COMPLETIONS: LockClass = LockClass::new("server.completions", 20);
    /// Region shards of the sharded admission plane
    /// (`shard_plane::ShardPlane`). Ordered: a cross-shard admission
    /// holds several shard locks at once, always acquired in ascending
    /// shard-id order. Ranked below `SERVICE_INNER` so the admit path can
    /// consult the handle table while holding its shards.
    pub static SHARD: LockClass = LockClass::new_ordered("service.shard", 25);
    /// The admission service's controller + id table
    /// (`service::AdmissionService::inner`).
    pub static SERVICE_INNER: LockClass = LockClass::new("service.inner", 30);
    /// Replication shared state: leader address and per-follower acked
    /// sequences (`repl::ReplHub`). Ranked below the WAL locks so a
    /// shipper may consult the group-commit frontiers while holding it.
    pub static REPL_STATE: LockClass = LockClass::new("repl.state", 35);
    /// Group-commit ticketing metadata (`group_commit::GroupWal::meta`).
    pub static WAL_META: LockClass = LockClass::new("wal.meta", 40);
    /// The WAL file itself (`group_commit::GroupWal::file`).
    pub static WAL_FILE: LockClass = LockClass::new("wal.file", 50);
}

#[cfg(all(debug_assertions, not(loom)))]
mod sentinel {
    use super::LockClass;
    use std::backtrace::Backtrace;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    thread_local! {
        /// `(class, instance)` pairs this thread currently holds, in
        /// acquisition order. Instance is 0 for unordered classes.
        static HELD: RefCell<Vec<(&'static LockClass, u64)>> = const { RefCell::new(Vec::new()) };
    }

    /// First-observation backtraces of `from -> to` acquisition edges,
    /// keyed by class names (class statics make names unique).
    fn graph() -> &'static Mutex<HashMap<(&'static str, &'static str), String>> {
        static GRAPH: OnceLock<Mutex<HashMap<(&'static str, &'static str), String>>> =
            OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Is `to` reachable from `from` through recorded edges?
    fn reachable(
        edges: &HashMap<(&'static str, &'static str), String>,
        from: &'static str,
        to: &'static str,
    ) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            for (f, t) in edges.keys() {
                if *f == n && !seen.contains(t) {
                    seen.push(t);
                    stack.push(t);
                }
            }
        }
        false
    }

    pub fn on_acquire(class: &'static LockClass, instance: u64) {
        let held: Vec<(&'static LockClass, u64)> = HELD.with(|h| h.borrow().clone());
        if !held.is_empty() {
            let here = Backtrace::force_capture().to_string();
            let mut edges = graph()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for &(h, hi) in &held {
                let same_class = std::ptr::eq(h, class);
                // Rank discipline: strictly increasing along any chain,
                // with one sanctioned exception — parallel instances of
                // an *ordered* class nest in ascending instance order.
                let ordered_ok = same_class && class.ordered && hi < instance;
                if h.rank >= class.rank && !ordered_ok {
                    assert!(
                        !(same_class && class.ordered),
                        "lock-order violation: acquiring \"{}\" instance {instance} while \
                         holding instance {hi} — parallel instances of an ordered class \
                         must be acquired in strictly ascending instance order (see the \
                         lock-rank table in DESIGN.md)\n\
                         \n--- acquisition attempted here ---\n{here}",
                        class.name,
                    );
                    let reverse = edges
                        .get(&(class.name, h.name))
                        .cloned()
                        .unwrap_or_else(|| "<never observed>".to_string());
                    panic!(
                        "lock-order violation: acquiring \"{}\" (rank {}) while holding \
                         \"{}\" (rank {}) — ranks must strictly increase along a nesting \
                         chain (see the lock-rank table in DESIGN.md)\n\
                         \n--- acquisition attempted here ---\n{here}\n\
                         --- opposite order \"{}\" -> \"{}\" first recorded here ---\n{reverse}",
                        class.name, class.rank, h.name, h.rank, class.name, h.name,
                    );
                }
                // Within-class edges of an ordered class carry no
                // cross-class ordering information; recording them
                // would self-cycle the graph on the first nesting.
                if same_class {
                    continue;
                }
                // Order graph: record the edge, refuse one that closes a
                // cycle (defense in depth should ranks ever stop being a
                // total order).
                if reachable(&edges, class.name, h.name) {
                    let reverse = edges
                        .get(&(class.name, h.name))
                        .cloned()
                        .unwrap_or_else(|| "<via intermediate classes>".to_string());
                    panic!(
                        "lock-order cycle: acquiring \"{}\" while holding \"{}\" closes a \
                         cycle in the acquisition-order graph\n\
                         \n--- acquisition attempted here ---\n{here}\n\
                         --- opposite order first recorded here ---\n{reverse}",
                        class.name, h.name,
                    );
                }
                edges
                    .entry((h.name, class.name))
                    .or_insert_with(|| here.clone());
            }
        }
        HELD.with(|h| h.borrow_mut().push((class, instance)));
    }

    pub fn on_release(class: &'static LockClass, instance: u64) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(i) = held
                .iter()
                .rposition(|&(c, ci)| std::ptr::eq(c, class) && ci == instance)
            {
                held.remove(i);
            }
        });
    }
}

#[cfg(not(all(debug_assertions, not(loom))))]
mod sentinel {
    use super::LockClass;

    #[inline(always)]
    pub fn on_acquire(_class: &'static LockClass, _instance: u64) {}

    #[inline(always)]
    pub fn on_release(_class: &'static LockClass, _instance: u64) {}
}

/// A [`sync::Mutex`] tagged with a [`LockClass`], enforcing the rank
/// discipline in debug builds.
pub struct TrackedMutex<T> {
    class: &'static LockClass,
    inner: sync::Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// A new mutex belonging to `class`.
    pub fn new(class: &'static LockClass, value: T) -> TrackedMutex<T> {
        TrackedMutex {
            class,
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquire. Panics on a rank violation (debug builds) or if a thread
    /// panicked while holding the lock.
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        sentinel::on_acquire(self.class, 0);
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(|_| panic!("lock \"{}\" poisoned", self.class.name));
        TrackedMutexGuard {
            class: self.class,
            inner: Some(inner),
        }
    }
}

impl<T> fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedMutex")
            .field("class", &self.class.name)
            .finish_non_exhaustive()
    }
}

/// Guard for [`TrackedMutex`].
pub struct TrackedMutexGuard<'a, T> {
    class: &'static LockClass,
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            sentinel::on_release(self.class, 0);
        }
    }
}

/// A [`sync::Condvar`] aware of [`TrackedMutexGuard`]s: waiting releases
/// the guard's class from the thread's held set and re-registers it on
/// wake, so the sentinel never mistakes a wait for a held lock.
pub struct TrackedCondvar {
    inner: sync::Condvar,
}

impl TrackedCondvar {
    /// A new condvar.
    pub fn new() -> TrackedCondvar {
        TrackedCondvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard and wait for a notification, then
    /// reacquire. Panics if the mutex was poisoned.
    pub fn wait<'a, T>(&self, mut guard: TrackedMutexGuard<'a, T>) -> TrackedMutexGuard<'a, T> {
        let class = guard.class;
        let inner = guard.inner.take().expect("guard taken");
        sentinel::on_release(class, 0);
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(|_| panic!("lock \"{}\" poisoned", class.name));
        sentinel::on_acquire(class, 0);
        TrackedMutexGuard {
            class,
            inner: Some(inner),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for TrackedCondvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for TrackedCondvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedCondvar").finish_non_exhaustive()
    }
}

/// A [`sync::RwLock`] tagged with a [`LockClass`]. Shared and exclusive
/// acquisitions participate in the same rank discipline (the rank order
/// must hold regardless of mode — a reader blocking a writer is enough
/// to complete a deadlock cycle).
pub struct TrackedRwLock<T> {
    class: &'static LockClass,
    instance: u64,
    inner: sync::RwLock<T>,
}

impl<T> TrackedRwLock<T> {
    /// A new rwlock belonging to `class`.
    pub fn new(class: &'static LockClass, value: T) -> TrackedRwLock<T> {
        Self::new_instance(class, 0, value)
    }

    /// A new rwlock belonging to an [ordered](LockClass::new_ordered)
    /// class, carrying its position in the class's canonical
    /// acquisition order (ascending instance numbers — e.g. the shard
    /// id for the admission plane's per-shard locks).
    pub fn new_instance(class: &'static LockClass, instance: u64, value: T) -> TrackedRwLock<T> {
        TrackedRwLock {
            class,
            instance,
            inner: sync::RwLock::new(value),
        }
    }

    /// Shared acquire.
    pub fn read(&self) -> TrackedRwLockReadGuard<'_, T> {
        sentinel::on_acquire(self.class, self.instance);
        let inner = self
            .inner
            .read()
            .unwrap_or_else(|_| panic!("lock \"{}\" poisoned", self.class.name));
        TrackedRwLockReadGuard {
            class: self.class,
            instance: self.instance,
            inner: Some(inner),
        }
    }

    /// Exclusive acquire.
    pub fn write(&self) -> TrackedRwLockWriteGuard<'_, T> {
        sentinel::on_acquire(self.class, self.instance);
        let inner = self
            .inner
            .write()
            .unwrap_or_else(|_| panic!("lock \"{}\" poisoned", self.class.name));
        TrackedRwLockWriteGuard {
            class: self.class,
            instance: self.instance,
            inner: Some(inner),
        }
    }
}

impl<T> fmt::Debug for TrackedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrackedRwLock")
            .field("class", &self.class.name)
            .finish_non_exhaustive()
    }
}

/// Shared guard for [`TrackedRwLock`].
pub struct TrackedRwLockReadGuard<'a, T> {
    class: &'static LockClass,
    instance: u64,
    inner: Option<sync::RwLockReadGuard<'a, T>>,
}

impl<T> std::ops::Deref for TrackedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> Drop for TrackedRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            sentinel::on_release(self.class, self.instance);
        }
    }
}

/// Exclusive guard for [`TrackedRwLock`].
pub struct TrackedRwLockWriteGuard<'a, T> {
    class: &'static LockClass,
    instance: u64,
    inner: Option<sync::RwLockWriteGuard<'a, T>>,
}

impl<T> std::ops::Deref for TrackedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> std::ops::DerefMut for TrackedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T> Drop for TrackedRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            sentinel::on_release(self.class, self.instance);
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    // Test-local classes: the global graph is shared process-wide, so
    // tests must not pollute the production classes' edges.
    static LOW: LockClass = LockClass::new("test.low", 1);
    static HIGH: LockClass = LockClass::new("test.high", 2);
    static A: LockClass = LockClass::new("test.a", 7);
    static B: LockClass = LockClass::new("test.b", 7);
    static ORD: LockClass = LockClass::new_ordered("test.ord", 5);

    #[test]
    fn ascending_acquisition_is_allowed() {
        let low = TrackedMutex::new(&LOW, 1u32);
        let high = TrackedMutex::new(&HIGH, 2u32);
        let g1 = low.lock();
        let g2 = high.lock();
        assert_eq!(*g1 + *g2, 3);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "sentinel is debug-only")]
    fn inverted_acquisition_panics_with_both_stacks() {
        let low = TrackedMutex::new(&LOW, ());
        let high = TrackedMutex::new(&HIGH, ());
        // Establish the sanctioned order once.
        {
            let _g1 = low.lock();
            let _g2 = high.lock();
        }
        // Invert it: the sentinel must panic while both orders' stacks
        // are available.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g2 = high.lock();
            let _g1 = low.lock();
        }))
        .expect_err("inverted acquisition must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-order violation"), "{msg}");
        assert!(msg.contains("test.low"), "{msg}");
        assert!(msg.contains("test.high"), "{msg}");
        assert!(msg.contains("acquisition attempted here"), "{msg}");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "sentinel is debug-only")]
    fn equal_ranks_cannot_nest() {
        let a = TrackedMutex::new(&A, ());
        let b = TrackedMutex::new(&B, ());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g1 = a.lock();
            let _g2 = b.lock();
        }))
        .expect_err("equal-rank nesting must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-order violation"), "{msg}");
    }

    #[test]
    fn ordered_class_nests_in_ascending_instance_order() {
        let s0 = TrackedRwLock::new_instance(&ORD, 0, 1u32);
        let s2 = TrackedRwLock::new_instance(&ORD, 2, 2u32);
        let s5 = TrackedRwLock::new_instance(&ORD, 5, 3u32);
        // Ascending instances (with gaps) nest freely, and a higher
        // rank may still be taken on top.
        let g0 = s0.write();
        let g2 = s2.write();
        let g5 = s5.read();
        let above = TrackedMutex::new(&A, 4u32);
        let ga = above.lock();
        assert_eq!(*g0 + *g2 + *g5 + *ga, 10);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "sentinel is debug-only")]
    fn ordered_class_rejects_descending_instances() {
        let s1 = TrackedRwLock::new_instance(&ORD, 1, ());
        let s3 = TrackedRwLock::new_instance(&ORD, 3, ());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g3 = s3.write();
            let _g1 = s1.write();
        }))
        .expect_err("descending instance acquisition must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("ascending instance order"), "{msg}");
        assert!(msg.contains("test.ord"), "{msg}");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "sentinel is debug-only")]
    fn ordered_class_rejects_self_nesting() {
        let s1a = TrackedRwLock::new_instance(&ORD, 1, ());
        let s1b = TrackedRwLock::new_instance(&ORD, 1, ());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ga = s1a.read();
            let _gb = s1b.read();
        }))
        .expect_err("equal instance numbers must not nest");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("ascending instance order"), "{msg}");
    }

    #[test]
    fn condvar_wait_releases_the_class() {
        use std::sync::Arc;
        let pair = Arc::new((TrackedMutex::new(&HIGH, false), TrackedCondvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g);
                // While waiting, HIGH was not held: acquiring LOW here
                // after the wake is a fresh chain, not an inversion —
                // the Drop below exercises release bookkeeping.
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        waiter.join().unwrap();
        // After everything is released, a LOW acquisition is clean.
        let low = TrackedMutex::new(&LOW, ());
        let _g = low.lock();
    }

    #[test]
    fn rwlock_participates_in_ranks() {
        let inner = TrackedRwLock::new(&LOW, 5u32);
        let high = TrackedMutex::new(&HIGH, 1u32);
        {
            let r = inner.read();
            let g = high.lock();
            assert_eq!(*r + *g, 6);
        }
        {
            let mut w = inner.write();
            *w += 1;
            let _g = high.lock();
        }
    }
}
