//! Group commit: amortizing the WAL's fsync cost over batches of
//! accepted operations.
//!
//! The per-op durability path of PR 3 paid one `fdatasync` per accepted
//! operation under `--fsync always` — correct, but the fsync dominates
//! the admission latency and serializes the whole write path behind the
//! device. [`GroupWal`] keeps the *durable-before-ack* contract while
//! paying one fsync per **batch**:
//!
//! 1. [`GroupWal::append`] encodes nothing and touches no file — it
//!    buffers the op under a small metadata mutex and returns a
//!    monotonically increasing *ticket*. Appends therefore never block
//!    behind an in-flight fsync.
//! 2. [`GroupWal::wait_durable`] blocks the acknowledging thread until
//!    its ticket is covered. The first waiter to find no sync in flight
//!    becomes the **leader**: it drains the buffer, writes every
//!    record, issues one `fdatasync`, and wakes every waiter whose
//!    ticket the sync covered. Ops that arrive while the leader is
//!    inside the fsync accumulate into the next batch — under
//!    concurrency the batch size grows with load, which is exactly the
//!    amortization.
//! 3. Under `--fsync interval` the flush + sync runs on the server's
//!    background flusher thread via [`GroupWal::sync_if_due`] — no
//!    request thread ever pays the fsync latency, and the sync never
//!    runs under the service write lock; under `--fsync never` the
//!    buffer is flushed (without sync) on size or at shutdown.
//!
//! ## Failure semantics
//!
//! A failed batch write or sync **rolls the file back to the last
//! durable point** — the whole in-flight batch disappears, every
//! pending ticket fails, and the log is marked broken (the service
//! degrades to read-only). This preserves the recovery invariant: under
//! `always`, the file never holds a record whose op was not (or will
//! not be) acknowledged, so recovery lands exactly on the acknowledged
//! prefix. The price of asynchronous acknowledgement is that a failed
//! batch cannot be rolled out of the in-memory controller: the ops stay
//! visible (unacknowledged) until the operator restarts — recovery then
//! serves the durable prefix.
//!
//! A snapshot reset ([`GroupWal::reset`]) makes every outstanding
//! ticket durable at once: the snapshot itself is fsynced and covers
//! every buffered op, so the buffer is discarded, the log restarts
//! empty, and all waiters are released.

use crate::lock_order::{classes, TrackedCondvar, TrackedMutex, TrackedMutexGuard};
use crate::service::AcceptedOp;
use crate::sync::Instant;
use crate::wal::{FsyncPolicy, Wal};
use std::io;

/// Buffered records that trigger a size-based flush under
/// [`FsyncPolicy::Never`] (no waiter ever drains the buffer otherwise).
const NEVER_FLUSH_THRESHOLD: usize = 512;

/// Power-of-two batch-size histogram buckets.
const BATCH_BUCKETS: usize = 16;

/// Group-commit instrumentation: how many records each fsync covered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Group fsyncs issued (excludes header/reset syncs).
    pub syncs: u64,
    /// Operations covered by those fsyncs.
    pub ops_synced: u64,
    /// Largest single batch.
    pub max_batch: u64,
    /// `batch_hist[i]` counts batches of size in `[2^i, 2^(i+1))`.
    pub batch_hist: [u64; BATCH_BUCKETS],
}

impl GroupCommitStats {
    /// Mean ops per fsync (0 when no sync has run).
    pub fn mean_batch(&self) -> f64 {
        if self.syncs == 0 {
            0.0
        } else {
            self.ops_synced as f64 / self.syncs as f64
        }
    }

    fn record(&mut self, batch: u64) {
        self.syncs += 1;
        self.ops_synced += batch;
        self.max_batch = self.max_batch.max(batch);
        let b = (63 - batch.max(1).leading_zeros() as usize).min(BATCH_BUCKETS - 1);
        self.batch_hist[b] += 1;
    }
}

fn broken_err() -> io::Error {
    io::Error::other("WAL is broken (earlier device error)")
}

/// Global sequence-number frontiers of the log, for replication and
/// STATS (see [`GroupWal::frontiers`]). `flushed >= synced` always; a
/// snapshot reset advances both to the snapshot sequence at once.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalFrontiers {
    /// Highest operation sequence covered by an fsync (or a snapshot
    /// reset) — safe to ship under any policy.
    pub synced: u64,
    /// Highest operation sequence whose record reached the file.
    pub flushed: u64,
}

/// Ticketing / batching state, held only for microseconds at a time —
/// never across file I/O.
#[derive(Debug)]
struct Meta {
    /// Ops appended this process run (ticket counter).
    written_seq: u64,
    /// Tickets covered by a group fsync or a snapshot reset.
    durable_seq: u64,
    /// Tickets whose records reached the file (>= `durable_seq` except
    /// under `never`/`interval` between syncs).
    flushed_seq: u64,
    /// `written_seq` at the last [`GroupWal::reset`] (or open).
    reset_mark: u64,
    /// Operations in the history before any append of this process run:
    /// the log's own `base_seq` (snapshot-covered ops) **plus** the
    /// records already in the file at open. Updated to the snapshot
    /// sequence on [`GroupWal::reset`].
    base_seq: u64,
    /// Buffered `(req_id, op)` records awaiting the next flush.
    pending: Vec<(u64, AcceptedOp)>,
    /// A leader is writing/syncing outside the metadata lock.
    leading: bool,
    broken: bool,
    /// `(end_offset, records)` of the last durable point — the batch
    /// rollback target.
    durable_end: u64,
    durable_records: u64,
    last_sync: Instant,
    stats: GroupCommitStats,
}

/// A [`Wal`] behind a group-commit front: lock-cheap buffered appends,
/// leader-elected batched fsyncs, whole-batch rollback on error.
#[derive(Debug)]
pub struct GroupWal {
    meta: TrackedMutex<Meta>,
    cond: TrackedCondvar,
    file: TrackedMutex<Wal>,
    policy: FsyncPolicy,
}

impl GroupWal {
    /// Wraps an open log. The wal's policy decides when syncs run.
    pub fn new(wal: Wal) -> GroupWal {
        let policy = wal.policy();
        let meta = Meta {
            written_seq: 0,
            durable_seq: 0,
            flushed_seq: 0,
            reset_mark: 0,
            // `Wal::seq()` is already `base_seq + records`: a reopened
            // log's records are part of the history, so they count.
            base_seq: wal.seq(),
            pending: Vec::new(),
            leading: false,
            broken: false,
            durable_end: wal.end_offset(),
            durable_records: wal.records(),
            last_sync: Instant::now(),
            stats: GroupCommitStats::default(),
        };
        GroupWal {
            meta: TrackedMutex::new(&classes::WAL_META, meta),
            cond: TrackedCondvar::new(),
            file: TrackedMutex::new(&classes::WAL_FILE, wal),
            policy,
        }
    }

    /// The active fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// True once a batch write/sync failed; the log refuses appends and
    /// the service should degrade to read-only.
    pub fn is_broken(&self) -> bool {
        self.meta.lock().broken
    }

    /// Ops appended since the last snapshot reset (buffered or filed) —
    /// the snapshot-cadence counter.
    pub fn records_since_reset(&self) -> u64 {
        let m = self.meta.lock();
        m.written_seq - m.reset_mark
    }

    /// The operation sequence number the next append will get
    /// (`base_seq` + ops since reset).
    pub fn seq(&self) -> u64 {
        let m = self.meta.lock();
        m.base_seq + (m.written_seq - m.reset_mark)
    }

    /// A copy of the batching statistics.
    pub fn stats(&self) -> GroupCommitStats {
        self.meta.lock().stats
    }

    /// The current replication frontiers as global operation sequence
    /// numbers (same numbering as [`GroupWal::seq`]). The WAL shipper
    /// must never stream a record past the safe frontier for the
    /// policy: under `always` a flushed-but-unsynced batch can still be
    /// rolled back whole, so only `synced` is safe; under
    /// `interval`/`never` flushed records are never rolled back and
    /// `flushed` is the frontier.
    pub fn frontiers(&self) -> WalFrontiers {
        let m = self.meta.lock();
        WalFrontiers {
            synced: m.base_seq + (m.durable_seq - m.reset_mark),
            flushed: m.base_seq + (m.flushed_seq - m.reset_mark),
        }
    }

    /// Buffers one accepted operation and returns its ticket for
    /// [`GroupWal::wait_durable`]. No fsync ever runs on this path —
    /// callers hold the service write lock here, and a sync inside it
    /// would stall every concurrent admission. Under `never` a full
    /// buffer is written out (page cache only, no sync).
    pub fn append(&self, req_id: u64, op: &AcceptedOp) -> io::Result<u64> {
        let mut m = self.meta.lock();
        if m.broken {
            return Err(broken_err());
        }
        m.written_seq += 1;
        let ticket = m.written_seq;
        m.pending.push((req_id, op.clone()));
        if self.policy == FsyncPolicy::Never
            && m.pending.len() >= NEVER_FLUSH_THRESHOLD
            && !m.leading
        {
            self.lead(m, false)?;
        }
        Ok(ticket)
    }

    /// Blocks until `ticket` is durable — covered by a group fsync or a
    /// snapshot reset. The caller acknowledges only after this returns.
    /// Under `interval`/`never`, durability is not part of the ack
    /// contract and this returns immediately (the interval cadence is
    /// driven by [`GroupWal::sync_if_due`] from a background thread).
    pub fn wait_durable(&self, ticket: u64) -> io::Result<()> {
        if self.policy != FsyncPolicy::Always {
            return Ok(());
        }
        let mut m = self.meta.lock();
        loop {
            if m.durable_seq >= ticket {
                return Ok(());
            }
            if m.broken {
                return Err(broken_err());
            }
            if m.leading {
                m = self.cond.wait(m);
            } else {
                self.lead(m, true)?;
                m = self.meta.lock();
            }
        }
    }

    /// Runs the `interval` policy's flush + fsync if the interval has
    /// elapsed and un-synced records are outstanding; returns whether a
    /// sync ran. Called from the server's background flusher thread so
    /// no request thread ever pays the fsync latency (an fsync landing
    /// on a request's critical path is exactly the p99 tail group
    /// commit exists to remove). No-op under `always` (waiters drive
    /// the syncs) and `never` (size/shutdown flushes only).
    pub fn sync_if_due(&self) -> io::Result<bool> {
        let FsyncPolicy::Interval(every) = self.policy else {
            return Ok(false);
        };
        let m = self.meta.lock();
        if m.broken || m.leading || m.durable_seq >= m.written_seq || m.last_sync.elapsed() < every
        {
            return Ok(false);
        }
        self.lead(m, true).map(|()| true)
    }

    /// Writes every buffered record to the file; syncs except under
    /// `never`. The clean-shutdown path.
    pub fn flush(&self) -> io::Result<()> {
        let mut m = self.meta.lock();
        while m.leading {
            m = self.cond.wait(m);
        }
        if m.broken {
            return Err(broken_err());
        }
        let need_sync = self.policy != FsyncPolicy::Never;
        if m.pending.is_empty() && (!need_sync || m.durable_seq >= m.written_seq) {
            return Ok(());
        }
        self.lead(m, need_sync)
    }

    /// Restarts the log after a snapshot at sequence `base_seq`. The
    /// fsynced snapshot covers every op appended so far, so the pending
    /// buffer is discarded, every outstanding ticket becomes durable,
    /// and all waiters are released.
    pub fn reset(&self, base_seq: u64) -> io::Result<()> {
        let mut m = self.meta.lock();
        while m.leading {
            m = self.cond.wait(m);
        }
        if m.broken {
            return Err(broken_err());
        }
        m.pending.clear();
        m.leading = true;
        drop(m);
        let res = {
            let mut wal = self.file.lock();
            wal.reset(base_seq)
                .map(|()| (wal.end_offset(), wal.records()))
        };
        let mut m = self.meta.lock();
        m.leading = false;
        let out = match res {
            Ok((end, records)) => {
                m.durable_seq = m.written_seq;
                m.flushed_seq = m.written_seq;
                m.reset_mark = m.written_seq;
                m.base_seq = base_seq;
                m.durable_end = end;
                m.durable_records = records;
                m.last_sync = Instant::now();
                Ok(())
            }
            Err(e) => {
                m.broken = true;
                Err(e)
            }
        };
        drop(m);
        self.cond.notify_all();
        out
    }

    /// The leader path: drain the buffer, write the batch, optionally
    /// sync, publish the new durable point, wake everyone. Called with
    /// the metadata lock held; file I/O runs without it so appends keep
    /// flowing while the device works.
    fn lead(&self, mut m: TrackedMutexGuard<'_, Meta>, need_sync: bool) -> io::Result<()> {
        m.leading = true;
        let batch: Vec<(u64, AcceptedOp)> = std::mem::take(&mut m.pending);
        let target = m.written_seq;
        let (rollback_end, rollback_records) = (m.durable_end, m.durable_records);
        drop(m);

        let mut res: io::Result<()> = Ok(());
        let (end, records) = {
            let mut wal = self.file.lock();
            for (req_id, op) in &batch {
                if let Err(e) = wal.append_raw(*req_id, op) {
                    res = Err(e);
                    break;
                }
            }
            if need_sync {
                if res.is_ok() {
                    if let Err(e) = wal.sync_now() {
                        res = Err(e);
                    }
                }
                if res.is_err() {
                    // Whole-batch rollback: none of these tickets was
                    // (or will be) acknowledged, so none of their
                    // records may survive into recovery.
                    let _ = wal.truncate_to(rollback_end, rollback_records);
                }
            }
            (wal.end_offset(), wal.records())
        };

        let mut m = self.meta.lock();
        m.leading = false;
        match &res {
            Ok(()) => {
                m.flushed_seq = m.flushed_seq.max(target);
                if need_sync {
                    let covered = target.saturating_sub(m.durable_seq);
                    m.durable_seq = m.durable_seq.max(target);
                    m.durable_end = end;
                    m.durable_records = records;
                    m.last_sync = Instant::now();
                    if covered > 0 {
                        m.stats.record(covered);
                    }
                }
            }
            Err(_) => {
                m.broken = true;
            }
        }
        drop(m);
        self.cond.notify_all();
        res
    }
}

impl Drop for GroupWal {
    fn drop(&mut self) {
        // Best-effort: land buffered records (chaos and clean shutdown
        // both read the file right after the service drops).
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultfs::{FailpointFile, FaultPlan, FaultState, RealFile};
    use crate::wal::{Wal, WAL_FILE};
    use rtwc_core::StreamSpec;
    use std::sync::Arc;
    use std::time::Duration;
    use wormnet_topology::NodeId;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rtwc-gc-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(WAL_FILE)
    }

    fn admit(handle: u64) -> AcceptedOp {
        AcceptedOp::Admit {
            handle,
            spec: StreamSpec::new(
                NodeId(handle as u32),
                NodeId(handle as u32 + 1),
                2,
                50,
                4,
                50,
            ),
        }
    }

    fn open(path: &std::path::Path, policy: FsyncPolicy) -> GroupWal {
        let (wal, _) = Wal::open(Box::new(RealFile::open(path).unwrap()), policy).unwrap();
        GroupWal::new(wal)
    }

    fn reopen_records(path: &std::path::Path) -> usize {
        let (_, opened) =
            Wal::open(Box::new(RealFile::open(path).unwrap()), FsyncPolicy::Never).unwrap();
        opened.records.len()
    }

    #[test]
    fn always_append_wait_lands_records() {
        let path = tmp("always");
        let gc = open(&path, FsyncPolicy::Always);
        for i in 0..5u64 {
            let t = gc.append(i, &admit(i)).unwrap();
            gc.wait_durable(t).unwrap();
        }
        assert_eq!(gc.records_since_reset(), 5);
        let stats = gc.stats();
        assert_eq!(stats.ops_synced, 5);
        assert!(stats.syncs >= 1 && stats.syncs <= 5);
        drop(gc);
        assert_eq!(reopen_records(&path), 5);
    }

    #[test]
    fn concurrent_waiters_batch_under_one_leader() {
        let path = tmp("batch");
        let gc = Arc::new(open(&path, FsyncPolicy::Always));
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let gc = Arc::clone(&gc);
                std::thread::spawn(move || {
                    for i in 0..25u64 {
                        let ticket = gc.append(t * 100 + i, &admit(t * 100 + i)).unwrap();
                        gc.wait_durable(ticket).unwrap();
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let stats = gc.stats();
        assert_eq!(stats.ops_synced, 100, "{stats:?}");
        assert!(stats.max_batch >= 1, "{stats:?}");
        drop(gc);
        assert_eq!(reopen_records(&path), 100);
    }

    #[test]
    fn failed_group_sync_rolls_back_the_whole_batch() {
        let path = tmp("syncfail");
        let state = Arc::new(FaultState::default());
        let plan = FaultPlan {
            // Sync #1 is the header; the first group sync fails.
            fail_sync_from: Some(2),
            ..FaultPlan::default()
        };
        let file = Box::new(FailpointFile::open(&path, plan, Arc::clone(&state)).unwrap());
        let (wal, _) = Wal::open(file, FsyncPolicy::Always).unwrap();
        let gc = GroupWal::new(wal);
        let t = gc.append(1, &admit(0)).unwrap();
        let err = gc.wait_durable(t).unwrap_err();
        assert!(err.to_string().contains("fsync"), "{err}");
        assert!(gc.is_broken());
        assert!(
            gc.append(2, &admit(1)).is_err(),
            "broken log refuses appends"
        );
        drop(gc);
        // The batch was rolled back: recovery sees zero records.
        assert_eq!(reopen_records(&path), 0);
        assert!(state.fired());
    }

    #[test]
    fn never_policy_flushes_on_drop() {
        let path = tmp("never");
        let gc = open(&path, FsyncPolicy::Never);
        for i in 0..7u64 {
            let t = gc.append(i, &admit(i)).unwrap();
            gc.wait_durable(t).unwrap(); // returns immediately
        }
        assert_eq!(gc.stats().syncs, 0, "never policy must not sync");
        drop(gc); // flush lands the buffered records
        assert_eq!(reopen_records(&path), 7);
    }

    #[test]
    fn interval_policy_syncs_opportunistically() {
        let path = tmp("interval");
        let gc = open(&path, FsyncPolicy::Interval(Duration::from_millis(1)));
        let t0 = gc.append(1, &admit(0)).unwrap();
        gc.wait_durable(t0).unwrap(); // immediate: durability not in the ack contract
        std::thread::sleep(Duration::from_millis(5));
        gc.append(2, &admit(1)).unwrap();
        assert!(gc.sync_if_due().unwrap(), "elapsed interval must sync");
        assert!(
            !gc.sync_if_due().unwrap(),
            "nothing outstanding after the sync"
        );
        assert!(gc.stats().syncs >= 1, "{:?}", gc.stats());
        drop(gc);
        assert_eq!(reopen_records(&path), 2);
    }

    #[test]
    fn frontiers_track_sync_flush_and_reset() {
        let path = tmp("frontiers");
        let gc = open(&path, FsyncPolicy::Always);
        assert_eq!(gc.frontiers(), WalFrontiers::default());
        let t = gc.append(1, &admit(0)).unwrap();
        // Buffered only: neither frontier moved yet.
        assert_eq!(gc.frontiers().synced, 0);
        gc.wait_durable(t).unwrap();
        let f = gc.frontiers();
        assert_eq!(f.synced, 1);
        assert_eq!(f.flushed, 1);
        gc.reset(3).unwrap();
        let f = gc.frontiers();
        assert_eq!((f.synced, f.flushed), (3, 3));
        let t = gc.append(2, &admit(1)).unwrap();
        gc.wait_durable(t).unwrap();
        assert_eq!(gc.frontiers().synced, 4);
        drop(gc);
        // A reopened log counts its surviving records as synced.
        let gc = open(&path, FsyncPolicy::Always);
        assert_eq!(gc.frontiers().synced, 4);
    }

    #[test]
    fn reset_covers_outstanding_tickets_and_restarts_the_log() {
        let path = tmp("reset");
        let gc = open(&path, FsyncPolicy::Always);
        let t = gc.append(1, &admit(0)).unwrap();
        // Snapshot taken: the op is covered without any WAL sync.
        gc.reset(1).unwrap();
        gc.wait_durable(t).unwrap();
        assert_eq!(gc.seq(), 1);
        assert_eq!(gc.records_since_reset(), 0);
        drop(gc);
        assert_eq!(reopen_records(&path), 0);
    }
}
