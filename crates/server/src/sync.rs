//! Swappable concurrency primitives: `std::sync`/`std::thread`/`std::time`
//! in real builds, [`loom`] model-checked equivalents under `--cfg loom`.
//!
//! Every lock, condvar, atomic, and thread spawn on the server's hot
//! concurrent paths (`group_commit`, `service`, `dispatch`) goes through
//! this module instead of `std` directly. In a normal build the re-exports
//! are zero-cost aliases of the `std` types — nothing changes. Under
//! `RUSTFLAGS="--cfg loom"` the same code compiles against the `loom`
//! model checker, whose scheduler exhaustively explores thread
//! interleavings at every synchronization point (see
//! `crates/server/tests/loom_models.rs` for the models and DESIGN.md
//! "Concurrency verification" for the inventory).
//!
//! [`Instant`] is shimmed too: loom executions must be deterministic, so
//! the loom variant is a unit type whose `elapsed()` is always zero.
//! Time-based behavior (the `interval` fsync cadence, latency metrics)
//! is therefore invisible to the models — they exercise the `always` and
//! `never` policies, where correctness does not hinge on the clock.

#[cfg(loom)]
pub use loom::thread;
#[cfg(not(loom))]
pub use std::thread;

#[cfg(loom)]
pub use loom::sync::{
    atomic, Arc, Condvar, LockResult, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
#[cfg(not(loom))]
pub use std::sync::{
    atomic, Arc, Condvar, LockResult, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[cfg(not(loom))]
pub use std::time::Instant;

/// Deterministic stand-in for [`std::time::Instant`] under the model
/// checker: `now()` is a constant and `elapsed()` is always zero, so no
/// model branch ever depends on wall-clock time.
#[cfg(loom)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Instant;

#[cfg(loom)]
impl Instant {
    /// The (only) model instant.
    pub fn now() -> Instant {
        Instant
    }

    /// Always zero: model time does not pass.
    pub fn elapsed(&self) -> std::time::Duration {
        std::time::Duration::ZERO
    }
}
