//! The TCP front end: a blocking accept loop with one worker thread per
//! connection, newline-delimited requests in, single-line JSON out.
//!
//! Shutdown is cooperative and lock-free: the `SHUTDOWN` handler sets a
//! shared [`AtomicBool`] and then self-connects to the listening socket
//! to unblock the accept loop. Workers poll the flag on a 100ms read
//! timeout, so every connection drains within one timeout tick of the
//! request; the accept loop then joins every worker before returning.
//!
//! Input is untrusted: the line reader accumulates at most
//! [`MAX_LINE_BYTES`] per request (never an unbounded buffer), answers
//! an overlong line with `code:"too_long"`, discards bytes up to the
//! next newline, and **keeps the connection** — one bad request does
//! not kill a client's session. A connection cap
//! ([`ServerConfig::max_connections`]) sheds excess connects with a
//! single `busy` line instead of accepting unbounded worker threads.

use crate::protocol::{render_response, Response, MAX_LINE_BYTES};
use crate::service::AdmissionService;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// How long a worker blocks in `read` before re-checking the shutdown
/// flag. Partial input read before the tick stays buffered.
const READ_TICK: Duration = Duration::from_millis(100);

/// Front-end limits.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerConfig {
    /// Maximum simultaneous connections; further connects are answered
    /// with one `busy` line and closed (0 = unlimited).
    pub max_connections: usize,
}

/// A running admission server bound to a socket.
pub struct Server {
    listener: TcpListener,
    service: Arc<AdmissionService>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port). The listener
    /// is live when this returns; call [`Server::run`] to serve.
    pub fn bind(service: Arc<AdmissionService>, addr: &str) -> io::Result<Server> {
        Self::bind_with_config(service, addr, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit [`ServerConfig`] limits.
    pub fn bind_with_config(
        service: Arc<AdmissionService>,
        addr: &str,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service,
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
        })
    }

    /// The bound address (the real port when bound to port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops the server from another thread, exactly as a
    /// client's `SHUTDOWN` would.
    pub fn shutdown_handle(&self) -> io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
            addr: self.local_addr()?,
        })
    }

    /// Serves until a `SHUTDOWN` request (or a [`ShutdownHandle`])
    /// stops it, then joins every worker thread.
    pub fn run(self) -> io::Result<()> {
        let addr = self.local_addr()?;
        let active = Arc::new(AtomicUsize::new(0));
        let mut workers = Vec::new();
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let mut stream = match conn {
                Ok(s) => s,
                // A single failed accept (e.g. the peer vanished
                // between SYN and accept) is not fatal to the server.
                Err(_) => continue,
            };
            if self.config.max_connections > 0
                && active.load(Ordering::SeqCst) >= self.config.max_connections
            {
                // Shed at accept: one busy line, then close. The peer
                // learns to back off instead of hanging in a queue.
                let mut line = render_response(&Response::Busy {
                    retry_after_ms: 100,
                });
                line.push('\n');
                let _ = stream.write_all(line.as_bytes());
                continue;
            }
            active.fetch_add(1, Ordering::SeqCst);
            let service = Arc::clone(&self.service);
            let shutdown = Arc::clone(&self.shutdown);
            let active = Arc::clone(&active);
            workers.push(thread::spawn(move || {
                // Worker errors are per-connection: the peer is gone,
                // nothing to report to.
                let _ = serve_connection(stream, &service, &shutdown, addr);
                active.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Stops a [`Server`] from outside the protocol.
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Sets the shutdown flag and unblocks the accept loop.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        wake_acceptor(self.addr);
    }
}

/// Unblocks a blocking `accept` by self-connecting; the accept loop
/// re-checks the flag on wake-up.
fn wake_acceptor(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Serves one connection until EOF, a fatal input, or shutdown.
///
/// The reader accumulates at most [`MAX_LINE_BYTES`] (+1 sentinel byte
/// to detect overflow) per request. An overlong line is answered with
/// `code:"too_long"`, the rest of the line is discarded as it streams
/// in, and the connection resynchronizes at the next newline.
fn serve_connection(
    stream: TcpStream,
    service: &AdmissionService,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TICK))?;
    // Responses are single small writes; without TCP_NODELAY they sit
    // in Nagle's buffer waiting for the peer's delayed ACK (~40ms per
    // round trip on loopback).
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    let mut discarding = false;
    loop {
        // One fill_buf pass per iteration; partial requests stay in
        // `line` across timeout ticks.
        let (newline, take) = {
            let buf = match reader.fill_buf() {
                Ok(b) => b,
                Err(e) if is_timeout(&e) => {
                    if shutdown.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    continue;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if buf.is_empty() {
                return Ok(()); // EOF
            }
            let newline = buf.iter().position(|&b| b == b'\n');
            let keep = newline.unwrap_or(buf.len());
            if !discarding {
                let room = (MAX_LINE_BYTES + 1).saturating_sub(line.len());
                line.extend_from_slice(&buf[..keep.min(room)]);
            }
            (newline.is_some(), newline.map_or(buf.len(), |p| p + 1))
        };
        reader.consume(take);
        if !newline {
            if !discarding && line.len() > MAX_LINE_BYTES {
                // Overflow mid-line: answer now, skip to the newline.
                too_long(&mut writer)?;
                line.clear();
                discarding = true;
            }
            continue;
        }
        if discarding {
            discarding = false;
            continue;
        }
        if line.len() > MAX_LINE_BYTES {
            too_long(&mut writer)?;
            line.clear();
            continue;
        }
        let text = String::from_utf8_lossy(&line);
        let request = text.trim();
        if !request.is_empty() {
            let (response, stop) = service.dispatch_line(request);
            let mut payload = render_response(&response);
            payload.push('\n');
            writer.write_all(payload.as_bytes())?;
            if stop {
                shutdown.store(true, Ordering::SeqCst);
                wake_acceptor(addr);
                return Ok(());
            }
        }
        line.clear();
    }
}

/// Answers an overlong request line; the caller resynchronizes at the
/// next newline and keeps serving.
fn too_long(writer: &mut TcpStream) -> io::Result<()> {
    let mut msg = render_response(&Response::error(
        "too_long",
        format!("request line exceeds {MAX_LINE_BYTES} bytes"),
    ));
    msg.push('\n');
    writer.write_all(msg.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use wormnet_topology::Mesh;

    fn spawn_server() -> (
        SocketAddr,
        ShutdownHandle,
        thread::JoinHandle<io::Result<()>>,
    ) {
        let service = Arc::new(AdmissionService::new(Mesh::mesh2d(10, 10)));
        let server = Server::bind(service, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        let join = thread::spawn(move || server.run());
        (addr, handle, join)
    }

    #[test]
    fn serves_a_round_trip_and_shuts_down() {
        let (addr, _handle, join) = spawn_server();
        let mut c = Client::connect(&addr.to_string()).unwrap();
        let admitted = c.send("ADMIT 0,0 5,0 2 50 4").unwrap();
        assert!(admitted.contains("\"status\":\"admitted\""), "{admitted}");
        let query = c.send("QUERY 0").unwrap();
        assert!(query.contains("\"status\":\"ok\""), "{query}");
        let removed = c.send("REMOVE 0").unwrap();
        assert!(removed.contains("\"status\":\"removed\""), "{removed}");
        let bye = c.send("SHUTDOWN").unwrap();
        assert!(bye.contains("shutting-down"), "{bye}");
        join.join().unwrap().unwrap();
    }

    #[test]
    fn malformed_lines_do_not_kill_the_connection() {
        let (addr, handle, join) = spawn_server();
        let mut c = Client::connect(&addr.to_string()).unwrap();
        let err = c.send("FROB 1 2 3").unwrap();
        assert!(err.contains("\"status\":\"error\""), "{err}");
        // The same connection still works.
        let ok = c.send("STATS").unwrap();
        assert!(ok.contains("\"status\":\"ok\""), "{ok}");
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn overlong_line_is_rejected_and_the_connection_survives() {
        let (addr, handle, join) = spawn_server();
        let mut c = Client::connect(&addr.to_string()).unwrap();
        let long = format!("QUERY {}", "9".repeat(MAX_LINE_BYTES + 10));
        let reply = c.send(&long).unwrap();
        assert!(reply.contains("\"code\":\"too_long\""), "{reply}");
        // The reader resynchronized at the newline: the same connection
        // keeps serving normal requests.
        let ok = c.send("STATS").unwrap();
        assert!(ok.contains("\"status\":\"ok\""), "{ok}");
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn connection_cap_sheds_with_busy() {
        let service = Arc::new(AdmissionService::new(Mesh::mesh2d(10, 10)));
        let server =
            Server::bind_with_config(service, "127.0.0.1:0", ServerConfig { max_connections: 1 })
                .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        let join = thread::spawn(move || server.run());
        let mut first = Client::connect(&addr.to_string()).unwrap();
        assert!(first.send("STATS").unwrap().contains("\"status\":\"ok\""));
        // The slot is taken: the next connect gets one busy line.
        let mut second = Client::connect(&addr.to_string()).unwrap();
        let reply = second.send("STATS");
        // The server may close before our request write lands (Err).
        if let Ok(line) = reply {
            assert!(line.contains("\"status\":\"busy\""), "{line}");
        }
        drop(first);
        drop(second);
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn external_shutdown_unblocks_the_accept_loop() {
        let (_addr, handle, join) = spawn_server();
        handle.shutdown();
        join.join().unwrap().unwrap();
    }
}
