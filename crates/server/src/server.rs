//! The TCP front end: an event-driven epoll reactor with a small
//! worker pool, newline-delimited requests in, single-line JSON out.
//!
//! One reactor thread owns every socket. It accepts non-blocking,
//! splits incoming bytes into request lines, and queues each parsed
//! line on its connection's FIFO. Admission work never runs on the
//! reactor thread: a pool of workers ([`ServerConfig::workers`]) pops
//! jobs, calls into the service, and hands the rendered response back
//! through a completion queue plus a one-byte wake-up pipe.
//!
//! **Pipelining with ordered responses.** A client may write N
//! requests back to back without waiting; the per-connection FIFO plus
//! an at-most-one-batch-in-flight rule guarantee the N responses come
//! back in request order. Consecutive queued lines travel to a worker
//! as a single batch job served in order, so a pipelined burst pays
//! the two thread hand-offs once, not per request.
//! (Cross-connection parallelism is what the worker pool buys; within
//! a connection, order is part of the protocol.)
//!
//! Shutdown is cooperative and lock-free: the `SHUTDOWN` handler (or a
//! [`ShutdownHandle`]) sets a shared [`AtomicBool`]; the handle also
//! self-connects so the reactor notices immediately instead of at the
//! next 100ms poll tick. The reactor then flushes what it can, poisons
//! the job queue, and joins every worker before returning.
//!
//! Input is untrusted: the line splitter accumulates at most
//! [`MAX_LINE_BYTES`] per request (never an unbounded buffer), answers
//! an overlong line with `code:"too_long"`, discards bytes up to the
//! next newline, and **keeps the connection** — one bad request does
//! not kill a client's session. The `too_long` answer goes through the
//! same per-connection FIFO as real requests, so even error responses
//! stay in arrival order. A connection cap
//! ([`ServerConfig::max_connections`]) sheds excess connects with a
//! single `busy` line instead of accepting unbounded state.

use crate::dispatch::{Completion, CompletionQueue, ConnFifo, JobQueue, Wake};
use crate::poll::{PollEvent, Poller};
use crate::protocol::{render_response, Response, MAX_LINE_BYTES};
use crate::service::AdmissionService;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Upper bound on one epoll wait; the reactor re-checks the shutdown
/// flag at least this often even with no traffic.
const POLL_TICK: Duration = Duration::from_millis(100);

/// Epoll token of the listening socket.
const LISTENER_TOKEN: u64 = 0;
/// Epoll token of the worker wake-up pipe.
const WAKE_TOKEN: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: u64 = 2;

/// Read granularity per `read(2)` call on a ready socket.
const READ_CHUNK: usize = 64 * 1024;

/// Front-end limits.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerConfig {
    /// Maximum simultaneous connections; further connects are answered
    /// with one `busy` line and closed (0 = unlimited).
    pub max_connections: usize,
    /// Worker threads executing admission work off the reactor
    /// (0 = one per available core, capped at 8).
    pub workers: usize,
}

fn worker_count(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    thread::available_parallelism()
        .map_or(1, std::num::NonZero::get)
        .min(8)
}

/// The reactor's wake-up: one byte into a pipe whose read end lives in
/// the epoll set, so the reactor wakes even when otherwise idle.
struct PipeWake(UnixStream);

impl Wake for PipeWake {
    fn wake(&self) {
        // A full pipe means wake-ups are already pending; dropping the
        // byte is fine, the reactor drains completions every pass.
        let _ = (&self.0).write(&[1]);
    }
}

/// Per-connection reactor state: the socket, its line splitter, and the
/// dispatch FIFO ([`ConnFifo`] — the model-checked half).
struct Connection {
    stream: TcpStream,
    /// Bytes of the current (incomplete) request line.
    rbuf: Vec<u8>,
    /// Skipping the tail of an overlong line until its newline.
    discarding: bool,
    /// Requests (and ordered error responses) not yet dispatched.
    fifo: ConnFifo,
    /// Rendered responses not yet written to the socket.
    wbuf: Vec<u8>,
    /// Drained prefix of `wbuf`.
    wpos: usize,
    /// Peer sent EOF; serve what's queued, then close.
    read_closed: bool,
    /// Interest set currently armed in epoll: (readable, writable).
    armed: (bool, bool),
}

impl Connection {
    fn new(stream: TcpStream) -> Connection {
        Connection {
            stream,
            rbuf: Vec::new(),
            discarding: false,
            fifo: ConnFifo::new(),
            wbuf: Vec::new(),
            wpos: 0,
            read_closed: false,
            armed: (true, false),
        }
    }

    /// Reads everything available (level-triggered epoll: until
    /// `WouldBlock` or EOF) and splits it into queue entries.
    fn read_ready(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.read_closed = true;
                    return Ok(());
                }
                Ok(n) => self.ingest(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// The line splitter: same limits as the pre-reactor server. At
    /// most [`MAX_LINE_BYTES`] (+1 sentinel byte to detect overflow)
    /// accumulate per request; an overlong line queues a `too_long`
    /// response and discards through the next newline.
    fn ingest(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            let newline = data.iter().position(|&b| b == b'\n');
            if self.discarding {
                match newline {
                    Some(p) => {
                        self.discarding = false;
                        data = &data[p + 1..];
                        continue;
                    }
                    None => return,
                }
            }
            let end = newline.unwrap_or(data.len());
            let room = (MAX_LINE_BYTES + 1).saturating_sub(self.rbuf.len());
            self.rbuf.extend_from_slice(&data[..end.min(room)]);
            let Some(p) = newline else {
                if self.rbuf.len() > MAX_LINE_BYTES {
                    // Overflow mid-line: answer now (in FIFO order),
                    // skip to the newline.
                    self.push_too_long();
                    self.rbuf.clear();
                    self.discarding = true;
                }
                return;
            };
            if self.rbuf.len() > MAX_LINE_BYTES {
                self.push_too_long();
            } else {
                let text = String::from_utf8_lossy(&self.rbuf);
                let request = text.trim();
                if !request.is_empty() {
                    self.fifo.push_line(request.to_string());
                }
            }
            self.rbuf.clear();
            data = &data[p + 1..];
        }
    }

    fn push_too_long(&mut self) {
        let mut msg = render_response(&Response::error(
            "too_long",
            format!("request line exceeds {MAX_LINE_BYTES} bytes"),
        ));
        msg.push('\n');
        self.fifo.push_immediate(msg.into_bytes());
    }

    /// Writes as much buffered output as the socket takes.
    fn flush(&mut self) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        Ok(())
    }

    fn has_backlog(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Fully served: the peer is done sending and nothing is queued,
    /// running, or waiting to flush.
    fn done(&self) -> bool {
        self.read_closed && self.fifo.is_idle() && !self.has_backlog()
    }
}

/// A running admission server bound to a socket.
pub struct Server {
    listener: TcpListener,
    service: Arc<AdmissionService>,
    shutdown: Arc<AtomicBool>,
    config: ServerConfig,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port). The listener
    /// is live when this returns; call [`Server::run`] to serve.
    pub fn bind(service: Arc<AdmissionService>, addr: &str) -> io::Result<Server> {
        Self::bind_with_config(service, addr, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit [`ServerConfig`] limits.
    pub fn bind_with_config(
        service: Arc<AdmissionService>,
        addr: &str,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service,
            shutdown: Arc::new(AtomicBool::new(false)),
            config,
        })
    }

    /// The bound address (the real port when bound to port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops the server from another thread, exactly as a
    /// client's `SHUTDOWN` would.
    pub fn shutdown_handle(&self) -> io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
            addr: self.local_addr()?,
        })
    }

    /// Serves until a `SHUTDOWN` request (or a [`ShutdownHandle`])
    /// stops it, then joins every worker thread.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let jobs = Arc::new(JobQueue::new());
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let completions = Arc::new(CompletionQueue::new(PipeWake(wake_tx)));

        let mut workers = Vec::new();
        for _ in 0..worker_count(self.config.workers) {
            let jobs = Arc::clone(&jobs);
            let completions = Arc::clone(&completions);
            let service = Arc::clone(&self.service);
            workers.push(thread::spawn(move || {
                while let Some(job) = jobs.pop() {
                    let mut payload = String::new();
                    let mut stop = false;
                    for (line, enqueued) in &job.lines {
                        let queue_ns = enqueued.elapsed().as_nanos() as u64;
                        let (response, s) = service.dispatch_queued(line, queue_ns);
                        payload.push_str(&render_response(&response));
                        payload.push('\n');
                        stop |= s;
                    }
                    completions.push(Completion {
                        token: job.token,
                        bytes: payload.into_bytes(),
                        stop,
                    });
                }
            }));
        }

        // Under `--fsync interval` the periodic flush + fsync runs on
        // its own thread: a request thread paying the fsync would put
        // multi-ms device latency straight into the admit p99.
        let flusher = self.service.wal_flush_interval().map(|every| {
            let service = Arc::clone(&self.service);
            let shutdown = Arc::clone(&self.shutdown);
            let tick = (every / 4).max(Duration::from_millis(1));
            thread::spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    thread::sleep(tick);
                    service.sync_wal_if_due();
                }
            })
        });

        let poller = Poller::new()?;
        poller.add(self.listener.as_raw_fd(), LISTENER_TOKEN, true, false)?;
        poller.add(wake_rx.as_raw_fd(), WAKE_TOKEN, true, false)?;
        let mut reactor = Reactor {
            poller,
            listener: self.listener,
            wake_rx,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            jobs: Arc::clone(&jobs),
            completions: Arc::clone(&completions),
            shutdown: Arc::clone(&self.shutdown),
            max_connections: self.config.max_connections,
        };
        let result = reactor.event_loop();

        jobs.close();
        reactor.shutdown.store(true, Ordering::SeqCst);
        if let Some(f) = flusher {
            let _ = f.join();
        }
        for w in workers {
            let _ = w.join();
        }
        result
    }
}

/// The single-threaded event loop: all socket I/O and line splitting.
struct Reactor {
    poller: Poller,
    listener: TcpListener,
    wake_rx: UnixStream,
    conns: HashMap<u64, Connection>,
    next_token: u64,
    jobs: Arc<JobQueue>,
    completions: Arc<CompletionQueue<PipeWake>>,
    shutdown: Arc<AtomicBool>,
    max_connections: usize,
}

impl Reactor {
    fn event_loop(&mut self) -> io::Result<()> {
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                // Best-effort: push out whatever responses are already
                // rendered (the SHUTDOWN ack among them), then stop.
                for conn in self.conns.values_mut() {
                    let _ = conn.flush();
                }
                return Ok(());
            }
            self.poller.wait(&mut events, Some(POLL_TICK))?;
            for ev in &events {
                match ev.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKE_TOKEN => self.drain_wake(),
                    token => self.conn_ready(token, *ev),
                }
            }
            // Completions can land between waits (the wake byte may
            // coalesce); drain unconditionally every pass.
            self.apply_completions();
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.admit_conn(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // A single failed accept (e.g. the peer vanished
                // between SYN and accept) is not fatal to the server.
                Err(_) => return,
            }
        }
    }

    fn admit_conn(&mut self, mut stream: TcpStream) {
        if self.max_connections > 0 && self.conns.len() >= self.max_connections {
            // Shed at accept: one busy line, then close. The peer
            // learns to back off instead of hanging in a queue.
            let mut line = render_response(&Response::Busy {
                retry_after_ms: 100,
            });
            line.push('\n');
            let _ = stream.write_all(line.as_bytes());
            return;
        }
        // Responses are single small writes; without TCP_NODELAY they
        // sit in Nagle's buffer waiting for the peer's delayed ACK
        // (~40ms per round trip on loopback).
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .add(stream.as_raw_fd(), token, true, false)
            .is_err()
        {
            return;
        }
        self.conns.insert(token, Connection::new(stream));
    }

    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(_) => return,
            }
        }
    }

    fn conn_ready(&mut self, token: u64, ev: PollEvent) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if (ev.readable || ev.hangup) && conn.read_ready().is_err() {
            self.close_conn(token);
            return;
        }
        self.service_conn(token);
    }

    /// Runs a connection's FIFO forward, flushes, and re-arms epoll
    /// interest to match (write interest only while output is
    /// backlogged, read interest only until the peer's EOF).
    fn service_conn(&mut self, token: u64) {
        let jobs = Arc::clone(&self.jobs);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        // The fifo and the write buffer are separate fields, so the
        // FIFO pump can land head-of-line immediates directly.
        let Connection { fifo, wbuf, .. } = conn;
        fifo.pump(token, &jobs, wbuf);
        if conn.flush().is_err() || conn.done() {
            self.close_conn(token);
            return;
        }
        let want = (!conn.read_closed, conn.has_backlog());
        if want != conn.armed {
            conn.armed = want;
            let fd = conn.stream.as_raw_fd();
            let _ = self.poller.modify(fd, token, want.0, want.1);
        }
    }

    fn apply_completions(&mut self) {
        for c in self.completions.drain() {
            if c.stop {
                self.shutdown.store(true, Ordering::SeqCst);
            }
            if let Some(conn) = self.conns.get_mut(&c.token) {
                conn.fifo.complete(&c.bytes, &mut conn.wbuf);
                self.service_conn(c.token);
            }
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.poller.delete(conn.stream.as_raw_fd());
        }
    }
}

/// Stops a [`Server`] from outside the protocol.
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Sets the shutdown flag and wakes the reactor (a self-connect
    /// surfaces as an accept event) so it notices without waiting for
    /// the next poll tick.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use wormnet_topology::Mesh;

    fn spawn_server() -> (
        SocketAddr,
        ShutdownHandle,
        thread::JoinHandle<io::Result<()>>,
    ) {
        let service = Arc::new(AdmissionService::new(Mesh::mesh2d(10, 10)));
        let server = Server::bind(service, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        let join = thread::spawn(move || server.run());
        (addr, handle, join)
    }

    #[test]
    fn serves_a_round_trip_and_shuts_down() {
        let (addr, _handle, join) = spawn_server();
        let mut c = Client::connect(&addr.to_string()).unwrap();
        let admitted = c.send("ADMIT 0,0 5,0 2 50 4").unwrap();
        assert!(admitted.contains("\"status\":\"admitted\""), "{admitted}");
        let query = c.send("QUERY 0").unwrap();
        assert!(query.contains("\"status\":\"ok\""), "{query}");
        let removed = c.send("REMOVE 0").unwrap();
        assert!(removed.contains("\"status\":\"removed\""), "{removed}");
        let bye = c.send("SHUTDOWN").unwrap();
        assert!(bye.contains("shutting-down"), "{bye}");
        join.join().unwrap().unwrap();
    }

    #[test]
    fn malformed_lines_do_not_kill_the_connection() {
        let (addr, handle, join) = spawn_server();
        let mut c = Client::connect(&addr.to_string()).unwrap();
        let err = c.send("FROB 1 2 3").unwrap();
        assert!(err.contains("\"status\":\"error\""), "{err}");
        // The same connection still works.
        let ok = c.send("STATS").unwrap();
        assert!(ok.contains("\"status\":\"ok\""), "{ok}");
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn overlong_line_is_rejected_and_the_connection_survives() {
        let (addr, handle, join) = spawn_server();
        let mut c = Client::connect(&addr.to_string()).unwrap();
        let long = format!("QUERY {}", "9".repeat(MAX_LINE_BYTES + 10));
        let reply = c.send(&long).unwrap();
        assert!(reply.contains("\"code\":\"too_long\""), "{reply}");
        // The reader resynchronized at the newline: the same connection
        // keeps serving normal requests.
        let ok = c.send("STATS").unwrap();
        assert!(ok.contains("\"status\":\"ok\""), "{ok}");
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn connection_cap_sheds_with_busy() {
        let service = Arc::new(AdmissionService::new(Mesh::mesh2d(10, 10)));
        let server = Server::bind_with_config(
            service,
            "127.0.0.1:0",
            ServerConfig {
                max_connections: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        let join = thread::spawn(move || server.run());
        let mut first = Client::connect(&addr.to_string()).unwrap();
        assert!(first.send("STATS").unwrap().contains("\"status\":\"ok\""));
        // The slot is taken: the next connect gets one busy line.
        let mut second = Client::connect(&addr.to_string()).unwrap();
        let reply = second.send("STATS");
        // The server may close before our request write lands (Err).
        if let Ok(line) = reply {
            assert!(line.contains("\"status\":\"busy\""), "{line}");
        }
        drop(first);
        drop(second);
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn external_shutdown_unblocks_the_accept_loop() {
        let (_addr, handle, join) = spawn_server();
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn pipelined_requests_come_back_in_order() {
        let (addr, handle, join) = spawn_server();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Three requests in one TCP segment, no read in between.
        stream
            .write_all(b"STATS\nADMIT 0,0 3,3 2 50 4\nQUERY 0\n")
            .unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut lines = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
            lines.push(line);
        }
        assert!(lines[0].contains("\"stats\""), "{lines:?}");
        assert!(lines[1].contains("\"status\":\"admitted\""), "{lines:?}");
        assert!(
            lines[2].contains("\"status\":\"ok\"") && lines[2].contains("\"id\":0"),
            "{lines:?}"
        );
        drop(reader);
        handle.shutdown();
        join.join().unwrap().unwrap();
    }
}
