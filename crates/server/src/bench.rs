//! The closed-loop load generator behind `rtwc bench-serve`.
//!
//! Spins up a real server on an ephemeral loopback port, drives it with
//! N concurrent client connections (each a closed loop: next request
//! only after the previous response), and reports client-side observed
//! latency with **exact** percentiles — unlike the server's own `STATS`
//! histogram, which buckets to powers of two. The final server `STATS`
//! line is embedded in the report so both views land in one artifact,
//! and the admitted set is audited against a fresh offline analysis
//! before shutdown.

use crate::client::Client;
use crate::group_commit::{GroupCommitStats, GroupWal};
use crate::netchaos::{NetAction, NetChaos};
use crate::protocol::{Request, Response};
use crate::recovery::recover;
use crate::repl::follower::{Follower, FollowerConfig};
use crate::repl::ship::{Shipper, ShipperConfig};
use crate::repl::ReplHub;
use crate::server::{Server, ServerConfig};
use crate::service::{AdmissionService, Durability};
use crate::wal::FsyncPolicy;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use wormnet_topology::Mesh;

/// Load-generator parameters.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client issues (closed loop); ignored when
    /// [`BenchConfig::duration`] is set.
    pub ops_per_client: usize,
    /// Time-bounded mode: run for this long after
    /// [`BenchConfig::warmup`], counting only steady-state requests.
    pub duration: Option<Duration>,
    /// Ramp-up excluded from the measurement (duration mode only).
    pub warmup: Duration,
    /// Requests each client keeps in flight per burst (1 = classic
    /// closed loop; >1 pipelines over one connection).
    pub pipeline: usize,
    /// Server worker threads (0 = one per core); >1 also enables the
    /// service's optimistic concurrent-admission path.
    pub server_workers: usize,
    /// Mesh width.
    pub width: u32,
    /// Mesh height.
    pub height: u32,
    /// Maximum Manhattan offset per axis between a generated stream's
    /// endpoints (0 = uniform destinations). Local traffic is the
    /// realistic `NoC` pattern and keeps link-sharing components — and
    /// therefore per-`ADMIT` analysis cost — bounded as the mesh fills.
    pub locality: u32,
    /// Handles each client holds at most; once full, an admit roll
    /// becomes a removal (0 = unbounded growth). Bounding ownership
    /// turns the workload into steady-state churn instead of an
    /// ever-growing admitted set.
    pub max_own: usize,
    /// Deterministic workload seed.
    pub seed: u64,
    /// Put the server behind a durable WAL in this directory
    /// (`None` = in-memory baseline).
    pub wal_dir: Option<PathBuf>,
    /// Fsync policy when `wal_dir` is set.
    pub fsync: FsyncPolicy,
    /// Snapshot cadence when `wal_dir` is set (0 = never compact).
    pub snapshot_every: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            clients: 8,
            ops_per_client: 250,
            duration: None,
            warmup: Duration::from_millis(500),
            pipeline: 1,
            server_workers: 0,
            width: 10,
            height: 10,
            locality: 0,
            max_own: 0,
            seed: 0x5eed_cafe,
            wal_dir: None,
            fsync: FsyncPolicy::Interval(Duration::from_millis(5)),
            snapshot_every: 512,
        }
    }
}

/// Exact client-side percentiles for one request kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindLatency {
    /// Requests of this kind.
    pub count: u64,
    /// Median, microseconds.
    pub p50_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
}

/// The result of one load-generator run.
#[derive(Clone, Debug)]
pub struct BenchOutcome {
    /// Concurrent clients.
    pub clients: usize,
    /// Requests per client.
    pub ops_per_client: usize,
    /// Pipeline window used by each client.
    pub pipeline: usize,
    /// Mesh width the run used.
    pub width: u32,
    /// Mesh height the run used.
    pub height: u32,
    /// Locality radius of the workload (0 = uniform).
    pub locality: u32,
    /// Ownership cap of the workload (0 = unbounded).
    pub max_own: usize,
    /// Total requests served (steady state only in duration mode).
    pub total_ops: u64,
    /// Wall-clock seconds for the load phase.
    pub elapsed_s: f64,
    /// Requests per second (total / elapsed).
    pub throughput: f64,
    /// `admitted` responses observed.
    pub admitted: u64,
    /// `rejected` responses observed.
    pub rejected: u64,
    /// `removed` responses observed.
    pub removed: u64,
    /// `error` responses observed.
    pub errors: u64,
    /// Exact overall latency percentiles, microseconds.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Maximum.
    pub max_us: u64,
    /// `ADMIT` latency.
    pub admit: KindLatency,
    /// `QUERY` latency.
    pub query: KindLatency,
    /// Streams left admitted at the end, all audited against a fresh
    /// offline `determine_feasibility`.
    pub audited_streams: usize,
    /// Group-commit batching stats (durable runs only).
    pub group_commit: Option<GroupCommitStats>,
    /// The server's own final `STATS` response (verbatim JSON line).
    pub server_stats: String,
}

/// `splitmix64` — the workspace's stock deterministic generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn extract_u64(json: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn status_of(json: &str) -> &str {
    for s in [
        "admitted",
        "rejected",
        "removed",
        "shutting-down",
        "busy",
        "error",
        "ok",
    ] {
        if json.contains(&format!("\"status\":\"{s}\"")) {
            return s;
        }
    }
    "unknown"
}

/// Exact percentile over sorted nanosecond samples: the smallest sample
/// with at least `pct` percent of the distribution at or below it.
fn percentile_us(sorted_ns: &[u64], pct: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    // Rank math in f64: sample counts stay far below 2^52 and the
    // ceil of a non-negative product cannot go negative.
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    let rank = ((pct / 100.0) * sorted_ns.len() as f64).ceil() as usize;
    sorted_ns[rank.clamp(1, sorted_ns.len()) - 1] / 1_000
}

struct WorkerLog {
    /// `(kind, nanoseconds)` per request; kind indexes [`KIND_ADMIT`]…
    samples: Vec<(u8, u64)>,
    admitted: u64,
    rejected: u64,
    removed: u64,
    errors: u64,
}

const KIND_ADMIT: u8 = 0;
const KIND_QUERY: u8 = 1;

/// Run-phase coordination between the driver and the client loops.
struct Pacing {
    /// Set when time-bounded clients must stop issuing bursts.
    stop: AtomicBool,
    /// Samples count only while set (false during warmup/drain).
    recording: AtomicBool,
}

/// One request from the workload mix. A `REMOVE` claims its handle out
/// of `own` at generation time so a pipelined burst never removes the
/// same stream twice.
fn gen_op(rng: &mut u64, own: &mut Vec<u64>, cfg: &BenchConfig) -> (u8, String) {
    let roll = splitmix64(rng) % 100;
    // Op mix: mostly reads over own streams, a steady admit stream,
    // occasional removals and stat probes. Reads fall through to
    // admits until this client owns something to read.
    if roll < 55 && !own.is_empty() {
        let h = own[(splitmix64(rng) % own.len() as u64) as usize];
        (KIND_QUERY, format!("QUERY {h}"))
    } else if roll < 90 || own.is_empty() {
        if cfg.max_own > 0 && own.len() >= cfg.max_own {
            // At the ownership cap the admit roll becomes a removal:
            // the client churns its slots instead of growing the set.
            let i = (splitmix64(rng) % own.len() as u64) as usize;
            let h = own.swap_remove(i);
            return (2, format!("REMOVE {h}"));
        }
        let sx = splitmix64(rng) % u64::from(cfg.width);
        let sy = splitmix64(rng) % u64::from(cfg.height);
        let (mut dx, dy) = if cfg.locality > 0 {
            let r = u64::from(cfg.locality);
            let (lo_x, hi_x) = (sx.saturating_sub(r), (sx + r).min(u64::from(cfg.width) - 1));
            let (lo_y, hi_y) = (
                sy.saturating_sub(r),
                (sy + r).min(u64::from(cfg.height) - 1),
            );
            (
                lo_x + splitmix64(rng) % (hi_x - lo_x + 1),
                lo_y + splitmix64(rng) % (hi_y - lo_y + 1),
            )
        } else {
            (
                splitmix64(rng) % u64::from(cfg.width),
                splitmix64(rng) % u64::from(cfg.height),
            )
        };
        if (dx, dy) == (sx, sy) {
            // Nudge within the mesh (and within the locality box).
            dx = if dx + 1 < u64::from(cfg.width) {
                dx + 1
            } else {
                dx - 1
            };
        }
        let pr = 1 + splitmix64(rng) % 5;
        let period = 40 + splitmix64(rng) % 500;
        let length = 2 + splitmix64(rng) % 8;
        (
            KIND_ADMIT,
            format!("ADMIT {sx},{sy} {dx},{dy} {pr} {period} {length}"),
        )
    } else if roll < 96 {
        let i = (splitmix64(rng) % own.len() as u64) as usize;
        let h = own.swap_remove(i);
        (2, format!("REMOVE {h}"))
    } else if roll < 98 {
        (3, "STATS".to_string())
    } else {
        (3, "SNAPSHOT".to_string())
    }
}

fn worker(
    addr: String,
    cfg: BenchConfig,
    client_idx: u64,
    pacing: Arc<Pacing>,
) -> io::Result<WorkerLog> {
    let mut c = Client::connect(&addr)?;
    let mut rng = cfg.seed ^ client_idx.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut own: Vec<u64> = Vec::new();
    let mut log = WorkerLog {
        samples: Vec::with_capacity(cfg.ops_per_client),
        admitted: 0,
        rejected: 0,
        removed: 0,
        errors: 0,
    };
    let window = cfg.pipeline.max(1);
    let mut issued = 0usize;
    let mut kinds = Vec::with_capacity(window);
    let mut lines = Vec::with_capacity(window);
    loop {
        let burst = if cfg.duration.is_some() {
            if pacing.stop.load(Ordering::Relaxed) {
                break;
            }
            window
        } else {
            if issued >= cfg.ops_per_client {
                break;
            }
            window.min(cfg.ops_per_client - issued)
        };
        kinds.clear();
        lines.clear();
        for _ in 0..burst {
            let (kind, line) = gen_op(&mut rng, &mut own, &cfg);
            kinds.push(kind);
            lines.push(line);
        }
        let start = Instant::now();
        let replies = c.send_pipelined(&lines)?;
        // Each request in the burst experienced (up to) the burst's
        // round trip: charge the full burst latency to every op, the
        // conservative client-side view.
        let elapsed = start.elapsed().as_nanos() as u64;
        issued += burst;
        let record = pacing.recording.load(Ordering::Relaxed);
        for (kind, reply) in kinds.iter().zip(&replies) {
            if record {
                log.samples.push((*kind, elapsed));
            }
            match status_of(reply) {
                "admitted" => {
                    if let Some(id) = extract_u64(reply, "id") {
                        own.push(id);
                    }
                    if record {
                        log.admitted += 1;
                    }
                }
                "rejected" if record => log.rejected += 1,
                "removed" if record => log.removed += 1,
                "error" if record => log.errors += 1,
                _ => {}
            }
        }
    }
    Ok(log)
}

/// Builds the bench service: in-memory, or durable when
/// [`BenchConfig::wal_dir`] is set.
fn bench_service(cfg: &BenchConfig) -> io::Result<AdmissionService> {
    let mesh = Mesh::mesh2d(cfg.width, cfg.height);
    let mut service = match &cfg.wal_dir {
        None => AdmissionService::new(mesh),
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            let (state, wal, _) = recover(&mesh, dir, cfg.fsync)?;
            AdmissionService::with_durability(
                mesh,
                state,
                Durability {
                    dir: dir.clone(),
                    wal: GroupWal::new(wal),
                    snapshot_every: cfg.snapshot_every,
                },
            )
        }
    };
    if cfg.server_workers > 1 {
        // Multiple admission workers: let disjoint-neighborhood admits
        // validate concurrently instead of serializing on the write
        // lock.
        service.set_optimistic(true);
    }
    Ok(service)
}

/// Drives the configured client loops against a running server at
/// `addr` and returns their logs plus the measured window.
fn drive_clients(addr: &str, cfg: &BenchConfig) -> io::Result<(Vec<WorkerLog>, Duration)> {
    let pacing = Arc::new(Pacing {
        stop: AtomicBool::new(false),
        // Fixed-count mode records from the first request; duration
        // mode flips this on after warmup.
        recording: AtomicBool::new(cfg.duration.is_none()),
    });
    let mut started = Instant::now();
    let workers: Vec<_> = (0..cfg.clients)
        .map(|i| {
            let addr = addr.to_string();
            let cfg = cfg.clone();
            let pacing = Arc::clone(&pacing);
            thread::spawn(move || worker(addr, cfg, i as u64, pacing))
        })
        .collect();
    let mut measured: Option<Duration> = None;
    if let Some(run_for) = cfg.duration {
        thread::sleep(cfg.warmup);
        pacing.recording.store(true, Ordering::Relaxed);
        started = Instant::now();
        thread::sleep(run_for);
        // Order matters: stop recording before stopping the loops so a
        // burst completing after the window is not counted against a
        // window-sized denominator.
        pacing.recording.store(false, Ordering::Relaxed);
        measured = Some(started.elapsed());
        pacing.stop.store(true, Ordering::Relaxed);
    }
    let mut logs = Vec::with_capacity(cfg.clients);
    for w in workers {
        logs.push(w.join().expect("bench worker panicked")?);
    }
    let elapsed = measured.unwrap_or_else(|| started.elapsed());
    Ok((logs, elapsed))
}

/// Runs the closed-loop bench: server up, `clients` concurrent loops
/// (optionally pipelined and/or time-bounded), final `STATS` + audit,
/// shutdown.
pub fn run_bench(cfg: &BenchConfig) -> io::Result<BenchOutcome> {
    let service = Arc::new(bench_service(cfg)?);
    let server = Server::bind_with_config(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 0,
            workers: cfg.server_workers,
        },
    )?;
    let addr = server.local_addr()?.to_string();
    let server_thread = thread::spawn(move || server.run());
    let (logs, elapsed) = drive_clients(&addr, cfg)?;

    let mut control = Client::connect(&addr)?;
    let server_stats = control.send("STATS")?;
    let group_commit = service.group_commit_stats();
    let audited_streams = service
        .audit()
        .map_err(|e| io::Error::other(format!("post-bench audit failed: {e}")))?;
    control.send("SHUTDOWN")?;
    server_thread.join().expect("server thread panicked")?;
    Ok(summarize(
        cfg,
        &logs,
        elapsed,
        audited_streams,
        group_commit,
        server_stats,
    ))
}

/// Folds the worker logs into a [`BenchOutcome`].
fn summarize(
    cfg: &BenchConfig,
    logs: &[WorkerLog],
    elapsed: Duration,
    audited_streams: usize,
    group_commit: Option<GroupCommitStats>,
    server_stats: String,
) -> BenchOutcome {
    let mut all: Vec<u64> = Vec::new();
    let mut admit_ns: Vec<u64> = Vec::new();
    let mut query_ns: Vec<u64> = Vec::new();
    let (mut admitted, mut rejected, mut removed, mut errors) = (0, 0, 0, 0);
    for log in logs {
        for &(kind, ns) in &log.samples {
            all.push(ns);
            match kind {
                KIND_ADMIT => admit_ns.push(ns),
                KIND_QUERY => query_ns.push(ns),
                _ => {}
            }
        }
        admitted += log.admitted;
        rejected += log.rejected;
        removed += log.removed;
        errors += log.errors;
    }
    all.sort_unstable();
    admit_ns.sort_unstable();
    query_ns.sort_unstable();
    let kind_latency = |ns: &[u64]| KindLatency {
        count: ns.len() as u64,
        p50_us: percentile_us(ns, 50.0),
        p99_us: percentile_us(ns, 99.0),
    };
    let total_ops = all.len() as u64;
    let elapsed_s = elapsed.as_secs_f64();
    BenchOutcome {
        clients: cfg.clients,
        ops_per_client: cfg.ops_per_client,
        pipeline: cfg.pipeline.max(1),
        width: cfg.width,
        height: cfg.height,
        locality: cfg.locality,
        max_own: cfg.max_own,
        total_ops,
        elapsed_s,
        throughput: total_ops as f64 / elapsed_s.max(1e-9),
        admitted,
        rejected,
        removed,
        errors,
        p50_us: percentile_us(&all, 50.0),
        p90_us: percentile_us(&all, 90.0),
        p99_us: percentile_us(&all, 99.0),
        max_us: all.last().copied().unwrap_or(0) / 1_000,
        admit: kind_latency(&admit_ns),
        query: kind_latency(&query_ns),
        audited_streams,
        group_commit,
        server_stats,
    }
}

/// Renders the outcome as the `results/BENCH_service.json` artifact.
pub fn render_bench_json(o: &BenchOutcome) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"service\",\n");
    out.push_str(&format!("  \"clients\": {},\n", o.clients));
    out.push_str(&format!("  \"ops_per_client\": {},\n", o.ops_per_client));
    out.push_str(&format!("  \"pipeline\": {},\n", o.pipeline));
    out.push_str(&format!(
        "  \"workload\": {{\"mesh\": \"{}x{}\", \"locality\": {}, \"max_own\": {}}},\n",
        o.width, o.height, o.locality, o.max_own
    ));
    out.push_str(&format!("  \"total_ops\": {},\n", o.total_ops));
    out.push_str(&format!("  \"elapsed_s\": {:.3},\n", o.elapsed_s));
    out.push_str(&format!(
        "  \"throughput_ops_per_s\": {:.1},\n",
        o.throughput
    ));
    out.push_str(&format!(
        "  \"responses\": {{\"admitted\": {}, \"rejected\": {}, \"removed\": {}, \"errors\": {}}},\n",
        o.admitted, o.rejected, o.removed, o.errors
    ));
    out.push_str(&format!(
        "  \"latency_us\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}},\n",
        o.p50_us, o.p90_us, o.p99_us, o.max_us
    ));
    out.push_str(&format!(
        "  \"admit_latency_us\": {{\"count\": {}, \"p50\": {}, \"p99\": {}}},\n",
        o.admit.count, o.admit.p50_us, o.admit.p99_us
    ));
    out.push_str(&format!(
        "  \"query_latency_us\": {{\"count\": {}, \"p50\": {}, \"p99\": {}}},\n",
        o.query.count, o.query.p50_us, o.query.p99_us
    ));
    out.push_str(&format!("  \"audited_streams\": {},\n", o.audited_streams));
    if let Some(gc) = &o.group_commit {
        let hist: Vec<String> = gc
            .batch_hist
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        out.push_str(&format!(
            "  \"group_commit\": {{\"syncs\": {}, \"ops_synced\": {}, \"mean_batch\": {:.2}, \"max_batch\": {}, \"batch_size_hist_log2\": [{}]}},\n",
            gc.syncs,
            gc.ops_synced,
            gc.mean_batch(),
            gc.max_batch,
            hist.join(", ")
        ));
    }
    out.push_str(&format!("  \"server_stats\": {}\n", o.server_stats));
    out.push_str("}\n");
    out
}

/// The baseline run plus one durable run per fsync policy.
#[derive(Clone, Debug)]
pub struct WalSweep {
    /// The in-memory (no WAL) run — the reference throughput.
    pub baseline: BenchOutcome,
    /// `(policy label, outcome)` for each durable configuration.
    pub policies: Vec<(String, BenchOutcome)>,
}

/// Runs the baseline bench and then the same workload against a durable
/// service under each fsync policy, each in a fresh WAL directory under
/// `dir`.
pub fn run_wal_sweep(cfg: &BenchConfig, dir: &Path) -> io::Result<WalSweep> {
    let mut base_cfg = cfg.clone();
    base_cfg.wal_dir = None;
    let baseline = run_bench(&base_cfg)?;
    let mut policies = Vec::new();
    for (label, policy) in [
        ("never", FsyncPolicy::Never),
        (
            "interval_5ms",
            FsyncPolicy::Interval(Duration::from_millis(5)),
        ),
        ("always", FsyncPolicy::Always),
    ] {
        let sub = dir.join(format!("wal-{label}"));
        let _ = std::fs::remove_dir_all(&sub);
        std::fs::create_dir_all(&sub)?;
        let mut durable_cfg = cfg.clone();
        durable_cfg.wal_dir = Some(sub.clone());
        durable_cfg.fsync = policy;
        let outcome = run_bench(&durable_cfg)?;
        let _ = std::fs::remove_dir_all(&sub);
        policies.push((label.to_string(), outcome));
    }
    Ok(WalSweep { baseline, policies })
}

/// Renders the sweep as the `results/BENCH_service.json` artifact: the
/// baseline's fields stay at the top level (stable keys for CI), the
/// per-policy durability costs land under `"wal_sweep"`.
pub fn render_sweep_json(s: &WalSweep) -> String {
    let base = render_bench_json(&s.baseline);
    let mut out = base
        .trim_end()
        .strip_suffix('}')
        .expect("bench json ends with a brace")
        .trim_end()
        .to_string();
    out.push_str(",\n  \"wal_sweep\": {\n");
    for (i, (label, o)) in s.policies.iter().enumerate() {
        let mean_batch = o.group_commit.map_or(0.0, |gc| gc.mean_batch());
        out.push_str(&format!(
            "    \"{label}\": {{\"throughput_ops_per_s\": {:.1}, \"admit_p50_us\": {}, \"admit_p99_us\": {}, \"admitted\": {}, \"mean_batch\": {:.2}}}{}\n",
            o.throughput,
            o.admit.p50_us,
            o.admit.p99_us,
            o.admitted,
            mean_batch,
            if i + 1 < s.policies.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// The result of one replication bench: the leader's load phase with a
/// live follower attached, the replication lag observed while shipping,
/// and a timed failover after the leader is torn down.
#[derive(Clone, Debug)]
pub struct ReplBenchOutcome {
    /// The leader-side load phase (one follower streaming throughout).
    pub leader: BenchOutcome,
    /// Throughput of the control phase: the same durable workload with
    /// no follower attached, run first on the same machine.
    pub baseline_throughput: f64,
    /// Leader throughput loss versus the control phase, in percent
    /// (negative when the replicated run was faster, i.e. noise).
    pub overhead_pct: f64,
    /// Largest `ship frontier - follower applied` seen during the load.
    pub max_lag_frames: u64,
    /// Remaining lag when the drain finished (0 = fully caught up).
    pub final_lag_frames: u64,
    /// Post-load drain: how long the follower took to reach the
    /// leader's final frontier.
    pub drain_ms: f64,
    /// The follower's applied sequence after the drain.
    pub follower_applied_seq: u64,
    /// Promotion grace the follower ran with.
    pub promote_grace: Duration,
    /// Leader teardown to the first served write on the promoted
    /// follower (includes the grace the follower waits before
    /// self-promoting).
    pub failover_ms: f64,
    /// Epoch the follower promoted into.
    pub promoted_epoch: u64,
    /// Streams audited on the promoted follower after the verification
    /// write.
    pub promoted_streams: usize,
    /// Status of the verification write (`admitted` or `rejected` —
    /// either proves the write path reopened).
    pub write_after_failover: String,
    /// The partition-failover phase: a fresh leader/standby pair split
    /// by a network partition and timed through seal, promotion, first
    /// served write, and the post-heal fence.
    pub partition: PartitionBenchOutcome,
}

/// Timings from the partition-failover phase of the replication bench:
/// a leader/standby pair joined through a [`NetChaos`] proxy is
/// symmetrically partitioned, and the split-brain-safety milestones are
/// measured from partition onset — the leader's lease lapsing into a
/// seal, the standby's grace lapsing into a promotion, the first write
/// the new leader serves, and (after the heal) the fence that
/// permanently demotes the deposed leader.
#[derive(Clone, Debug)]
pub struct PartitionBenchOutcome {
    /// Leader write lease the phase ran with (a third of the promotion
    /// grace, so the seal strictly precedes the promotion).
    pub lease: Duration,
    /// Partition onset to the old leader sealing (shedding writes).
    pub seal_ms: f64,
    /// Partition onset to the standby promoting itself. Strictly after
    /// [`PartitionBenchOutcome::seal_ms`] — the zero-dual-ack window.
    pub promote_ms: f64,
    /// Partition onset to the first write served by the new leader.
    pub first_write_ms: f64,
    /// Heal to the deposed leader acknowledging the fence.
    pub fence_ms: f64,
    /// Writes the old leader acknowledged inside the partition (before
    /// its lease lapsed) that never replicated.
    pub divergent_admits: u64,
    /// Divergent suffix length the deposed leader audited at fence
    /// time; must equal [`PartitionBenchOutcome::divergent_admits`].
    pub divergence_ops: u64,
}

/// Polls `cond` every 2 ms until it holds or `timeout` passes.
fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while !cond() {
        if Instant::now() >= deadline {
            return false;
        }
        thread::sleep(Duration::from_millis(2));
    }
    true
}

/// One fixed feasible admit on `row`, issued directly to the service
/// (the partition rig has no text servers).
fn mini_admit(service: &AdmissionService, req_id: u64, row: u32) -> Response {
    service.handle(&Request::Admit {
        req_id,
        src: (0, row),
        dst: (5, row),
        priority: 1,
        period: 500,
        length: 2,
        deadline: None,
    })
}

/// Runs the partition-failover phase: builds a fresh durable
/// leader/standby pair whose replication link crosses a [`NetChaos`]
/// proxy, partitions it, and times the safety milestones. The lease is
/// a third of `grace` so the deposed leader always seals before the
/// standby promotes.
fn run_partition_phase(dir: &Path, grace: Duration) -> io::Result<PartitionBenchOutcome> {
    let lease = Duration::from_millis((grace.as_millis() as u64 / 3).max(40));
    let old_dir = dir.join("part-old");
    let new_dir = dir.join("part-new");
    for d in [&old_dir, &new_dir] {
        let _ = std::fs::remove_dir_all(d);
        std::fs::create_dir_all(d)?;
    }

    let durable = |d: &Path| -> io::Result<AdmissionService> {
        let mesh = Mesh::mesh2d(8, 8);
        let (state, wal, _) = recover(&mesh, d, FsyncPolicy::Always)?;
        Ok(AdmissionService::with_durability(
            mesh,
            state,
            Durability {
                dir: d.to_path_buf(),
                wal: GroupWal::new(wal),
                snapshot_every: 0,
            },
        ))
    };

    let old = Arc::new(durable(&old_dir)?);
    let old_hub = Arc::new(ReplHub::leader());
    old_hub.set_lease(lease);
    old.attach_repl(Arc::clone(&old_hub));
    let mut ship_cfg = ShipperConfig::new(old_dir);
    // Tight heartbeats keep ack round-trips — and so the lease — fresh
    // on an idle link.
    ship_cfg.heartbeat = Duration::from_millis(10);
    let shipper = Shipper::spawn(
        std::net::TcpListener::bind("127.0.0.1:0")?,
        Arc::clone(&old),
        ship_cfg,
    )?;
    let proxy = NetChaos::spawn(
        std::net::TcpListener::bind("127.0.0.1:0")?,
        &shipper.addr().to_string(),
        0xbe7c_f007,
    )?;
    let proxy_addr = proxy.addr().to_string();

    let new = Arc::new(durable(&new_dir)?);
    let new_hub = Arc::new(ReplHub::follower(&proxy_addr));
    new.attach_repl(Arc::clone(&new_hub));
    let mut fcfg = FollowerConfig::new(&proxy_addr);
    fcfg.promote_grace = Some(grace);
    let follower_loop = Follower::spawn(Arc::clone(&new), fcfg)?;

    // Preload a few streams and wait until the standby applied them
    // AND the leader heard the ack back (the lease is armed).
    let preload: u64 = 6;
    for i in 0..preload {
        let reply = mini_admit(&old, 700_000 + i, u32::try_from(i).unwrap_or(0));
        if !matches!(reply, Response::Admitted { .. }) {
            return Err(io::Error::other(format!(
                "partition-phase preload admit refused: {reply:?}"
            )));
        }
    }
    let sync_ok = wait_until(Duration::from_secs(10), || new_hub.applied_seq() >= preload)
        && wait_until(Duration::from_secs(10), || {
            old_hub
                .report(0, 0)
                .followers
                .iter()
                .any(|f| f.acked_seq >= preload)
        });
    if !sync_ok {
        return Err(io::Error::other("partition-phase standby never synced"));
    }

    proxy.handle().apply(NetAction::Partition);
    let t0 = Instant::now();

    // One write inside the lease window: acknowledged locally, never
    // replicated — the divergent suffix the fence will audit.
    let divergent_admits = u64::from(matches!(
        mini_admit(&old, 700_100, 6),
        Response::Admitted { .. }
    ));

    if !wait_until(Duration::from_secs(10), || old_hub.write_sealed()) {
        return Err(io::Error::other("partitioned leader never sealed"));
    }
    let seal_ms = t0.elapsed().as_secs_f64() * 1e3;
    if !wait_until(Duration::from_secs(10), || !new_hub.is_follower()) {
        return Err(io::Error::other("partitioned standby never promoted"));
    }
    let promote_ms = t0.elapsed().as_secs_f64() * 1e3;
    let served = wait_until(Duration::from_secs(10), || {
        matches!(mini_admit(&new, 700_200, 7), Response::Admitted { .. })
    });
    if !served {
        return Err(io::Error::other("promoted standby never served a write"));
    }
    let first_write_ms = t0.elapsed().as_secs_f64() * 1e3;

    let heal_t0 = Instant::now();
    proxy.handle().apply(NetAction::Heal);
    if !wait_until(Duration::from_secs(10), || old_hub.is_fenced()) {
        return Err(io::Error::other("deposed leader never fenced after heal"));
    }
    let fence_ms = heal_t0.elapsed().as_secs_f64() * 1e3;
    let divergence_ops = old_hub.divergence_ops();

    follower_loop.stop();
    shipper.stop();
    proxy.stop();
    Ok(PartitionBenchOutcome {
        lease,
        seal_ms,
        promote_ms,
        first_write_ms,
        fence_ms,
        divergent_admits,
        divergence_ops,
    })
}

/// Runs the replication bench: first a control phase (the same durable
/// workload with no follower, for a same-machine overhead comparison),
/// then a durable leader under the configured load with one
/// warm-standby follower streaming the WAL, then a clean drain, then
/// leader teardown and a timed auto-promotion.
///
/// `cfg.wal_dir` is ignored — the control, leader, and follower each
/// get a fresh directory under `dir`. The follower promotes itself
/// once `grace` has passed since its last leader contact, so the
/// measured failover time sits near `grace` (slightly under when the
/// link was already quiet at teardown, over by the promotion and write
/// round-trips).
pub fn run_bench_repl(
    cfg: &BenchConfig,
    dir: &Path,
    grace: Duration,
) -> io::Result<ReplBenchOutcome> {
    let baseline_dir = dir.join("baseline");
    let leader_dir = dir.join("leader");
    let follower_dir = dir.join("follower");
    for d in [&baseline_dir, &leader_dir, &follower_dir] {
        let _ = std::fs::remove_dir_all(d);
        std::fs::create_dir_all(d)?;
    }

    // The replication phases keep the WAL whole: a saturating leader
    // on few cores can outrun the follower's apply rate, and a
    // compaction past the follower's applied sequence would force the
    // restart-to-catch-up contract mid-bench (the follower wedges at
    // its last applied frame instead of draining). Snapshot churn is
    // benched by the service bench; here the WAL tail must stay
    // shippable end to end. The control runs with the same policy so
    // the overhead comparison stays apples to apples.
    let mut cfg = cfg.clone();
    cfg.snapshot_every = 0;

    // Control phase: the committed BENCH_service.json numbers were
    // measured on other hardware, so the overhead comparison only
    // means something against a no-follower run from the same minute.
    let baseline_throughput = {
        let mut base_cfg = cfg.clone();
        base_cfg.wal_dir = Some(baseline_dir);
        run_bench(&base_cfg)?.throughput
    };

    let mut leader_cfg = cfg.clone();
    leader_cfg.wal_dir = Some(leader_dir.clone());
    let leader = Arc::new(bench_service(&leader_cfg)?);
    leader.attach_repl(Arc::new(ReplHub::leader()));
    let shipper = Shipper::spawn(
        std::net::TcpListener::bind("127.0.0.1:0")?,
        Arc::clone(&leader),
        ShipperConfig::new(leader_dir),
    )?;
    let ship_addr = shipper.addr().to_string();

    // The warm standby: a durable replica with its own text endpoint,
    // fed by the follower loop.
    let mesh = Mesh::mesh2d(cfg.width, cfg.height);
    let (state, wal, _) = recover(&mesh, &follower_dir, cfg.fsync)?;
    let follower = Arc::new(AdmissionService::with_durability(
        mesh,
        state,
        Durability {
            dir: follower_dir,
            wal: GroupWal::new(wal),
            snapshot_every: cfg.snapshot_every,
        },
    ));
    let follower_hub = Arc::new(ReplHub::follower(&ship_addr));
    follower.attach_repl(Arc::clone(&follower_hub));
    let mut follow_cfg = FollowerConfig::new(&ship_addr);
    follow_cfg.promote_grace = Some(grace);
    let follower_loop = Follower::spawn(Arc::clone(&follower), follow_cfg)?;

    let leader_server = Server::bind_with_config(
        Arc::clone(&leader),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 0,
            workers: cfg.server_workers,
        },
    )?;
    let leader_addr = leader_server.local_addr()?.to_string();
    let leader_thread = thread::spawn(move || leader_server.run());
    let follower_server = Server::bind(Arc::clone(&follower), "127.0.0.1:0")?;
    let follower_addr = follower_server.local_addr()?.to_string();
    let follower_thread = thread::spawn(move || follower_server.run());

    // Peak-lag sampler: frontier minus applied, polled while the load
    // runs. Both gauges are plain atomics, so sampling is free.
    let sampling = Arc::new(AtomicBool::new(true));
    let max_lag = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let sampler = {
        let sampling = Arc::clone(&sampling);
        let max_lag = Arc::clone(&max_lag);
        let leader = Arc::clone(&leader);
        let hub = Arc::clone(&follower_hub);
        thread::spawn(move || {
            while sampling.load(Ordering::Relaxed) {
                let lag = leader
                    .ship_frontier()
                    .unwrap_or(0)
                    .saturating_sub(hub.applied_seq());
                max_lag.fetch_max(lag, Ordering::Relaxed);
                thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let (logs, elapsed) = drive_clients(&leader_addr, &leader_cfg)?;
    sampling.store(false, Ordering::Relaxed);
    let _ = sampler.join();

    let mut control = Client::connect(&leader_addr)?;
    let server_stats = control.send("STATS")?;
    let group_commit = leader.group_commit_stats();
    let audited_streams = leader
        .audit()
        .map_err(|e| io::Error::other(format!("post-bench leader audit failed: {e}")))?;

    // Drain: the leader's background flusher keeps advancing the
    // frontier over the last buffered records; wait until the follower
    // has applied a frontier that then stays put. Progress-aware
    // rather than a fixed cliff — on few cores the follower applies
    // the backlog serially after the load stops, which can take far
    // longer than the load itself ran; only a *stalled* follower (no
    // applied progress for two seconds) or the hard cap ends the
    // drain early.
    let drain_t0 = Instant::now();
    let drain_cap = drain_t0 + Duration::from_mins(2);
    let mut last_applied = follower_hub.applied_seq();
    let mut last_progress = Instant::now();
    let final_lag = loop {
        let frontier = leader.ship_frontier().unwrap_or(0);
        let applied = follower_hub.applied_seq();
        if applied >= frontier {
            thread::sleep(Duration::from_millis(20));
            let settled = leader.ship_frontier().unwrap_or(0);
            let lag = settled.saturating_sub(follower_hub.applied_seq());
            if lag == 0 {
                break 0;
            }
        }
        if applied > last_applied {
            last_applied = applied;
            last_progress = Instant::now();
        }
        let now = Instant::now();
        if now > drain_cap || now.duration_since(last_progress) > Duration::from_secs(2) {
            break frontier.saturating_sub(applied);
        }
        thread::sleep(Duration::from_millis(2));
    };
    let drain_ms = drain_t0.elapsed().as_secs_f64() * 1e3;
    let follower_applied_seq = follower_hub.applied_seq();

    // Failover: tear the leader down (text server and shipper) and
    // time until the follower self-promotes and serves a write.
    let kill_t0 = Instant::now();
    control.send("SHUTDOWN")?;
    leader_thread.join().expect("leader server panicked")?;
    shipper.stop();
    let promote_deadline = kill_t0 + grace.saturating_mul(20) + Duration::from_secs(10);
    while follower_hub.is_follower() {
        if Instant::now() > promote_deadline {
            return Err(io::Error::other(
                "follower never promoted after leader teardown",
            ));
        }
        thread::sleep(Duration::from_millis(2));
    }
    let mut verify = Client::connect(&follower_addr)?;
    let reply = verify.send_idempotent(990_001, "ADMIT 0,0 1,0 7 200 1")?;
    let failover_ms = kill_t0.elapsed().as_secs_f64() * 1e3;
    let write_after_failover = status_of(&reply).to_string();
    if write_after_failover != "admitted" && write_after_failover != "rejected" {
        return Err(io::Error::other(format!(
            "post-failover write not served: {reply}"
        )));
    }
    let promoted_streams = follower
        .audit()
        .map_err(|e| io::Error::other(format!("post-failover audit failed: {e}")))?;
    verify.send("SHUTDOWN")?;
    follower_thread.join().expect("follower server panicked")?;
    follower_loop.stop();

    // The partition phase runs on its own mini-rig: the main pair is
    // already torn down and its follower promoted, so the split-brain
    // timings need a fresh leader/standby under a chaos proxy.
    let partition = run_partition_phase(dir, grace)?;

    let leader = summarize(
        &leader_cfg,
        &logs,
        elapsed,
        audited_streams,
        group_commit,
        server_stats,
    );
    let overhead_pct = if baseline_throughput > 0.0 {
        (baseline_throughput - leader.throughput) / baseline_throughput * 100.0
    } else {
        0.0
    };
    Ok(ReplBenchOutcome {
        leader,
        baseline_throughput,
        overhead_pct,
        max_lag_frames: max_lag.load(Ordering::Relaxed),
        final_lag_frames: final_lag,
        drain_ms,
        follower_applied_seq,
        promote_grace: grace,
        failover_ms,
        promoted_epoch: follower_hub.epoch(),
        promoted_streams,
        write_after_failover,
        partition,
    })
}

/// Renders the replication bench as the `results/BENCH_repl.json`
/// artifact: the leader load phase keeps the standard bench keys, the
/// replication, failover, and partition-failover numbers land under
/// their own objects.
pub fn render_repl_json(o: &ReplBenchOutcome) -> String {
    let base =
        render_bench_json(&o.leader).replacen("\"bench\": \"service\"", "\"bench\": \"repl\"", 1);
    let mut out = base
        .trim_end()
        .strip_suffix('}')
        .expect("bench json ends with a brace")
        .trim_end()
        .to_string();
    out.push_str(&format!(
        ",\n  \"replication\": {{\"baseline_throughput_ops_per_s\": {:.1}, \"overhead_pct\": {:.1}, \"max_lag_frames\": {}, \"final_lag_frames\": {}, \"drain_ms\": {:.1}, \"follower_applied_seq\": {}}},\n",
        o.baseline_throughput,
        o.overhead_pct,
        o.max_lag_frames,
        o.final_lag_frames,
        o.drain_ms,
        o.follower_applied_seq
    ));
    out.push_str(&format!(
        "  \"failover\": {{\"failover_ms\": {:.1}, \"promote_grace_ms\": {}, \"promoted_epoch\": {}, \"promoted_streams\": {}, \"write_after_failover\": \"{}\"}},\n",
        o.failover_ms,
        o.promote_grace.as_millis(),
        o.promoted_epoch,
        o.promoted_streams,
        o.write_after_failover
    ));
    let p = &o.partition;
    out.push_str(&format!(
        "  \"partition\": {{\"lease_ms\": {}, \"seal_ms\": {:.1}, \"promote_ms\": {:.1}, \"first_write_ms\": {:.1}, \"fence_ms\": {:.1}, \"divergent_admits\": {}, \"divergence_ops\": {}}}\n",
        p.lease.as_millis(),
        p.seal_ms,
        p.promote_ms,
        p.first_write_ms,
        p.fence_ms,
        p.divergent_admits,
        p.divergence_ops
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_bench_runs_and_audits() {
        let cfg = BenchConfig {
            clients: 3,
            ops_per_client: 40,
            ..BenchConfig::default()
        };
        let o = run_bench(&cfg).unwrap();
        assert_eq!(o.total_ops, 120);
        assert!(o.admitted > 0, "{o:?}");
        assert!(o.admit.count > 0 && o.query.count > 0, "{o:?}");
        assert!(o.throughput > 0.0);
        assert!(o.p50_us <= o.p99_us && o.p99_us <= o.max_us, "{o:?}");
        assert!(
            o.server_stats.contains("\"recomputations\""),
            "{}",
            o.server_stats
        );
        let json = render_bench_json(&o);
        assert!(json.contains("\"throughput_ops_per_s\""), "{json}");
        assert!(json.contains("\"p99\""), "{json}");
    }

    #[test]
    fn percentiles_are_exact_on_known_data() {
        let ns: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        assert_eq!(percentile_us(&ns, 50.0), 50);
        assert_eq!(percentile_us(&ns, 99.0), 99);
        assert_eq!(percentile_us(&ns, 100.0), 100);
        assert_eq!(percentile_us(&[], 50.0), 0);
    }

    #[test]
    fn durable_bench_runs_and_audits() {
        let dir = std::env::temp_dir().join(format!("rtwc-bench-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = BenchConfig {
            clients: 2,
            ops_per_client: 30,
            wal_dir: Some(dir.clone()),
            fsync: FsyncPolicy::Never,
            ..BenchConfig::default()
        };
        let o = run_bench(&cfg).unwrap();
        assert_eq!(o.total_ops, 60);
        assert!(o.admitted > 0, "{o:?}");
        assert!(dir.join(crate::wal::WAL_FILE).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_json_keeps_stable_top_level_keys() {
        let mk = |tput: f64| BenchOutcome {
            clients: 1,
            ops_per_client: 1,
            pipeline: 1,
            width: 10,
            height: 10,
            locality: 0,
            max_own: 0,
            total_ops: 1,
            elapsed_s: 1.0,
            throughput: tput,
            admitted: 1,
            rejected: 0,
            removed: 0,
            errors: 0,
            p50_us: 1,
            p90_us: 1,
            p99_us: 1,
            max_us: 1,
            admit: KindLatency {
                count: 1,
                p50_us: 2,
                p99_us: 3,
            },
            query: KindLatency::default(),
            audited_streams: 1,
            group_commit: None,
            server_stats: "{\"status\":\"ok\"}".to_string(),
        };
        let sweep = WalSweep {
            baseline: mk(100.0),
            policies: vec![
                ("never".to_string(), mk(90.0)),
                ("always".to_string(), mk(40.0)),
            ],
        };
        let json = render_sweep_json(&sweep);
        assert!(json.contains("\"throughput_ops_per_s\": 100.0"), "{json}");
        assert!(json.contains("\"wal_sweep\""), "{json}");
        assert!(json.contains("\"never\""), "{json}");
        assert!(json.contains("\"always\""), "{json}");
        assert!(json.trim_end().ends_with('}'), "{json}");
    }

    #[test]
    fn pipelined_bench_serves_every_op() {
        let cfg = BenchConfig {
            clients: 2,
            ops_per_client: 50,
            pipeline: 8,
            ..BenchConfig::default()
        };
        let o = run_bench(&cfg).unwrap();
        // 50 ops per client in bursts of 8: every op gets a response.
        assert_eq!(o.total_ops, 100);
        assert_eq!(o.pipeline, 8);
        assert!(o.admitted > 0, "{o:?}");
    }

    #[test]
    fn duration_mode_runs_for_the_window_and_reports_batching() {
        let dir = std::env::temp_dir().join(format!("rtwc-bench-dur-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = BenchConfig {
            clients: 2,
            duration: Some(Duration::from_millis(200)),
            warmup: Duration::from_millis(50),
            pipeline: 4,
            wal_dir: Some(dir.clone()),
            fsync: FsyncPolicy::Always,
            ..BenchConfig::default()
        };
        let o = run_bench(&cfg).unwrap();
        assert!(o.total_ops > 0, "{o:?}");
        // elapsed_s is the measured steady-state window, not the whole
        // run (warmup + drain excluded).
        assert!(o.elapsed_s >= 0.15 && o.elapsed_s < 2.0, "{o:?}");
        let gc = o.group_commit.expect("durable run reports group commit");
        assert!(gc.syncs > 0, "{gc:?}");
        assert!(gc.ops_synced >= gc.syncs, "{gc:?}");
        let json = render_bench_json(&o);
        assert!(json.contains("\"group_commit\""), "{json}");
        assert!(json.contains("\"mean_batch\""), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repl_bench_measures_lag_and_failover() {
        let dir = std::env::temp_dir().join(format!("rtwc-bench-repl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = BenchConfig {
            clients: 2,
            ops_per_client: 30,
            width: 8,
            height: 8,
            snapshot_every: 0, // keep the WAL whole: no snapshot path
            ..BenchConfig::default()
        };
        let o = run_bench_repl(&cfg, &dir, Duration::from_millis(150)).unwrap();
        assert_eq!(o.leader.total_ops, 60, "{o:?}");
        assert!(o.baseline_throughput > 0.0, "{o:?}");
        assert_eq!(o.final_lag_frames, 0, "{o:?}");
        assert!(o.follower_applied_seq > 0, "{o:?}");
        // The grace clock runs from the follower's last leader contact,
        // so failover lands near the grace — never instantaneous.
        assert!(o.failover_ms > 50.0, "{o:?}");
        assert_eq!(o.promoted_epoch, 2, "{o:?}");
        assert!(
            o.write_after_failover == "admitted" || o.write_after_failover == "rejected",
            "{o:?}"
        );
        // Partition phase: the seal must strictly precede the
        // promotion (zero-dual-ack ordering) and the fence audit must
        // account for exactly the writes acknowledged in the split.
        let p = &o.partition;
        assert!(p.seal_ms < p.promote_ms, "{p:?}");
        assert!(p.promote_ms <= p.first_write_ms, "{p:?}");
        assert!(p.fence_ms > 0.0, "{p:?}");
        assert_eq!(p.divergence_ops, p.divergent_admits, "{p:?}");
        let json = render_repl_json(&o);
        assert!(json.contains("\"bench\": \"repl\""), "{json}");
        assert!(json.contains("\"failover_ms\""), "{json}");
        assert!(json.contains("\"max_lag_frames\""), "{json}");
        assert!(json.contains("\"baseline_throughput_ops_per_s\""), "{json}");
        assert!(json.contains("\"partition\""), "{json}");
        assert!(json.contains("\"seal_ms\""), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_field_extraction() {
        let line = r#"{"status":"admitted","id":42,"bound":7}"#;
        assert_eq!(extract_u64(line, "id"), Some(42));
        assert_eq!(extract_u64(line, "bound"), Some(7));
        assert_eq!(extract_u64(line, "slack"), None);
        assert_eq!(status_of(line), "admitted");
    }
}
