//! The thread-safe admission service: stable ids, verifier-gated
//! admission, and snapshot/stats reads over the incremental
//! [`AdmissionController`].
//!
//! ## Locking discipline
//!
//! One `RwLock` guards the controller and the id table. Reads
//! (`QUERY`, `SNAPSHOT`, the read half of `STATS`) take the shared
//! lock and only ever touch *cached* bounds — they never run the
//! analysis. Writes (`ADMIT`, `REMOVE`) take the exclusive lock for
//! the whole decision, **including the candidate lint**, so every
//! admission decision is made against exactly the set it will join.
//! The exclusive section is kept minimal: the candidate is routed
//! *before* the lock (routing is deterministic and set-independent),
//! the lint borrows the controller's `(spec, path)` parts instead of
//! cloning and re-routing the admitted set, and the journal holds
//! `Arc<AcceptedOp>` entries so [`AdmissionService::ops`] clones
//! pointers, not specs, under the shared lock. Metrics are plain
//! atomics outside the lock.
//!
//! With the **optimistic path** enabled
//! ([`AdmissionService::set_optimistic`]), an `ADMIT` runs the whole
//! analysis under the *shared* lock instead:
//! [`AdmissionController::validate`] analyzes the candidate against
//! only its link-sharing component, so admissions whose neighborhoods
//! are disjoint validate concurrently. The exclusive lock is then taken
//! only to [`AdmissionController::commit_validated`] the pre-computed
//! bounds — which re-derives the component and refuses (falling back to
//! the serial path, same lock) if any overlapping stream changed in
//! between. Either way the decision applied is bit-identical to a
//! serial admit at the commit point, so the journal stays serially
//! replayable.
//!
//! ## Soundness
//!
//! The controller's invariant (every cached bound satisfies
//! `U_i <= D_i`, and cached bounds equal a fresh offline
//! `determine_feasibility` over the admitted set) is preserved because
//! writes are serialized: the service only ever interleaves *reads*
//! between them. [`AdmissionService::audit`] re-derives every bound
//! offline and compares bit-for-bit; the accepted-operation log
//! ([`AdmissionService::ops`], [`replay`]) lets a test replay the
//! exact serialized write history.
//!
//! ## Durability
//!
//! With a [`Durability`] attached (the `--wal-dir` path), every
//! accepted operation is buffered into the group-commit WAL
//! ([`crate::group_commit::GroupWal`]) under the write lock and
//! **acknowledged only after its batch is durable** — the write lock is
//! released first, so under `--fsync always` admissions keep flowing
//! while the device syncs, and one fsync acknowledges a whole batch.
//! A WAL device failure fails every ticket in the in-flight batch
//! (none of them is acknowledged; the file is rolled back to the last
//! durable point) and flips the service into **degraded read-only
//! mode**: reads keep working, writes answer `code:"degraded"` until an
//! operator restarts onto a healthy device. The ops of a failed batch
//! stay applied in memory but unacknowledged until that restart —
//! recovery then serves exactly the durable (= acknowledged) prefix.
//! Requests carrying an `@REQID` prefix land in a bounded idempotency
//! window (persisted in the WAL and snapshots), so a client retry of a
//! lost acknowledgement returns the original outcome instead of
//! double-admitting. Load shedding is a gate in front of the write
//! lock: when more than `max_pending` writes are queued, new writes are
//! answered `busy` without touching the lock.

use crate::group_commit::GroupWal;
use crate::lock_order::{classes, TrackedRwLock, TrackedRwLockReadGuard, TrackedRwLockWriteGuard};
use crate::metrics::{Metrics, MetricsSnapshot, RequestKind};
use crate::protocol::{
    parse_request, RejectReason, Request, Response, ShardStats, ShardsReport, SnapshotStream,
    StatsReport,
};
use crate::repl::ReplHub;
use crate::shard_plane::ShardPlane;
use crate::snapshot::{write_snapshot, DedupEntry, SnapshotData};
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::Instant;
use crate::wal::FsyncPolicy;
use rtwc_core::{
    determine_feasibility, plan_admit, plan_remove, scan_neighborhood, AdmissionController,
    AdmissionError, DelayBound, KeyedRejection, NeighborMember, RegionShard, ShardId, ShardMap,
    StreamId, StreamSet, StreamSpec,
};
use rtwc_verifier::{lint_candidate_indexed, lint_candidate_routed, Diagnostic};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use wormnet_topology::{LinkId, Mesh, Path, Routing, Topology, XyRouting};

/// Most request ids remembered for idempotent replay. Oldest entries
/// are evicted first; a client retrying within this window gets its
/// original outcome back.
pub const DEDUP_CAP: usize = 4096;

/// The `retry_after_ms` hint attached to `busy` responses.
const RETRY_AFTER_MS: u64 = 25;

/// One accepted (state-changing) operation, in the order the service
/// applied it. Rejected admissions and failed removals do not appear:
/// they leave the controller untouched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AcceptedOp {
    /// A successful `ADMIT`, with the id it was assigned.
    Admit {
        /// The stable id handed to the client.
        handle: u64,
        /// The admitted spec.
        spec: StreamSpec,
    },
    /// A successful `REMOVE`.
    Remove {
        /// The removed stream's stable id.
        handle: u64,
    },
}

/// The durability attachment: where state persists and how eagerly it
/// is synced. Built by the CLI from `--wal-dir`/`--fsync` after
/// recovery has already replayed and audited the directory.
#[derive(Debug)]
pub struct Durability {
    /// Directory holding `wal.log` and `snapshot.bin`.
    pub dir: PathBuf,
    /// The open, recovered write-ahead log behind its group-commit
    /// front (wrap the recovered [`crate::wal::Wal`] with
    /// [`GroupWal::new`]).
    pub wal: GroupWal,
    /// Snapshot + compact the WAL every this many records (0 = never).
    pub snapshot_every: u64,
}

#[derive(Debug)]
struct Inner {
    ctl: AdmissionController,
    /// Sharded mode only: admitted specs parallel to `handles`, so
    /// reads (`QUERY`, `SNAPSHOT`, audit) never touch a shard lock.
    /// Empty in monolithic mode, where `ctl` holds the parts.
    specs: Vec<StreamSpec>,
    /// Sharded mode only: cached bounds parallel to `handles`.
    bounds: Vec<u64>,
    /// Stable ids, parallel to the controller's dense ids. Assigned
    /// monotonically and removed in place, so the vector is always
    /// sorted ascending — lookups may binary-search it.
    handles: Vec<u64>,
    next_handle: u64,
    /// The accepted-operation journal. Entries are `Arc`ed so snapshot
    /// readers clone pointers, not specs.
    log: Vec<Arc<AcceptedOp>>,
    /// Idempotency window: request id -> original outcome.
    dedup: HashMap<u64, DedupEntry>,
    /// Eviction order for `dedup` (front = oldest).
    dedup_order: VecDeque<u64>,
}

impl Inner {
    fn remember(&mut self, entry: DedupEntry) {
        if self.dedup.len() >= DEDUP_CAP {
            if let Some(oldest) = self.dedup_order.pop_front() {
                self.dedup.remove(&oldest);
            }
        }
        self.dedup_order.push_back(entry.req_id);
        self.dedup.insert(entry.req_id, entry);
    }
}

/// The shared admission-control service behind `rtwc serve`.
#[derive(Debug)]
pub struct AdmissionService {
    mesh: Mesh,
    inner: TrackedRwLock<Inner>,
    /// The group-commit WAL lives outside the `RwLock`: appends are
    /// ticketed under the write lock, but the durability wait happens
    /// after it is released.
    durability: Option<Durability>,
    metrics: Metrics,
    /// Set on the first WAL device error; writes are refused from then
    /// on (reads keep working) until an operator restarts the service.
    degraded: AtomicBool,
    /// Writes currently queued or holding the write lock — the
    /// load-shedding gauge.
    pending_writes: AtomicU64,
    /// Shed writes beyond this many pending (0 = never shed).
    max_pending: u64,
    /// Validate admissions under the shared lock, committing the
    /// pre-computed result under the exclusive one. Ignored when the
    /// sharded plane is enabled (the plane is the concurrent path).
    optimistic: bool,
    /// The sharded admission plane (`--shards`). When present, `ADMIT`
    /// and `REMOVE` run two-phase over per-shard locks and `inner.ctl`
    /// stays empty; reads serve from `inner.specs`/`inner.bounds`.
    plane: Option<ShardPlane>,
    /// Replication state, when this node participates in replication.
    /// Set once at startup ([`AdmissionService::attach_repl`]); absent
    /// on a standalone node, whose request paths stay untouched.
    repl: std::sync::OnceLock<Arc<ReplHub>>,
}

impl AdmissionService {
    /// An empty service over `mesh`, no durability (state dies with the
    /// process).
    pub fn new(mesh: Mesh) -> Self {
        Self::build(
            mesh,
            Inner {
                ctl: AdmissionController::new(),
                specs: Vec::new(),
                bounds: Vec::new(),
                handles: Vec::new(),
                next_handle: 0,
                log: Vec::new(),
                dedup: HashMap::new(),
                dedup_order: VecDeque::new(),
            },
            None,
        )
    }

    /// A service resuming from recovered state, persisting into
    /// `durability` from the first accepted operation on.
    pub fn with_durability(
        mesh: Mesh,
        state: crate::recovery::RecoveredState,
        durability: Durability,
    ) -> Self {
        let mut inner = Inner {
            ctl: state.ctl,
            specs: Vec::new(),
            bounds: Vec::new(),
            handles: state.handles,
            next_handle: state.next_handle,
            log: state.log,
            dedup: HashMap::new(),
            dedup_order: VecDeque::new(),
        };
        for entry in state.dedup {
            inner.remember(entry);
        }
        Self::build(mesh, inner, Some(durability))
    }

    fn build(mesh: Mesh, inner: Inner, durability: Option<Durability>) -> Self {
        AdmissionService {
            mesh,
            inner: TrackedRwLock::new(&classes::SERVICE_INNER, inner),
            durability,
            metrics: Metrics::new(),
            degraded: AtomicBool::new(false),
            pending_writes: AtomicU64::new(0),
            max_pending: 0,
            optimistic: false,
            plane: None,
            repl: std::sync::OnceLock::new(),
        }
    }

    /// Splits the admission plane into region shards (`0` = auto: one
    /// region per 16x16 mesh tile) and migrates any recovered state
    /// into them. Call before sharing the service across threads —
    /// writes then run two-phase over per-shard locks, and reads serve
    /// from the spec table without touching a shard. Returns the
    /// actual shard count (the mesh extents can cap the request).
    pub fn enable_sharding(&mut self, shards: usize) -> usize {
        let map = if shards == 0 {
            ShardMap::auto(&self.mesh)
        } else {
            ShardMap::regions(&self.mesh, shards)
        };
        let plane = ShardPlane::new(map);
        // Drain the monolithic controller first, then seed the plane
        // without `inner` held: shard locks rank below the service
        // lock, so they must never be acquired under it.
        let (parts, bounds, handles) = {
            let mut inner = self.inner.write();
            let parts = inner.ctl.parts().to_vec();
            let bounds: Vec<u64> = inner
                .ctl
                .bounds()
                .iter()
                .map(|b| b.value().expect("admitted bounds are bounded"))
                .collect();
            inner.ctl = AdmissionController::new();
            (parts, bounds, inner.handles.clone())
        };
        for (i, (spec, path)) in parts.iter().enumerate() {
            let owners = plane.map().shards_of(path.links().iter().copied());
            let cross = owners.len() > 1;
            for guard in &mut plane.write_set(&owners) {
                guard.insert_member(
                    handles[i],
                    spec.clone(),
                    path.clone(),
                    DelayBound::Bounded(bounds[i]),
                    cross,
                );
            }
        }
        {
            let mut inner = self.inner.write();
            inner.specs = parts.into_iter().map(|(s, _)| s).collect();
            inner.bounds = bounds;
        }
        let n = plane.shard_count();
        self.plane = Some(plane);
        n
    }

    /// The sharded admission plane, when enabled.
    pub fn shard_plane(&self) -> Option<&ShardPlane> {
        self.plane.as_ref()
    }

    /// Attaches the replication hub (leader or follower role). Call
    /// once at startup, before serving requests; a second call is
    /// ignored.
    pub fn attach_repl(&self, hub: Arc<ReplHub>) {
        let _ = self.repl.set(hub);
    }

    /// The attached replication hub, if any.
    pub fn repl_hub(&self) -> Option<&Arc<ReplHub>> {
        self.repl.get()
    }

    /// `Some(error)` when this node is a follower: mutations are
    /// redirected to the leader instead of being applied.
    fn not_leader(&self) -> Option<Response> {
        let hub = self.repl.get()?;
        if hub.is_follower() {
            Some(Response::error(
                "not_leader",
                format!("not the leader; leader is {}", hub.leader_addr()),
            ))
        } else {
            None
        }
    }

    /// `Some(error)` when the leader's write lease has lapsed: the
    /// follower may already be promoting, so acking a write here could
    /// open a dual-ack window. The response is retryable — the client
    /// backs off and retries, landing either here again (still sealed),
    /// on the un-sealed leader (the partition healed without a
    /// promotion), or on a `not_leader` redirect (we were fenced).
    fn write_sealed(&self) -> Option<Response> {
        let hub = self.repl.get()?;
        if hub.write_sealed() {
            Some(Response::error(
                "sealed",
                format!(
                    "write lease lapsed ({} ms without a follower ack); retry",
                    hub.lease_ms()
                ),
            ))
        } else {
            None
        }
    }

    /// Permanently demotes this node: a peer promoted under `epoch`
    /// (strictly higher than ours), whose applied frontier when it took
    /// over was `common_seq`. Audits the local WAL suffix past
    /// `common_seq` — operations acknowledged here that the winning
    /// history does not contain — as a `DivergenceReport` (verifier
    /// rule A110) before the role flips, and records `new_leader` (when
    /// known) as the redirect target. Returns `false` for a stale
    /// fence.
    pub fn fence(&self, epoch: u64, common_seq: u64, new_leader: &str) -> bool {
        let Some(hub) = self.repl.get() else {
            return false;
        };
        let fenced_epoch = hub.epoch();
        // Land buffered writes first so the audited suffix is exactly
        // what the local WAL will show an operator who inspects it.
        self.flush();
        let local_seq = self.seq();
        let divergent = local_seq.saturating_sub(common_seq);
        if !hub.fence(epoch, new_leader, divergent) {
            return false;
        }
        let artifact = rtwc_verifier::DivergenceArtifact {
            fenced_epoch,
            winner_epoch: epoch,
            common_seq,
            local_seq,
        };
        eprintln!(
            "DivergenceReport: fenced by epoch {epoch} (was {fenced_epoch}); local WAL at seq \
             {local_seq}, shared history ends at {common_seq} ({divergent} divergent op(s))"
        );
        for d in rtwc_verifier::lint_divergence(&artifact) {
            eprintln!("DivergenceReport: [{}] {}", d.code, d.message);
        }
        true
    }

    /// Sets the load-shedding threshold: writes beyond `n` pending are
    /// answered `busy` (0 disables shedding). Call before sharing the
    /// service across threads.
    pub fn set_max_pending(&mut self, n: u64) {
        self.max_pending = n;
    }

    /// Enables (or disables) the optimistic admission path: validation
    /// under the shared lock, commit under the exclusive one. Worth it
    /// when several workers admit concurrently; pure overhead for a
    /// single writer. Call before sharing the service across threads.
    pub fn set_optimistic(&mut self, on: bool) {
        self.optimistic = on;
    }

    /// True once a WAL device error has flipped the service into
    /// read-only degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// Total accepted operations in this service's history (including
    /// those recovered from disk). Falls back to the journal length for
    /// a non-durable service.
    pub fn seq(&self) -> u64 {
        match &self.durability {
            Some(d) => d.wal.seq(),
            None => self.read().log.len() as u64,
        }
    }

    /// Lands and syncs every buffered WAL record regardless of policy —
    /// the clean-shutdown path for `--fsync interval`/`never`.
    pub fn flush(&self) {
        if let Some(d) = &self.durability {
            let _ = d.wal.flush();
        }
    }

    /// Group-commit batching statistics, when a WAL is attached.
    pub fn group_commit_stats(&self) -> Option<crate::group_commit::GroupCommitStats> {
        self.durability.as_ref().map(|d| d.wal.stats())
    }

    /// `Some(interval)` when the attached WAL runs the `interval` fsync
    /// policy — the server spawns a background flusher thread at this
    /// cadence so the periodic fsync never lands on a request thread.
    pub fn wal_flush_interval(&self) -> Option<Duration> {
        match self.durability.as_ref()?.wal.policy() {
            FsyncPolicy::Interval(every) => Some(every),
            FsyncPolicy::Always | FsyncPolicy::Never => None,
        }
    }

    /// Background interval-fsync hook: flushes and syncs the WAL buffer
    /// once the policy's interval has elapsed. A device error degrades
    /// the service to read-only, exactly as a failed group sync would.
    pub fn sync_wal_if_due(&self) {
        if let Some(d) = self.durability.as_ref() {
            if d.wal.sync_if_due().is_err() {
                self.degraded.store(true, Ordering::SeqCst);
            }
        }
    }

    /// The mesh the service routes on.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Service-side metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Number of streams currently admitted.
    pub fn admitted_count(&self) -> usize {
        self.read().handles.len()
    }

    /// The accepted-operation log, in serialization order. O(log
    /// length) pointer clones under the shared lock — the op payloads
    /// themselves are never copied.
    pub fn ops(&self) -> Vec<Arc<AcceptedOp>> {
        self.read().log.clone()
    }

    /// The current cached bounds with their stable ids, in dense order.
    pub fn bounds_by_handle(&self) -> Vec<(u64, u64)> {
        let inner = self.read();
        if self.plane.is_some() {
            return inner
                .handles
                .iter()
                .zip(&inner.bounds)
                .map(|(&h, &b)| (h, b))
                .collect();
        }
        inner
            .handles
            .iter()
            .zip(inner.ctl.bounds())
            .map(|(&h, b)| (h, b.value().expect("admitted bounds are bounded")))
            .collect()
    }

    fn read(&self) -> TrackedRwLockReadGuard<'_, Inner> {
        self.inner.read()
    }

    fn write(&self) -> TrackedRwLockWriteGuard<'_, Inner> {
        self.inner.write()
    }

    /// Parses and serves one request line, timing it into the metrics.
    /// Returns the response and whether it was a `SHUTDOWN`.
    pub fn dispatch_line(&self, line: &str) -> (Response, bool) {
        self.dispatch_timed(line, None)
    }

    /// Like [`AdmissionService::dispatch_line`] for a request that
    /// waited `queue_ns` in a reactor queue first: the wait and the
    /// handler time land in separate histograms, their sum in the total
    /// one.
    pub fn dispatch_queued(&self, line: &str, queue_ns: u64) -> (Response, bool) {
        self.dispatch_timed(line, Some(queue_ns))
    }

    fn dispatch_timed(&self, line: &str, queue_ns: Option<u64>) -> (Response, bool) {
        let start = Instant::now();
        let (kind, response) = match parse_request(line) {
            Ok(req) => {
                let kind = match req {
                    Request::Admit { .. } => RequestKind::Admit,
                    Request::Remove { .. } => RequestKind::Remove,
                    Request::Query(_) => RequestKind::Query,
                    Request::Snapshot => RequestKind::Snapshot,
                    Request::Stats => RequestKind::Stats,
                    Request::Promote => RequestKind::Promote,
                    Request::Shutdown => RequestKind::Shutdown,
                };
                let is_write = matches!(kind, RequestKind::Admit | RequestKind::Remove);
                if is_write && self.max_pending > 0 {
                    // Shed before touching the write lock: the gauge
                    // counts writes queued behind it, so under overload
                    // this path answers in O(1) while the lock drains.
                    let pending = self.pending_writes.fetch_add(1, Ordering::SeqCst);
                    let response = if pending >= self.max_pending {
                        Response::Busy {
                            retry_after_ms: RETRY_AFTER_MS,
                        }
                    } else {
                        self.handle(&req)
                    };
                    self.pending_writes.fetch_sub(1, Ordering::SeqCst);
                    (kind, response)
                } else {
                    (kind, self.handle(&req))
                }
            }
            Err(e) => (
                RequestKind::Malformed,
                Response::error("malformed", format!("malformed request: {e}")),
            ),
        };
        // Fresh admissions/removals are counted inside `admit`/`remove`
        // at the state-change point, so a dedup replay (which returns
        // the same response shape) never inflates the accepted-op
        // counters.
        match &response {
            Response::Rejected { .. } => self.metrics.count_rejected(),
            Response::Busy { .. } => self.metrics.count_shed(),
            Response::Error { .. } => self.metrics.count_error(),
            _ => {}
        }
        let shutdown = matches!(response, Response::ShuttingDown);
        let service_ns = start.elapsed().as_nanos() as u64;
        match queue_ns {
            None => self.metrics.observe(kind, service_ns),
            Some(q) => self.metrics.observe_queued(kind, q, service_ns),
        }
        (response, shutdown)
    }

    /// Serves one parsed request.
    pub fn handle(&self, req: &Request) -> Response {
        match *req {
            Request::Admit {
                req_id,
                src,
                dst,
                priority,
                period,
                length,
                deadline,
            } => self.admit(req_id, src, dst, priority, period, length, deadline),
            Request::Remove { req_id, id } => self.remove(req_id, id),
            Request::Query(id) => self.query(id),
            Request::Snapshot => self.snapshot(),
            Request::Stats => self.stats(),
            Request::Promote => self.promote(),
            Request::Shutdown => Response::ShuttingDown,
        }
    }

    /// Promotes this follower to leader: audits the warm-standby state
    /// (every cached bound re-derived offline, as at recovery), bumps
    /// the epoch, flips the role, and syncs the WAL so the new leader
    /// starts from a durable frontier. Refuses on a leader, without a
    /// hub, or when the audit finds a divergence — a node that cannot
    /// vouch for its state must not take writes.
    pub fn promote(&self) -> Response {
        let Some(hub) = self.repl.get() else {
            return Response::error("no_replication", "replication is not configured");
        };
        if !hub.is_follower() {
            return Response::error("already_leader", "this node is already the leader");
        }
        if hub.is_fenced() {
            return Response::error(
                "fenced",
                "a higher epoch fenced this node; it must rejoin as a follower, not promote",
            );
        }
        let audited = match self.audit() {
            Ok(_) => true,
            Err(e) => {
                return Response::error(
                    "audit_failed",
                    format!("refusing promotion: state audit failed: {e}"),
                )
            }
        };
        // Land anything the replication stream buffered before the
        // role flips; a failure here degrades (the flag is set by the
        // usual paths) but the durable prefix is still a valid leader
        // start.
        self.flush();
        let epoch = hub.promote();
        Response::Promoted {
            epoch,
            streams: self.admitted_count() as u64,
            audited,
        }
    }

    /// The highest operation sequence the shipper may stream: records
    /// past it could still be rolled back. Under `--fsync always`
    /// that is the sync frontier (a flushed-but-unsynced batch rolls
    /// back whole on a device error); under `interval`/`never`,
    /// everything flushed to the file (publishes are never undone).
    /// `None` without local durability.
    pub fn ship_frontier(&self) -> Option<u64> {
        let d = self.durability.as_ref()?;
        let f = d.wal.frontiers();
        Some(match d.wal.policy() {
            FsyncPolicy::Always => f.synced,
            FsyncPolicy::Interval(_) | FsyncPolicy::Never => f.flushed,
        })
    }

    /// The local WAL's sync frontier (for STATS), falling back to the
    /// replicated applied sequence on a node without local durability.
    pub fn wal_synced_seq(&self) -> u64 {
        match self.durability.as_ref() {
            Some(d) => d.wal.frontiers().synced,
            None => self.repl.get().map(|h| h.applied_seq()).unwrap_or_default(),
        }
    }

    /// The leader WAL's base sequence — operations at or below it are
    /// only reachable through a snapshot transfer. `None` without
    /// local durability.
    pub fn wal_base_seq(&self) -> Option<u64> {
        self.durability
            .as_ref()
            .map(|d| d.wal.seq() - d.wal.records_since_reset())
    }

    /// Applies one replicated WAL frame on a follower. `seq` is the
    /// frame's global operation sequence: exactly `local seq + 1`
    /// applies (persisted locally first — ticket-before-apply, like a
    /// live write — then applied through the same controller path the
    /// leader used); at or below the local sequence is a duplicate
    /// delivery and an idempotent no-op; anything further ahead is a
    /// gap, reported as an error so the session reconnects and
    /// re-requests from the last good sequence.
    pub fn apply_replicated(&self, seq: u64, req_id: u64, op: &AcceptedOp) -> Result<(), String> {
        let hub = self
            .repl
            .get()
            .ok_or_else(|| "replication is not configured".to_string())?;
        if !hub.is_follower() {
            return Err("not a follower (promoted mid-stream?)".to_string());
        }
        if self.plane.is_some() {
            // A sharded follower replays through the shard plane, so a
            // promotion serves sharded writes immediately, without a
            // restart.
            return self.apply_replicated_sharded(seq, req_id, op);
        }
        let mut inner = self.write();
        // Not `self.seq()`: that re-locks `inner` on a non-durable
        // service, and the write lock is already held here.
        let cur = match &self.durability {
            Some(d) => d.wal.seq(),
            None => inner.log.len() as u64,
        };
        if seq <= cur {
            // Duplicate delivery (leader rewound to an older ack after
            // a reconnect): already applied, by sequence.
            hub.set_applied(cur);
            return Ok(());
        }
        if seq != cur + 1 {
            return Err(format!("replication gap: have {cur}, leader sent {seq}"));
        }
        let ticket = match op {
            AcceptedOp::Admit { handle, spec } => {
                let path = XyRouting
                    .route(&self.mesh, spec.source, spec.dest)
                    .map_err(|e| format!("replicated admit {handle}: routing failed: {e}"))?;
                // The leader accepted this op, so the warm standby must
                // too — a refusal is divergence, surfaced as an error.
                let id = inner
                    .ctl
                    .admit(spec.clone(), path)
                    .map_err(|e| format!("replicated admit {handle} refused: {e}"))?;
                // Ticket after the decision, with rollback on refusal —
                // the same order as a live admit, so the local WAL
                // never holds a record the state does not.
                let ticket = match self.persist(req_id, op) {
                    Ok(t) => t,
                    Err(refusal) => {
                        inner.ctl.remove(id);
                        return Err(format!("WAL refused the replicated record: {refusal:?}"));
                    }
                };
                inner.handles.push(*handle);
                debug_assert_eq!(inner.handles.len() - 1, id.index());
                inner.next_handle = inner.next_handle.max(handle + 1);
                if req_id != 0 {
                    let bound = inner
                        .ctl
                        .bound(id)
                        .value()
                        .expect("admitted bound is bounded");
                    inner.remember(DedupEntry {
                        req_id,
                        admit: true,
                        handle: *handle,
                        bound,
                        deadline: spec.deadline,
                    });
                }
                inner.log.push(Arc::new(op.clone()));
                ticket
            }
            AcceptedOp::Remove { handle } => {
                let idx = inner
                    .handles
                    .iter()
                    .position(|h| h == handle)
                    .ok_or_else(|| format!("replicated remove {handle}: unknown handle"))?;
                let ticket = match self.persist(req_id, op) {
                    Ok(t) => t,
                    Err(refusal) => {
                        return Err(format!("WAL refused the replicated record: {refusal:?}"));
                    }
                };
                inner.ctl.remove(StreamId(idx as u32));
                inner.handles.remove(idx);
                if req_id != 0 {
                    inner.remember(DedupEntry {
                        req_id,
                        admit: false,
                        handle: *handle,
                        bound: 0,
                        deadline: 0,
                    });
                }
                inner.log.push(Arc::new(op.clone()));
                ticket
            }
        };
        self.maybe_snapshot(&mut inner);
        drop(inner);
        if let Some(refusal) = self.await_durable(ticket) {
            return Err(format!("replicated record not durable: {refusal:?}"));
        }
        hub.set_applied(seq);
        Ok(())
    }

    /// [`Self::apply_replicated`] over the shard plane: the same
    /// sequence discipline (duplicates no-op, gaps error), but the
    /// decision lands in the owning region shards exactly as a live
    /// sharded write would, so a promoted follower serves sharded
    /// writes with no migration step. Shard guards are acquired before
    /// the service lock (their rank is below it) and held across the
    /// bookkeeping, mirroring `admit_sharded`/`remove_sharded`.
    fn apply_replicated_sharded(
        &self,
        seq: u64,
        req_id: u64,
        op: &AcceptedOp,
    ) -> Result<(), String> {
        let hub = self.repl.get().expect("caller checked");
        let plane = self.plane.as_ref().expect("caller checked");
        // Authoritative sequence state is read under `inner` below;
        // this precheck just keeps duplicate floods off the shard
        // locks.
        let cur = self.seq();
        if seq <= cur {
            hub.set_applied(cur);
            return Ok(());
        }
        match op {
            AcceptedOp::Admit { handle, spec } => {
                let path = XyRouting
                    .route(&self.mesh, spec.source, spec.dest)
                    .map_err(|e| format!("replicated admit {handle}: routing failed: {e}"))?;
                let seed: Vec<LinkId> = path.sorted_links().to_vec();
                let insert_shards = plane.map().shards_of(seed.iter().copied());
                let cross = insert_shards.len() > 1;
                let (mut guards, touched, nb) =
                    Self::converge_shards(plane, &seed, insert_shards.clone());
                // The leader accepted this op, so the warm standby
                // must too — a refusal is divergence, surfaced as an
                // error that tears the session down.
                let plan = plan_admit(&nb.members, spec, &path)
                    .map_err(|e| format!("replicated admit {handle} refused: {e:?}"))?;
                let mut inner = self.write();
                let cur = match &self.durability {
                    Some(d) => d.wal.seq(),
                    None => inner.log.len() as u64,
                };
                if seq <= cur {
                    hub.set_applied(cur);
                    return Ok(());
                }
                if seq != cur + 1 {
                    return Err(format!("replication gap: have {cur}, leader sent {seq}"));
                }
                let ticket = match self.persist(req_id, op) {
                    Ok(t) => t,
                    Err(refusal) => {
                        return Err(format!("WAL refused the replicated record: {refusal:?}"))
                    }
                };
                inner.next_handle = inner.next_handle.max(handle + 1);
                inner.handles.push(*handle);
                inner.specs.push(spec.clone());
                inner.bounds.push(plan.candidate_bound);
                inner.log.push(Arc::new(op.clone()));
                if req_id != 0 {
                    inner.remember(DedupEntry {
                        req_id,
                        admit: true,
                        handle: *handle,
                        bound: plan.candidate_bound,
                        deadline: spec.deadline,
                    });
                }
                for &sid in &insert_shards {
                    let pos = touched
                        .binary_search(&sid)
                        .expect("insert shards are locked");
                    guards[pos].insert_member(
                        *handle,
                        spec.clone(),
                        path.clone(),
                        DelayBound::Bounded(plan.candidate_bound),
                        cross,
                    );
                }
                for &(key, bound) in &plan.updates {
                    let member = nb
                        .members
                        .iter()
                        .find(|m| m.key == key)
                        .expect("update targets a neighborhood member");
                    let dense = inner
                        .handles
                        .binary_search(&key)
                        .expect("member handle is live");
                    inner.bounds[dense] =
                        bound.value().expect("surviving member bounds are bounded");
                    for sid in plane.map().shards_of(member.path.links().iter().copied()) {
                        let pos = touched
                            .binary_search(&sid)
                            .expect("neighborhood shards are locked");
                        guards[pos].set_member_bound(key, bound);
                    }
                }
                self.maybe_snapshot(&mut inner);
                drop(inner);
                drop(guards);
                if let Some(refusal) = self.await_durable(ticket) {
                    return Err(format!("replicated record not durable: {refusal:?}"));
                }
            }
            AcceptedOp::Remove { handle } => {
                let path = {
                    let inner = self.read();
                    let idx = inner
                        .handles
                        .binary_search(handle)
                        .map_err(|_| format!("replicated remove {handle}: unknown handle"))?;
                    let spec = &inner.specs[idx];
                    XyRouting
                        .route(&self.mesh, spec.source, spec.dest)
                        .map_err(|e| format!("replicated remove {handle}: routing failed: {e}"))?
                };
                let seed: Vec<LinkId> = path.sorted_links().to_vec();
                let owners = plane.map().shards_of(seed.iter().copied());
                let (mut guards, touched, nb) = Self::converge_shards(plane, &seed, owners.clone());
                if !nb.members.iter().any(|m| m.key == *handle) {
                    return Err(format!("replicated remove {handle}: not resident"));
                }
                let plan = plan_remove(&nb.members, *handle);
                let mut inner = self.write();
                let cur = match &self.durability {
                    Some(d) => d.wal.seq(),
                    None => inner.log.len() as u64,
                };
                if seq <= cur {
                    hub.set_applied(cur);
                    return Ok(());
                }
                if seq != cur + 1 {
                    return Err(format!("replication gap: have {cur}, leader sent {seq}"));
                }
                let idx = inner
                    .handles
                    .binary_search(handle)
                    .expect("victim is resident under its locked owner shards");
                let ticket = match self.persist(req_id, op) {
                    Ok(t) => t,
                    Err(refusal) => {
                        return Err(format!("WAL refused the replicated record: {refusal:?}"))
                    }
                };
                inner.handles.remove(idx);
                inner.specs.remove(idx);
                inner.bounds.remove(idx);
                inner.log.push(Arc::new(op.clone()));
                if req_id != 0 {
                    inner.remember(DedupEntry {
                        req_id,
                        admit: false,
                        handle: *handle,
                        bound: 0,
                        deadline: 0,
                    });
                }
                for &sid in &owners {
                    let pos = touched
                        .binary_search(&sid)
                        .expect("owner shards are locked");
                    guards[pos].remove_member(*handle);
                }
                for &(key, bound) in &plan.updates {
                    let member = nb
                        .members
                        .iter()
                        .find(|m| m.key == key)
                        .expect("update targets a neighborhood member");
                    let dense = inner
                        .handles
                        .binary_search(&key)
                        .expect("member handle is live");
                    inner.bounds[dense] =
                        bound.value().expect("surviving member bounds are bounded");
                    for sid in plane.map().shards_of(member.path.links().iter().copied()) {
                        let pos = touched
                            .binary_search(&sid)
                            .expect("neighborhood shards are locked");
                        guards[pos].set_member_bound(key, bound);
                    }
                }
                self.maybe_snapshot(&mut inner);
                drop(inner);
                drop(guards);
                if let Some(refusal) = self.await_durable(ticket) {
                    return Err(format!("replicated record not durable: {refusal:?}"));
                }
            }
        }
        hub.set_applied(seq);
        Ok(())
    }

    /// Admits a candidate through the verifier gate and the incremental
    /// controller. See the module docs for the locking discipline.
    #[allow(clippy::too_many_arguments)] // mirrors the wire arity
    pub fn admit(
        &self,
        req_id: u64,
        src: (u32, u32),
        dst: (u32, u32),
        priority: u32,
        period: u64,
        length: u64,
        deadline: Option<u64>,
    ) -> Response {
        if let Some(redirect) = self.not_leader() {
            return redirect;
        }
        if let Some(sealed) = self.write_sealed() {
            return sealed;
        }
        if self.is_degraded() {
            return Response::error("degraded", "service is read-only after a WAL device error");
        }
        let Some(source) = self.mesh.node_at(&[src.0, src.1]) else {
            return Response::error(
                "bad_coordinate",
                format!("source ({},{}) outside mesh", src.0, src.1),
            );
        };
        let Some(dest) = self.mesh.node_at(&[dst.0, dst.1]) else {
            return Response::error(
                "bad_coordinate",
                format!("destination ({},{}) outside mesh", dst.0, dst.1),
            );
        };
        let deadline = deadline.unwrap_or(period);
        let spec = StreamSpec::new(source, dest, priority, period, length, deadline);

        // Route before taking the lock: the deterministic route depends
        // only on the endpoints, never on the admitted set. A candidate
        // the routing cannot connect is rejected by W004 below without
        // this path ever being used.
        let path = XyRouting.route(&self.mesh, source, dest).ok();

        if self.plane.is_some() {
            return self.admit_sharded(req_id, spec, deadline, path);
        }

        // Optimistic phase: with concurrent validation enabled, the
        // lint and the whole component analysis run under the *shared*
        // lock — admissions whose link-sharing neighborhoods are
        // disjoint validate in parallel; only the commit serializes.
        let mut validated = None;
        if self.optimistic {
            if let Some(path) = path.clone() {
                let inner = self.read();
                if req_id != 0 {
                    if let Some(entry) = inner.dedup.get(&req_id) {
                        if entry.admit {
                            self.metrics.count_replayed();
                        }
                        return Self::replay_dedup(entry, true);
                    }
                }
                let findings =
                    lint_candidate_routed(&self.mesh, &XyRouting, inner.ctl.parts(), &spec);
                if findings.iter().any(rtwc_verifier::Diagnostic::is_error) {
                    return Self::lint_rejection(findings);
                }
                match inner.ctl.validate(spec.clone(), path) {
                    Ok(v) => validated = Some((v, findings)),
                    // A rejection computed under the shared lock is the
                    // serial verdict at this serialization point —
                    // nothing to roll back, answer it directly.
                    Err(e) => return Self::rejection(&e, &inner.handles),
                }
            }
        }

        let mut inner = self.write();

        // Idempotent replay: a retried request id returns the original
        // outcome without touching any state. (Re-checked here even
        // after the optimistic phase: a racing duplicate may have
        // committed between the two locks.)
        if req_id != 0 {
            if let Some(entry) = inner.dedup.get(&req_id) {
                if entry.admit {
                    self.metrics.count_replayed();
                }
                return Self::replay_dedup(entry, true);
            }
        }

        // Commit the optimistic validation if its component is intact;
        // a stale one falls through to the serial path below, which
        // re-lints and re-analyzes against the changed set.
        if let Some((v, warnings)) = validated.take() {
            if let Some(id) = inner.ctl.commit_validated(&v) {
                self.metrics.count_optimistic();
                return self.finish_admit(inner, id, req_id, spec, deadline, warnings);
            }
        }

        // Verifier gate: W0xx rules on the candidate against the
        // admitted set, under the same exclusive lock the admission
        // itself runs under. The lint borrows the controller's own
        // `(spec, path)` parts — no cloning, no re-routing.
        let findings = lint_candidate_routed(&self.mesh, &XyRouting, inner.ctl.parts(), &spec);
        if findings.iter().any(rtwc_verifier::Diagnostic::is_error) {
            return Self::lint_rejection(findings);
        }
        let warnings = findings;

        let Some(path) = path else {
            // W004 catches this above; kept for defense in depth.
            return Response::error("routing", "routing failed");
        };

        match inner.ctl.admit(spec.clone(), path) {
            Ok(id) => self.finish_admit(inner, id, req_id, spec, deadline, warnings),
            Err(e) => Self::rejection(&e, &inner.handles),
        }
    }

    /// Bookkeeping for an admission the controller just accepted (`id`
    /// is its fresh dense id): journal, WAL ticket, dedup window,
    /// snapshot cadence — then release the write lock and acknowledge
    /// once the ticket's batch is durable.
    fn finish_admit(
        &self,
        mut inner: TrackedRwLockWriteGuard<'_, Inner>,
        id: StreamId,
        req_id: u64,
        spec: StreamSpec,
        deadline: u64,
        warnings: Vec<Diagnostic>,
    ) -> Response {
        let handle = inner.next_handle;
        let op = AcceptedOp::Admit { handle, spec };
        // Ticket before acknowledging: if the WAL refuses the record
        // the decision is rolled back and the client is told "not
        // admitted" — an acked op can never be one the log (or a
        // snapshot) does not hold.
        let ticket = match self.persist(req_id, &op) {
            Ok(t) => t,
            Err(refusal) => {
                inner.ctl.remove(id);
                return refusal;
            }
        };
        inner.next_handle += 1;
        inner.handles.push(handle);
        debug_assert_eq!(inner.handles.len() - 1, id.index());
        inner.log.push(Arc::new(op));
        let bound = inner
            .ctl
            .bound(id)
            .value()
            .expect("admitted bound is bounded");
        if req_id != 0 {
            inner.remember(DedupEntry {
                req_id,
                admit: true,
                handle,
                bound,
                deadline,
            });
        }
        self.maybe_snapshot(&mut inner);
        drop(inner);
        // The durability wait runs outside the lock: other writes keep
        // validating and committing while this batch syncs.
        if let Some(refusal) = self.await_durable(ticket) {
            return refusal;
        }
        self.metrics.count_admitted();
        Response::Admitted {
            id: handle,
            bound,
            deadline,
            slack: deadline - bound,
            warnings,
        }
    }

    /// Write-locks every shard in `touched` (canonical ascending
    /// order) and scans the candidate's link-sharing neighborhood to
    /// its fixpoint, re-acquiring from scratch with a widened shard
    /// set whenever the closure escapes the held one. Returns the
    /// guards, the final shard set, and the complete neighborhood.
    fn converge_shards<'a>(
        plane: &'a ShardPlane,
        seed: &[LinkId],
        mut touched: Vec<ShardId>,
    ) -> (
        Vec<TrackedRwLockWriteGuard<'a, RegionShard>>,
        Vec<ShardId>,
        rtwc_core::Neighborhood,
    ) {
        loop {
            let guards = plane.write_set(&touched);
            let held: Vec<(ShardId, &RegionShard)> = touched
                .iter()
                .zip(guards.iter())
                .map(|(&s, g)| (s, &**g))
                .collect();
            let nb = scan_neighborhood(plane.map(), &held, seed);
            drop(held);
            if nb.missing.is_empty() {
                return (guards, touched, nb);
            }
            touched.extend(nb.missing.iter().copied());
            touched.sort_unstable();
            touched.dedup();
        }
    }

    /// The verifier gate for the sharded path, producing exactly the
    /// findings the monolithic [`lint_candidate_routed`] would: the
    /// candidate id is its would-be dense id, duplicate detection runs
    /// over the full spec table, and the pairwise rules run over the
    /// neighborhood members (which contain every admitted stream
    /// sharing a channel with the candidate) with their dense ids.
    fn lint_sharded(
        mesh: &Mesh,
        inner: &Inner,
        members: &[NeighborMember],
        spec: &StreamSpec,
    ) -> Vec<Diagnostic> {
        let cand_id = inner.handles.len() as u32;
        let duplicate_of = inner.specs.iter().position(|s| s == spec).map(|i| i as u32);
        let indexed: Vec<(u32, &StreamSpec, &Path)> = members
            .iter()
            .map(|m| {
                let dense = inner
                    .handles
                    .binary_search(&m.key)
                    .expect("member handle is live") as u32;
                (dense, &m.spec, &m.path)
            })
            .collect();
        lint_candidate_indexed(mesh, &XyRouting, cand_id, duplicate_of, &indexed, spec)
    }

    /// Translates a plane rejection (blockers/victims by stable
    /// handle) into the [`AdmissionError`] shape, so the wire response
    /// is byte-identical to the monolithic path's.
    fn keyed_to_dense(handles: &[u64], e: KeyedRejection) -> AdmissionError {
        let dense = |keys: Vec<u64>| -> Vec<StreamId> {
            keys.into_iter()
                .map(
                    |k| StreamId(handles.binary_search(&k).expect("blocker handle is live") as u32),
                )
                .collect()
        };
        match e {
            KeyedRejection::CandidateInfeasible {
                bound,
                source,
                dest,
                blocked_by,
            } => AdmissionError::CandidateInfeasible {
                bound,
                source,
                dest,
                blocked_by: dense(blocked_by),
            },
            KeyedRejection::BreaksExisting {
                source,
                dest,
                victims,
            } => AdmissionError::BreaksExisting {
                source,
                dest,
                victims: dense(victims),
            },
            KeyedRejection::Invalid(msg) => AdmissionError::Invalid(msg),
        }
    }

    /// `ADMIT` over the sharded plane: two-phase across the shards the
    /// route touches. The analysis runs with only the shard guards
    /// held; the service lock is taken afterwards just for the
    /// decision's bookkeeping — and the shard guards are held *across*
    /// that bookkeeping, so journal order equals analysis order for
    /// every pair of conflicting operations and a serial replay of the
    /// journal reproduces this exact state.
    fn admit_sharded(
        &self,
        req_id: u64,
        spec: StreamSpec,
        deadline: u64,
        path: Option<Path>,
    ) -> Response {
        let plane = self.plane.as_ref().expect("sharded path");
        // Cheap dedup precheck before any shard lock; the
        // authoritative recheck runs under the service lock below.
        if req_id != 0 {
            let inner = self.read();
            if let Some(entry) = inner.dedup.get(&req_id) {
                if entry.admit {
                    self.metrics.count_replayed();
                }
                return Self::replay_dedup(entry, true);
            }
        }
        // An unroutable candidate touches no shard: lint it against
        // the spec table (W003/W004 are error severity) and refuse.
        let Some(path) = path else {
            let inner = self.read();
            let findings = Self::lint_sharded(&self.mesh, &inner, &[], &spec);
            if findings.iter().any(Diagnostic::is_error) {
                return Self::lint_rejection(findings);
            }
            return Response::error("routing", "routing failed");
        };
        // Error gate before any shard lock, mirroring the optimistic
        // path's shared-lock pre-lint. Error findings (W002-W007) are
        // structural properties of the candidate alone, so they cannot
        // appear or vanish between here and the authoritative re-lint
        // below — and a candidate that passes here is sane enough for
        // `plan_admit` (in particular it traverses at least one
        // channel, which the analysis requires).
        {
            let inner = self.read();
            let findings = Self::lint_sharded(&self.mesh, &inner, &[], &spec);
            if findings.iter().any(Diagnostic::is_error) {
                return Self::lint_rejection(findings);
            }
        }
        let seed: Vec<LinkId> = path.sorted_links().to_vec();
        let insert_shards = plane.map().shards_of(seed.iter().copied());
        let cross = insert_shards.len() > 1;
        let (mut guards, touched, nb) = Self::converge_shards(plane, &seed, insert_shards.clone());
        // Plan with only the shard guards held: the neighborhood
        // cannot change under them, and disjoint admissions keep
        // analyzing concurrently.
        let plan = plan_admit(&nb.members, &spec, &path);
        let mut inner = self.write();
        if req_id != 0 {
            if let Some(entry) = inner.dedup.get(&req_id) {
                if entry.admit {
                    self.metrics.count_replayed();
                }
                return Self::replay_dedup(entry, true);
            }
        }
        let findings = Self::lint_sharded(&self.mesh, &inner, &nb.members, &spec);
        if findings.iter().any(Diagnostic::is_error) {
            return Self::lint_rejection(findings);
        }
        let warnings = findings;
        let plan = match plan {
            Ok(plan) => plan,
            Err(e) => {
                if cross {
                    plane.count_cross_abort();
                }
                return Self::rejection(&Self::keyed_to_dense(&inner.handles, e), &inner.handles);
            }
        };
        plane.add_recomputations(plan.recomputed);
        let handle = inner.next_handle;
        let op = AcceptedOp::Admit {
            handle,
            spec: spec.clone(),
        };
        // Ticket before acknowledging, as on the monolithic path —
        // but nothing has been applied yet, so a refused append
        // leaves every shard untouched.
        let ticket = match self.persist(req_id, &op) {
            Ok(t) => t,
            Err(refusal) => return refusal,
        };
        inner.next_handle += 1;
        inner.handles.push(handle);
        inner.specs.push(spec.clone());
        inner.bounds.push(plan.candidate_bound);
        inner.log.push(Arc::new(op));
        if req_id != 0 {
            inner.remember(DedupEntry {
                req_id,
                admit: true,
                handle,
                bound: plan.candidate_bound,
                deadline,
            });
        }
        for &sid in &insert_shards {
            let pos = touched
                .binary_search(&sid)
                .expect("insert shards are locked");
            guards[pos].insert_member(
                handle,
                spec.clone(),
                path.clone(),
                DelayBound::Bounded(plan.candidate_bound),
                cross,
            );
        }
        for &(key, bound) in &plan.updates {
            let member = nb
                .members
                .iter()
                .find(|m| m.key == key)
                .expect("update targets a neighborhood member");
            let dense = inner
                .handles
                .binary_search(&key)
                .expect("member handle is live");
            inner.bounds[dense] = bound.value().expect("surviving member bounds are bounded");
            for sid in plane.map().shards_of(member.path.links().iter().copied()) {
                let pos = touched
                    .binary_search(&sid)
                    .expect("neighborhood shards are locked");
                guards[pos].set_member_bound(key, bound);
            }
        }
        self.maybe_snapshot(&mut inner);
        drop(inner);
        drop(guards);
        if let Some(refusal) = self.await_durable(ticket) {
            return refusal;
        }
        self.metrics.count_admitted();
        if cross {
            plane.count_cross_admit();
        }
        Response::Admitted {
            id: handle,
            bound: plan.candidate_bound,
            deadline,
            slack: deadline - plan.candidate_bound,
            warnings,
        }
    }

    /// `REMOVE` over the sharded plane. The victim's route (and so its
    /// owner shards) is re-derived deterministically from the spec
    /// table; the downstream recomputation then runs under the shard
    /// guards exactly as on the admit path.
    fn remove_sharded(&self, req_id: u64, handle: u64) -> Response {
        let plane = self.plane.as_ref().expect("sharded path");
        let path = {
            let inner = self.read();
            if req_id != 0 {
                if let Some(entry) = inner.dedup.get(&req_id) {
                    if !entry.admit {
                        self.metrics.count_replayed();
                    }
                    return Self::replay_dedup(entry, false);
                }
            }
            let Ok(idx) = inner.handles.binary_search(&handle) else {
                return Response::error("unknown_id", format!("unknown stream id {handle}"));
            };
            let spec = &inner.specs[idx];
            match XyRouting.route(&self.mesh, spec.source, spec.dest) {
                Ok(p) => p,
                Err(e) => return Response::error("routing", format!("routing failed: {e}")),
            }
        };
        let seed: Vec<LinkId> = path.sorted_links().to_vec();
        let owners = plane.map().shards_of(seed.iter().copied());
        let (mut guards, touched, nb) = Self::converge_shards(plane, &seed, owners.clone());
        // A racing client may have removed the victim between the
        // lookup above and the shard locks; under its (locked) owner
        // shards, residency is authoritative.
        if !nb.members.iter().any(|m| m.key == handle) {
            drop(guards);
            let inner = self.read();
            if req_id != 0 {
                if let Some(entry) = inner.dedup.get(&req_id) {
                    if !entry.admit {
                        self.metrics.count_replayed();
                    }
                    return Self::replay_dedup(entry, false);
                }
            }
            return Response::error("unknown_id", format!("unknown stream id {handle}"));
        }
        // Plan with only the shard guards held, as on the admit path.
        let plan = plan_remove(&nb.members, handle);
        let mut inner = self.write();
        if req_id != 0 {
            if let Some(entry) = inner.dedup.get(&req_id) {
                if !entry.admit {
                    self.metrics.count_replayed();
                }
                return Self::replay_dedup(entry, false);
            }
        }
        let idx = inner
            .handles
            .binary_search(&handle)
            .expect("victim is resident under its locked owner shards");
        let op = AcceptedOp::Remove { handle };
        let ticket = match self.persist(req_id, &op) {
            Ok(t) => t,
            Err(refusal) => return refusal,
        };
        plane.add_recomputations(plan.recomputed);
        inner.handles.remove(idx);
        inner.specs.remove(idx);
        inner.bounds.remove(idx);
        inner.log.push(Arc::new(op));
        if req_id != 0 {
            inner.remember(DedupEntry {
                req_id,
                admit: false,
                handle,
                bound: 0,
                deadline: 0,
            });
        }
        for &sid in &owners {
            let pos = touched
                .binary_search(&sid)
                .expect("owner shards are locked");
            guards[pos].remove_member(handle);
        }
        for &(key, bound) in &plan.updates {
            let member = nb
                .members
                .iter()
                .find(|m| m.key == key)
                .expect("update targets a neighborhood member");
            let dense = inner
                .handles
                .binary_search(&key)
                .expect("member handle is live");
            inner.bounds[dense] = bound.value().expect("surviving member bounds are bounded");
            for sid in plane.map().shards_of(member.path.links().iter().copied()) {
                let pos = touched
                    .binary_search(&sid)
                    .expect("neighborhood shards are locked");
                guards[pos].set_member_bound(key, bound);
            }
        }
        self.maybe_snapshot(&mut inner);
        drop(inner);
        drop(guards);
        if let Some(refusal) = self.await_durable(ticket) {
            return refusal;
        }
        self.metrics.count_removed();
        Response::Removed { id: handle }
    }

    fn lint_rejection(findings: Vec<Diagnostic>) -> Response {
        let errors = findings.iter().filter(|d| d.is_error()).count();
        Response::Rejected {
            reason: RejectReason::Lint,
            message: format!("candidate fails {errors} verifier rule(s)"),
            bound: None,
            blocked_by: Vec::new(),
            victims: Vec::new(),
            diagnostics: findings,
        }
    }

    /// Maps an analysis rejection onto the wire shape, translating the
    /// controller's dense ids into stable handles.
    fn rejection(e: &AdmissionError, handles: &[u64]) -> Response {
        let to_handles =
            |ids: &[StreamId]| -> Vec<u64> { ids.iter().map(|id| handles[id.index()]).collect() };
        let (reason, bound, blocked_by, victims) = match e {
            AdmissionError::CandidateInfeasible {
                bound, blocked_by, ..
            } => (
                RejectReason::CandidateInfeasible,
                bound.value(),
                to_handles(blocked_by),
                Vec::new(),
            ),
            AdmissionError::BreaksExisting { victims, .. } => (
                RejectReason::BreaksExisting,
                None,
                Vec::new(),
                to_handles(victims),
            ),
            AdmissionError::Invalid(_) => (RejectReason::Invalid, None, Vec::new(), Vec::new()),
        };
        Response::Rejected {
            reason,
            message: e.to_string(),
            bound,
            blocked_by,
            victims,
            diagnostics: Vec::new(),
        }
    }

    fn remove(&self, req_id: u64, handle: u64) -> Response {
        if let Some(redirect) = self.not_leader() {
            return redirect;
        }
        if let Some(sealed) = self.write_sealed() {
            return sealed;
        }
        if self.is_degraded() {
            return Response::error("degraded", "service is read-only after a WAL device error");
        }
        if self.plane.is_some() {
            return self.remove_sharded(req_id, handle);
        }
        let mut inner = self.write();
        if req_id != 0 {
            if let Some(entry) = inner.dedup.get(&req_id) {
                if !entry.admit {
                    self.metrics.count_replayed();
                }
                return Self::replay_dedup(entry, false);
            }
        }
        let Some(idx) = inner.handles.iter().position(|&h| h == handle) else {
            return Response::error("unknown_id", format!("unknown stream id {handle}"));
        };
        let op = AcceptedOp::Remove { handle };
        // Ticket-before-ack, as in `admit` — but here nothing has been
        // applied yet, so a refused append leaves the state untouched.
        let ticket = match self.persist(req_id, &op) {
            Ok(t) => t,
            Err(refusal) => return refusal,
        };
        inner.ctl.remove(StreamId(idx as u32));
        inner.handles.remove(idx);
        inner.log.push(Arc::new(op));
        if req_id != 0 {
            inner.remember(DedupEntry {
                req_id,
                admit: false,
                handle,
                bound: 0,
                deadline: 0,
            });
        }
        self.maybe_snapshot(&mut inner);
        drop(inner);
        if let Some(refusal) = self.await_durable(ticket) {
            return refusal;
        }
        self.metrics.count_removed();
        Response::Removed { id: handle }
    }

    /// Buffers `op` into the group-commit WAL, if one is attached,
    /// returning the durability ticket to pass to
    /// [`AdmissionService::await_durable`] after the write lock drops.
    /// `Err(response)` is the refusal to send instead of an
    /// acknowledgement. No fsync runs on this path — the write lock is
    /// held here; group syncs run in `await_durable` after the lock
    /// drops and interval syncs on the server's flusher thread.
    #[allow(clippy::result_large_err)] // the Err is the refusal sent on the wire
    fn persist(&self, req_id: u64, op: &AcceptedOp) -> Result<Option<u64>, Response> {
        let Some(d) = self.durability.as_ref() else {
            return Ok(None);
        };
        match d.wal.append(req_id, op) {
            Ok(ticket) => Ok(Some(ticket)),
            Err(e) => {
                self.degraded.store(true, Ordering::SeqCst);
                Err(Response::error(
                    "wal",
                    format!("not applied: WAL write failed ({e}); service is now read-only"),
                ))
            }
        }
    }

    /// Blocks until `ticket`'s batch is durable (a no-op without a
    /// ticket or under `--fsync interval`/`never`, whose syncs run on
    /// the server's background flusher). `Some(response)` is
    /// the refusal to send instead of an acknowledgement: the whole
    /// batch was rolled back off the log and the service is degraded —
    /// the op stays applied in memory, unacknowledged, until restart.
    fn await_durable(&self, ticket: Option<u64>) -> Option<Response> {
        let ticket = ticket?;
        let d = self.durability.as_ref()?;
        match d.wal.wait_durable(ticket) {
            Ok(()) => None,
            Err(e) => {
                self.degraded.store(true, Ordering::SeqCst);
                Some(Response::error(
                    "wal",
                    format!("not acknowledged: WAL sync failed ({e}); service is now read-only"),
                ))
            }
        }
    }

    /// Rebuilds the original response for a replayed request id.
    /// `want_admit` is the kind of the *retried* request; reusing an id
    /// across kinds is a client bug and reported as such.
    fn replay_dedup(entry: &DedupEntry, want_admit: bool) -> Response {
        if entry.admit != want_admit {
            return Response::error(
                "req_id_reuse",
                format!(
                    "request id {} was used for a different operation",
                    entry.req_id
                ),
            );
        }
        if entry.admit {
            Response::Admitted {
                id: entry.handle,
                bound: entry.bound,
                deadline: entry.deadline,
                slack: entry.deadline - entry.bound,
                warnings: Vec::new(),
            }
        } else {
            Response::Removed { id: entry.handle }
        }
    }

    /// Writes a snapshot and compacts the WAL once it has grown past
    /// the configured record count. Failures are deliberately
    /// non-fatal: the WAL still holds every record, so recovery loses
    /// nothing — compaction is just deferred to the next trigger.
    fn maybe_snapshot(&self, inner: &mut Inner) {
        let due = match self.durability.as_ref() {
            Some(d) => d.snapshot_every > 0 && d.wal.records_since_reset() >= d.snapshot_every,
            None => false,
        };
        if !due {
            return;
        }
        let streams: Vec<(u64, StreamSpec)> = if self.plane.is_some() {
            inner
                .handles
                .iter()
                .zip(&inner.specs)
                .map(|(&h, spec)| (h, spec.clone()))
                .collect()
        } else {
            inner
                .handles
                .iter()
                .zip(inner.ctl.parts())
                .map(|(&h, (spec, _))| (h, spec.clone()))
                .collect()
        };
        let dedup: Vec<DedupEntry> = inner
            .dedup_order
            .iter()
            .filter_map(|id| inner.dedup.get(id).copied())
            .collect();
        let d = self.durability.as_ref().expect("durability checked above");
        let data = SnapshotData {
            seq: d.wal.seq(),
            next_handle: inner.next_handle,
            streams,
            dedup,
        };
        if write_snapshot(&d.dir, &data).is_ok() {
            // The fsynced snapshot covers every op ticketed so far
            // (they were all applied under this write lock before their
            // durability waits), so a successful reset releases every
            // outstanding ticket. A failed reset leaves WAL records the
            // snapshot already covers; recovery skips them by sequence
            // number.
            let _ = d.wal.reset(data.seq);
        }
    }

    fn query(&self, handle: u64) -> Response {
        let inner = self.read();
        let Some(idx) = inner.handles.iter().position(|&h| h == handle) else {
            return Response::error("unknown_id", format!("unknown stream id {handle}"));
        };
        let (spec, bound) = if self.plane.is_some() {
            (&inner.specs[idx], inner.bounds[idx])
        } else {
            (
                &inner.ctl.parts()[idx].0,
                inner
                    .ctl
                    .bound(StreamId(idx as u32))
                    .value()
                    .expect("admitted bound is bounded"),
            )
        };
        Response::Query {
            id: handle,
            bound,
            deadline: spec.deadline,
            slack: spec.deadline - bound,
            priority: spec.priority,
            period: spec.period,
            length: spec.max_length,
        }
    }

    fn coords(&self, node: wormnet_topology::NodeId) -> (u32, u32) {
        let c = self.mesh.coord(node);
        (c.get(0), c.get(1))
    }

    fn snapshot(&self) -> Response {
        let inner = self.read();
        let streams = if self.plane.is_some() {
            inner
                .handles
                .iter()
                .zip(&inner.specs)
                .zip(&inner.bounds)
                .map(|((&handle, spec), &bound)| SnapshotStream {
                    id: handle,
                    src: self.coords(spec.source),
                    dst: self.coords(spec.dest),
                    priority: spec.priority,
                    period: spec.period,
                    length: spec.max_length,
                    deadline: spec.deadline,
                    bound: DelayBound::Bounded(bound),
                })
                .collect()
        } else {
            inner
                .ctl
                .snapshot()
                .zip(&inner.handles)
                .map(|((_, spec, _, bound), &handle)| SnapshotStream {
                    id: handle,
                    src: self.coords(spec.source),
                    dst: self.coords(spec.dest),
                    priority: spec.priority,
                    period: spec.period,
                    length: spec.max_length,
                    deadline: spec.deadline,
                    bound,
                })
                .collect()
        };
        let dims = self.mesh.dims();
        Response::Snapshot {
            mesh: (dims[0], dims[1]),
            streams,
        }
    }

    fn stats(&self) -> Response {
        let m = self.metrics.snapshot();
        let (streams, recomputations) = {
            let inner = self.read();
            match &self.plane {
                Some(plane) => (inner.handles.len(), plane.recomputations()),
                None => inner.ctl.stats(),
            }
        };
        // Shard gauges are collected with no other lock held: shard
        // locks rank below the service lock.
        let shards = self.plane.as_ref().map(|plane| {
            let gauges = plane.gauges();
            ShardsReport {
                count: plane.shard_count() as u64,
                cross_admits: plane.cross_admits(),
                cross_aborts: plane.cross_aborts(),
                index_bytes: gauges.iter().map(|g| g.index_bytes).sum(),
                reclaimable_bytes: gauges.iter().map(|g| g.reclaimable_bytes).sum(),
                per_shard: gauges
                    .iter()
                    .map(|g| ShardStats {
                        streams: g.streams,
                        cross: g.cross,
                        index_bytes: g.index_bytes,
                    })
                    .collect(),
            }
        });
        let repl = self.repl.get().map(|hub| {
            let synced = self.wal_synced_seq();
            hub.report(synced, self.ship_frontier().unwrap_or(synced))
        });
        Response::Stats(Box::new(StatsReport {
            counts: m.counts,
            admitted: m.admitted,
            rejected: m.rejected,
            removed: m.removed,
            replayed: m.replayed,
            errors: m.errors,
            shed: m.shed,
            streams: streams as u64,
            recomputations,
            optimistic: m.optimistic,
            latency_count: m.latency_count,
            p50_us: m.p50_us,
            p90_us: m.p90_us,
            p99_us: m.p99_us,
            max_us: m.max_us,
            queue_count: m.queue_count,
            queue_p50_us: m.queue_p50_us,
            queue_p90_us: m.queue_p90_us,
            queue_p99_us: m.queue_p99_us,
            queue_max_us: m.queue_max_us,
            service_p50_us: m.service_p50_us,
            service_p90_us: m.service_p90_us,
            service_p99_us: m.service_p99_us,
            service_max_us: m.service_max_us,
            shards,
            repl,
        }))
    }

    /// Re-derives every admitted stream's bound with a fresh offline
    /// `determine_feasibility` over the current set and compares it to
    /// the served (cached) bound, bit for bit. Returns the number of
    /// streams audited, or a description of the first mismatch.
    pub fn audit(&self) -> Result<usize, String> {
        let inner = self.read();
        if self.plane.is_some() {
            if inner.handles.is_empty() {
                return Ok(0);
            }
            // Sharded mode: re-route the spec table deterministically
            // and compare the served bounds against a fresh offline
            // analysis, exactly as below.
            let mut parts = Vec::with_capacity(inner.specs.len());
            for spec in &inner.specs {
                let path = XyRouting
                    .route(&self.mesh, spec.source, spec.dest)
                    .map_err(|e| format!("admitted stream no longer routes: {e}"))?;
                parts.push((spec.clone(), path));
            }
            let set = StreamSet::from_parts(parts)
                .map_err(|e| format!("admitted set no longer resolves: {e}"))?;
            let fresh = determine_feasibility(&set);
            for id in set.ids() {
                let served = DelayBound::Bounded(inner.bounds[id.index()]);
                if fresh.bound(id) != served {
                    return Err(format!(
                        "stream id {} (dense {id}): served bound {served} != offline bound {}",
                        inner.handles[id.index()],
                        fresh.bound(id)
                    ));
                }
            }
            return Ok(set.len());
        }
        if inner.ctl.is_empty() {
            return Ok(0);
        }
        let set = StreamSet::from_parts(inner.ctl.parts().to_vec())
            .map_err(|e| format!("admitted set no longer resolves: {e}"))?;
        let fresh = determine_feasibility(&set);
        for id in set.ids() {
            let cached = inner.ctl.bound(id);
            if fresh.bound(id) != cached {
                return Err(format!(
                    "stream id {} (dense {id}): served bound {cached} != offline bound {}",
                    inner.handles[id.index()],
                    fresh.bound(id)
                ));
            }
        }
        Ok(set.len())
    }
}

/// Serially replays an accepted-operation log against a fresh
/// controller, routing with the same deterministic X-Y algorithm the
/// service uses. Every operation in the log was accepted live, so the
/// replay must accept it too; a divergence is a serializability bug.
pub fn replay(mesh: &Mesh, ops: &[Arc<AcceptedOp>]) -> Result<AdmissionController, String> {
    let mut ctl = AdmissionController::new();
    let mut handles: Vec<u64> = Vec::new();
    for op in ops {
        match op.as_ref() {
            AcceptedOp::Admit { handle, spec } => {
                let path = XyRouting
                    .route(mesh, spec.source, spec.dest)
                    .map_err(|e| format!("replay admit {handle}: routing failed: {e}"))?;
                ctl.admit(spec.clone(), path)
                    .map_err(|e| format!("replay admit {handle} refused: {e}"))?;
                handles.push(*handle);
            }
            AcceptedOp::Remove { handle } => {
                let idx = handles
                    .iter()
                    .position(|h| h == handle)
                    .ok_or_else(|| format!("replay remove {handle}: unknown handle"))?;
                ctl.remove(StreamId(idx as u32));
                handles.remove(idx);
            }
        }
    }
    Ok(ctl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtwc_core::DelayBound;

    fn service() -> AdmissionService {
        AdmissionService::new(Mesh::mesh2d(10, 10))
    }

    fn admit_line(svc: &AdmissionService, line: &str) -> Response {
        let (r, _) = svc.dispatch_line(line);
        r
    }

    #[test]
    fn admit_query_remove_round_trip() {
        let svc = service();
        let r = admit_line(&svc, "ADMIT 0,0 5,0 2 50 4");
        let Response::Admitted {
            id, bound, slack, ..
        } = r
        else {
            panic!("{r:?}");
        };
        assert_eq!(id, 0);
        assert_eq!(bound + slack, 50);
        let r = admit_line(&svc, "QUERY 0");
        assert!(
            matches!(r, Response::Query { id: 0, bound: b, .. } if b == bound),
            "{r:?}"
        );
        let r = admit_line(&svc, "REMOVE 0");
        assert_eq!(r, Response::Removed { id: 0 });
        assert_eq!(svc.admitted_count(), 0);
        let r = admit_line(&svc, "QUERY 0");
        assert!(matches!(r, Response::Error { .. }), "{r:?}");
    }

    #[test]
    fn handles_stay_stable_across_removals() {
        let svc = service();
        // Three streams on separate rows.
        for y in 0..3 {
            let r = admit_line(&svc, &format!("ADMIT 0,{y} 5,{y} 1 50 4"));
            assert!(matches!(r, Response::Admitted { .. }), "{r:?}");
        }
        // Removing id 1 must not disturb ids 0 and 2 (the controller's
        // dense ids shift; the service's stable ids must not).
        admit_line(&svc, "REMOVE 1");
        for id in [0u64, 2] {
            let r = admit_line(&svc, &format!("QUERY {id}"));
            assert!(
                matches!(r, Response::Query { id: got, .. } if got == id),
                "{r:?}"
            );
        }
        // A fresh admit gets a fresh id, not a recycled one.
        let r = admit_line(&svc, "ADMIT 0,4 5,4 1 50 4");
        assert!(matches!(r, Response::Admitted { id: 3, .. }), "{r:?}");
    }

    #[test]
    fn verifier_gate_rejects_before_the_controller() {
        let svc = service();
        // Self-delivery: W003 fires, controller untouched.
        let r = admit_line(&svc, "ADMIT 2,2 2,2 1 50 4");
        let Response::Rejected {
            reason,
            diagnostics,
            ..
        } = r
        else {
            panic!("{r:?}");
        };
        assert_eq!(reason, RejectReason::Lint);
        assert!(
            diagnostics.iter().any(|d| d.code == "W003"),
            "{diagnostics:?}"
        );
        assert_eq!(svc.admitted_count(), 0);
        assert!(svc.ops().is_empty(), "rejected admit must not be logged");
    }

    #[test]
    fn analysis_rejection_names_the_blockers() {
        let svc = service();
        let r = admit_line(&svc, "ADMIT 0,0 5,0 2 20 10");
        assert!(matches!(r, Response::Admitted { .. }), "{r:?}");
        // Lower priority, same row, deadline too tight under blocking.
        let r = admit_line(&svc, "ADMIT 1,0 6,0 1 100 8 12");
        let Response::Rejected {
            reason, blocked_by, ..
        } = r
        else {
            panic!("{r:?}");
        };
        assert_eq!(reason, RejectReason::CandidateInfeasible);
        assert_eq!(blocked_by, vec![0], "names the admitted blocker");
    }

    #[test]
    fn breaks_existing_rejection_names_the_victims() {
        let svc = service();
        let r = admit_line(&svc, "ADMIT 0,0 5,0 1 100 8 14");
        assert!(matches!(r, Response::Admitted { .. }), "{r:?}");
        // High-priority heavyweight on the same row.
        let r = admit_line(&svc, "ADMIT 1,0 6,0 2 30 20");
        let Response::Rejected {
            reason, victims, ..
        } = r
        else {
            panic!("{r:?}");
        };
        assert_eq!(reason, RejectReason::BreaksExisting);
        assert_eq!(victims, vec![0]);
        // Victim ids are stable ids, still queryable.
        let q = admit_line(&svc, "QUERY 0");
        assert!(matches!(q, Response::Query { id: 0, .. }), "{q:?}");
    }

    #[test]
    fn snapshot_reflects_the_admitted_set() {
        let svc = service();
        admit_line(&svc, "ADMIT 0,0 5,0 2 50 4");
        admit_line(&svc, "ADMIT 0,1 5,1 1 60 4 55");
        let r = admit_line(&svc, "SNAPSHOT");
        let Response::Snapshot { mesh, streams } = r else {
            panic!("{r:?}");
        };
        assert_eq!(mesh, (10, 10));
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].src, (0, 0));
        assert_eq!(streams[1].deadline, 55);
        assert!(streams.iter().all(|s| s.bound.is_bounded()));
    }

    #[test]
    fn stats_count_requests_and_outcomes() {
        let svc = service();
        admit_line(&svc, "ADMIT 0,0 5,0 2 50 4");
        admit_line(&svc, "ADMIT 2,2 2,2 1 50 4"); // lint-rejected
        admit_line(&svc, "QUERY 0");
        admit_line(&svc, "QUERY 99"); // error
        admit_line(&svc, "no such verb"); // malformed
        let r = admit_line(&svc, "STATS");
        let Response::Stats(s) = r else {
            panic!("{r:?}")
        };
        assert_eq!(s.counts[RequestKind::Admit as usize], 2);
        assert_eq!(s.counts[RequestKind::Query as usize], 2);
        assert_eq!(s.counts[RequestKind::Malformed as usize], 1);
        assert_eq!(s.admitted, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.errors, 2);
        assert_eq!(s.streams, 1);
        assert!(s.latency_count >= 5);
    }

    #[test]
    fn audit_matches_offline_analysis() {
        let svc = service();
        for (line, want_ok) in [
            ("ADMIT 0,0 5,0 3 60 4", true),
            ("ADMIT 1,0 6,0 2 90 6", true),
            ("ADMIT 0,2 7,2 3 70 8", true),
            ("ADMIT 2,0 2,5 1 120 10", true),
            ("ADMIT 1,2 6,2 1 150 6", true),
        ] {
            let r = admit_line(&svc, line);
            assert_eq!(matches!(r, Response::Admitted { .. }), want_ok, "{r:?}");
        }
        admit_line(&svc, "REMOVE 2");
        assert_eq!(svc.audit().unwrap(), 4);
    }

    #[test]
    fn replay_reproduces_the_live_state() {
        let svc = service();
        admit_line(&svc, "ADMIT 0,0 5,0 2 40 10");
        admit_line(&svc, "ADMIT 1,0 6,0 1 100 4");
        admit_line(&svc, "REMOVE 0");
        admit_line(&svc, "ADMIT 0,3 5,3 1 50 4");
        let replayed = replay(svc.mesh(), &svc.ops()).unwrap();
        let live: Vec<(u64, u64)> = svc.bounds_by_handle();
        assert_eq!(replayed.len(), live.len());
        for (i, &(_, bound)) in live.iter().enumerate() {
            assert_eq!(
                replayed.bound(StreamId(i as u32)),
                DelayBound::Bounded(bound)
            );
        }
    }

    #[test]
    fn follower_redirects_writes_and_serves_reads() {
        let svc = service();
        svc.attach_repl(Arc::new(ReplHub::follower("10.0.0.1:7000")));
        let r = admit_line(&svc, "ADMIT 0,0 5,0 2 50 4");
        let Response::Error { code, message } = r else {
            panic!("{r:?}");
        };
        assert_eq!(code, "not_leader");
        assert!(message.contains("10.0.0.1:7000"), "{message}");
        let r = admit_line(&svc, "REMOVE 0");
        assert!(
            matches!(
                r,
                Response::Error {
                    code: "not_leader",
                    ..
                }
            ),
            "{r:?}"
        );
        // Reads are exactly what a warm standby is for.
        assert!(matches!(
            admit_line(&svc, "SNAPSHOT"),
            Response::Snapshot { .. }
        ));
        let r = admit_line(&svc, "STATS");
        let Response::Stats(s) = r else {
            panic!("{r:?}")
        };
        let repl = s.repl.expect("replication gauges present");
        assert_eq!(repl.role, "follower");
        assert_eq!(repl.applied_seq, Some(0));
    }

    #[test]
    fn promotion_flips_a_follower_into_a_serving_leader() {
        let svc = service();
        svc.attach_repl(Arc::new(ReplHub::follower("old:1")));
        let r = admit_line(&svc, "PROMOTE");
        let Response::Promoted {
            epoch,
            streams,
            audited,
        } = r
        else {
            panic!("{r:?}");
        };
        assert_eq!(epoch, 2);
        assert_eq!(streams, 0);
        assert!(audited);
        // Writes flow now; a second PROMOTE is refused.
        let r = admit_line(&svc, "ADMIT 0,0 5,0 2 50 4");
        assert!(matches!(r, Response::Admitted { .. }), "{r:?}");
        let r = admit_line(&svc, "PROMOTE");
        assert!(
            matches!(
                r,
                Response::Error {
                    code: "already_leader",
                    ..
                }
            ),
            "{r:?}"
        );
    }

    #[test]
    fn replicated_frames_apply_exactly_once_by_seq() {
        let svc = service();
        let hub = Arc::new(ReplHub::follower("leader:1"));
        svc.attach_repl(Arc::clone(&hub));
        let mesh = Mesh::mesh2d(10, 10);
        let spec = StreamSpec::new(
            mesh.node_at(&[0, 0]).unwrap(),
            mesh.node_at(&[5, 0]).unwrap(),
            2,
            50,
            4,
            50,
        );
        let admit = AcceptedOp::Admit {
            handle: 0,
            spec: spec.clone(),
        };
        svc.apply_replicated(1, 11, &admit).unwrap();
        assert_eq!(svc.admitted_count(), 1);
        assert_eq!(hub.applied_seq(), 1);

        // Duplicate delivery (same seq): idempotent no-op.
        svc.apply_replicated(1, 11, &admit).unwrap();
        assert_eq!(svc.admitted_count(), 1);
        assert_eq!(svc.ops().len(), 1, "duplicate must not re-journal");

        // A gap is refused so the session reconnects and re-requests.
        let admit2 = AcceptedOp::Admit {
            handle: 1,
            spec: StreamSpec::new(
                mesh.node_at(&[0, 1]).unwrap(),
                mesh.node_at(&[5, 1]).unwrap(),
                1,
                60,
                4,
                60,
            ),
        };
        let err = svc.apply_replicated(5, 0, &admit2).unwrap_err();
        assert!(err.contains("gap"), "{err}");
        assert_eq!(svc.admitted_count(), 1);

        svc.apply_replicated(2, 0, &admit2).unwrap();
        svc.apply_replicated(3, 12, &AcceptedOp::Remove { handle: 0 })
            .unwrap();
        assert_eq!(svc.admitted_count(), 1);
        assert_eq!(hub.applied_seq(), 3);

        // Exactly-once across failover: after promotion, a client
        // retrying the replicated request ids gets the original
        // outcomes from the dedup window, not fresh state changes.
        assert!(matches!(svc.promote(), Response::Promoted { .. }));
        let r = admit_line(&svc, "@11 ADMIT 0,0 5,0 2 50 4");
        assert!(
            matches!(r, Response::Admitted { id: 0, .. }),
            "retry must replay the original admission: {r:?}"
        );
        let r = admit_line(&svc, "@12 REMOVE 0");
        assert!(matches!(r, Response::Removed { id: 0 }), "{r:?}");
        assert_eq!(svc.admitted_count(), 1, "replays must not change state");

        // Once promoted, replicated frames are refused (stale leader).
        let err = svc
            .apply_replicated(4, 0, &AcceptedOp::Remove { handle: 1 })
            .unwrap_err();
        assert!(err.contains("not a follower"), "{err}");
    }

    #[test]
    fn duplicate_admit_is_lint_warned_not_blocked() {
        let svc = service();
        admit_line(&svc, "ADMIT 0,0 5,0 2 50 4");
        // Byte-identical duplicate: W001 is a warning, so the paper's
        // model admits it (both instances are analyzable) but the
        // response surfaces the finding.
        let r = admit_line(&svc, "ADMIT 0,0 5,0 2 50 4");
        let Response::Admitted { warnings, .. } = r else {
            panic!("{r:?}");
        };
        assert!(warnings.iter().any(|d| d.code == "W001"), "{warnings:?}");
    }

    fn sharded_service(shards: usize) -> AdmissionService {
        let mut svc = service();
        let got = svc.enable_sharding(shards);
        assert_eq!(got, shards, "10x10 supports {shards} region shards");
        svc
    }

    /// A workload that exercises every response shape: shard-local and
    /// region-spanning admits, an idempotent replay, a lint rejection,
    /// an infeasible candidate, a breaks-existing candidate, a
    /// duplicate-warning admit, removal, query, snapshot.
    const PARITY_WORKLOAD: &[&str] = &[
        "ADMIT 0,0 3,0 3 60 4",     // local to the north-west quadrant
        "ADMIT 0,0 9,9 2 200 6",    // spans all four quadrants
        "@17 ADMIT 6,6 9,6 2 50 4", // local to the south-east quadrant
        "@17 ADMIT 6,6 9,6 2 50 4", // idempotent replay of the above
        "ADMIT 2,2 2,2 1 50 4",     // lint-rejected (self-delivery)
        "ADMIT 0,0 5,0 2 20 10",    // heavyweight crossing the x seam
        "ADMIT 1,0 6,0 1 100 8 12", // infeasible behind the above
        "ADMIT 0,1 5,1 1 100 8 14", // tight stream on row 1
        "ADMIT 1,1 6,1 3 30 20",    // would break the above
        "ADMIT 0,0 3,0 3 60 4",     // exact duplicate of stream 0 (W001)
        "REMOVE 1",
        "REMOVE 1", // unknown id now
        "QUERY 0",
        "QUERY 99", // unknown id
        "SNAPSHOT",
    ];

    #[test]
    fn sharded_responses_match_monolithic_byte_for_byte() {
        let mono = service();
        let sharded = sharded_service(4);
        for line in PARITY_WORKLOAD {
            let a = crate::protocol::render_response(&admit_line(&mono, line));
            let b = crate::protocol::render_response(&admit_line(&sharded, line));
            assert_eq!(a, b, "divergence on {line:?}");
        }
        assert_eq!(mono.bounds_by_handle(), sharded.bounds_by_handle());
        assert_eq!(mono.ops(), sharded.ops(), "journals must be identical");
        assert_eq!(sharded.audit().unwrap(), sharded.admitted_count());
    }

    #[test]
    fn sharded_journal_replays_bit_identical() {
        let svc = sharded_service(4);
        for line in PARITY_WORKLOAD {
            admit_line(&svc, line);
        }
        let replayed = replay(svc.mesh(), &svc.ops()).unwrap();
        let live = svc.bounds_by_handle();
        assert_eq!(replayed.len(), live.len());
        for (i, &(_, bound)) in live.iter().enumerate() {
            assert_eq!(
                replayed.bound(StreamId(i as u32)),
                DelayBound::Bounded(bound),
                "stream {i}"
            );
        }
    }

    #[test]
    fn enable_sharding_migrates_admitted_streams() {
        let mut svc = service();
        admit_line(&svc, "ADMIT 0,0 9,9 2 200 6"); // will span all four shards
        admit_line(&svc, "ADMIT 0,1 3,1 1 60 4 55");
        let before = svc.bounds_by_handle();
        assert_eq!(svc.enable_sharding(4), 4);
        assert_eq!(svc.bounds_by_handle(), before);
        assert_eq!(svc.audit().unwrap(), 2);
        // The migrated index keeps interfering with fresh candidates.
        let r = admit_line(&svc, "ADMIT 1,0 6,0 1 100 8 12");
        assert!(
            matches!(
                r,
                Response::Rejected {
                    reason: RejectReason::CandidateInfeasible,
                    ..
                }
            ),
            "{r:?}"
        );
        let plane = svc.shard_plane().expect("plane installed");
        let streams: u64 = plane.gauges().iter().map(|g| g.streams).sum();
        assert!(streams >= 3, "cross-shard stream resident in both owners");
    }

    #[test]
    fn sharded_stats_surface_the_plane_gauges() {
        let svc = sharded_service(4);
        admit_line(&svc, "ADMIT 0,0 3,0 3 60 4"); // local
        admit_line(&svc, "ADMIT 0,0 9,9 2 200 6"); // crosses all four
        admit_line(&svc, "ADMIT 6,6 9,6 2 50 4"); // local
        let r = admit_line(&svc, "STATS");
        let Response::Stats(s) = r else {
            panic!("{r:?}")
        };
        let sh = s.shards.as_ref().expect("shard gauges present");
        assert_eq!(sh.count, 4);
        assert_eq!(sh.per_shard.len(), 4);
        assert_eq!(sh.cross_admits, 1);
        assert_eq!(sh.cross_aborts, 0);
        assert!(sh.index_bytes > 0);
        // The spanning stream is resident in every quadrant it touches.
        let resident: u64 = sh.per_shard.iter().map(|p| p.streams).sum();
        assert!(resident > s.streams, "{sh:?}");
        assert!(sh.per_shard.iter().all(|p| p.cross <= p.streams), "{sh:?}");
        let line = crate::protocol::render_response(&Response::Stats(s));
        assert!(line.contains("\"shards\":{\"count\":4"), "{line}");
    }

    #[test]
    fn sharded_follower_replay_matches_monolithic() {
        // Drive a leader through the full parity workload, then replay
        // its journal into a monolithic follower and a sharded one:
        // identical streams, identical bounds, duplicate deliveries
        // idempotent on both.
        let leader = service();
        for line in PARITY_WORKLOAD {
            admit_line(&leader, line);
        }
        let journal = leader.ops();
        assert!(journal.len() >= 5, "workload must accept operations");

        let mono = service();
        mono.attach_repl(Arc::new(ReplHub::follower("leader:1")));
        let sharded = sharded_service(4);
        sharded.attach_repl(Arc::new(ReplHub::follower("leader:1")));
        for (i, op) in journal.iter().enumerate() {
            let seq = i as u64 + 1;
            mono.apply_replicated(seq, seq * 100, op).unwrap();
            sharded.apply_replicated(seq, seq * 100, op).unwrap();
            // Duplicate delivery (leader rewound): idempotent no-op on
            // the sharded path too.
            sharded.apply_replicated(seq, seq * 100, op).unwrap();
        }
        assert_eq!(mono.bounds_by_handle(), sharded.bounds_by_handle());
        assert_eq!(mono.ops(), sharded.ops(), "journals must be identical");
        assert_eq!(sharded.audit().unwrap(), sharded.admitted_count());

        // A sequence gap is refused on the sharded path as well.
        let err = sharded
            .apply_replicated(99, 0, &AcceptedOp::Remove { handle: 0 })
            .unwrap_err();
        assert!(err.contains("gap"), "{err}");

        // Promotion serves sharded writes immediately — no restart, no
        // migration step.
        assert!(matches!(sharded.promote(), Response::Promoted { .. }));
        let r = admit_line(&sharded, "ADMIT 0,2 5,2 2 50 4");
        assert!(matches!(r, Response::Admitted { .. }), "{r:?}");
        let resident: u64 = sharded
            .shard_plane()
            .expect("plane installed")
            .gauges()
            .iter()
            .map(|g| g.streams)
            .sum();
        assert!(resident > 0, "replayed streams live in the shards");
    }

    #[test]
    fn sealed_leader_sheds_writes_until_contact_returns() {
        let svc = service();
        let hub = Arc::new(ReplHub::leader());
        hub.set_lease(Duration::from_millis(40));
        svc.attach_repl(Arc::clone(&hub));
        // Unarmed lease (no follower ever acked): writes flow.
        let r = admit_line(&svc, "ADMIT 0,0 5,0 2 50 4");
        assert!(matches!(r, Response::Admitted { .. }), "{r:?}");
        // A follower acks, then goes silent past the lease.
        hub.note_follower_ack("f:1", 1);
        std::thread::sleep(Duration::from_millis(60));
        let r = admit_line(&svc, "ADMIT 0,1 5,1 2 50 4");
        assert!(matches!(r, Response::Error { code: "sealed", .. }), "{r:?}");
        // Reads still serve while sealed.
        let r = admit_line(&svc, "QUERY 0");
        assert!(matches!(r, Response::Query { .. }), "{r:?}");
        // Contact returns (partition healed, nobody promoted): unseal.
        hub.note_follower_ack("f:1", 1);
        let r = admit_line(&svc, "ADMIT 0,1 5,1 2 50 4");
        assert!(matches!(r, Response::Admitted { .. }), "{r:?}");
    }

    #[test]
    fn fenced_node_demotes_audits_and_refuses_promotion() {
        let svc = service();
        let hub = Arc::new(ReplHub::leader());
        svc.attach_repl(Arc::clone(&hub));
        admit_line(&svc, "ADMIT 0,0 5,0 2 50 4");
        admit_line(&svc, "ADMIT 0,1 5,1 2 50 4");
        assert_eq!(svc.seq(), 2);

        // A peer promoted to epoch 2 having applied only seq 1: one
        // divergent op.
        assert!(svc.fence(2, 1, "winner:9"));
        assert!(hub.is_fenced());
        assert!(hub.is_follower());
        assert_eq!(hub.epoch(), 2);
        assert_eq!(hub.divergence_ops(), 1);
        assert_eq!(hub.leader_addr(), "winner:9");

        // Writes now redirect to the winner...
        let r = admit_line(&svc, "ADMIT 0,2 5,2 2 50 4");
        assert!(
            matches!(
                r,
                Response::Error {
                    code: "not_leader",
                    ..
                }
            ),
            "{r:?}"
        );
        // ...and promotion is refused outright.
        let r = admit_line(&svc, "PROMOTE");
        assert!(matches!(r, Response::Error { code: "fenced", .. }), "{r:?}");
        // A stale fence is ignored.
        assert!(!svc.fence(2, 0, "other:1"));
        assert_eq!(hub.fence_events(), 1);
    }
}
