//! The reactor's dispatch plumbing, separated from the sockets so the
//! loom models can drive it directly: the reactor-to-worker job queue,
//! the worker-to-reactor completion queue, and the per-connection FIFO
//! state machine that enforces **at-most-one-batch-in-flight** with
//! ordered responses.
//!
//! `server.rs` owns the epoll loop and the TCP byte shuffling; this
//! module owns the protocol between the reactor thread and the worker
//! pool. The split is what makes the protocol model-checkable: a loom
//! model instantiates [`JobQueue`], [`CompletionQueue`] (with a no-op
//! [`Wake`]), and [`ConnFifo`] and explores every interleaving of
//! pump/dispatch/complete — no sockets required. The invariants the
//! models check (see `tests/loom_models.rs`):
//!
//! - every pushed line is answered exactly once, in push order
//!   (no lost wakeup, no double dispatch);
//! - at most one batch per connection is ever in flight;
//! - an [`Pending::Immediate`] response queued behind a line never
//!   overtakes that line's response.

use crate::lock_order::{classes, TrackedCondvar, TrackedMutex};
use crate::sync::Instant;
use std::collections::VecDeque;

/// Most request lines dispatched to a worker as one batch job. Batching
/// amortizes the reactor->worker->reactor hand-off (two thread wakes)
/// over a whole pipelined burst; the cap keeps one huge burst from
/// monopolizing a worker while other connections wait.
pub const MAX_BATCH_LINES: usize = 64;

/// A batch of parsed request lines (one connection, arrival order)
/// waiting for a worker.
pub struct Job {
    /// The connection's reactor token.
    pub token: u64,
    /// The lines with their enqueue instants (queue-wait metrics).
    pub lines: Vec<(String, Instant)>,
}

/// The rendered responses of one batch on their way back to the
/// reactor, concatenated in request order.
pub struct Completion {
    /// The connection's reactor token.
    pub token: u64,
    /// Concatenated newline-terminated responses, request order.
    pub bytes: Vec<u8>,
    /// The batch contained a `SHUTDOWN`.
    pub stop: bool,
}

#[derive(Default)]
struct JobState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The reactor-to-worker hand-off: a mutex-and-condvar queue, poisoned
/// by `close` so idle workers exit at shutdown.
pub struct JobQueue {
    state: TrackedMutex<JobState>,
    cond: TrackedCondvar,
}

impl JobQueue {
    /// An open, empty queue.
    pub fn new() -> JobQueue {
        JobQueue {
            state: TrackedMutex::new(&classes::SERVER_JOBS, JobState::default()),
            cond: TrackedCondvar::new(),
        }
    }

    /// Enqueue a batch and wake one worker.
    pub fn push(&self, job: Job) {
        self.state.lock().jobs.push_back(job);
        self.cond.notify_one();
    }

    /// Blocks for the next batch; `None` once the queue is closed and
    /// drained — the worker's exit signal.
    pub fn pop(&self) -> Option<Job> {
        let mut s = self.state.lock();
        loop {
            if let Some(j) = s.jobs.pop_front() {
                return Some(j);
            }
            if s.closed {
                return None;
            }
            s = self.cond.wait(s);
        }
    }

    /// Closes the queue: blocked and future `pop`s return `None` once
    /// the backlog drains.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.cond.notify_all();
    }
}

impl Default for JobQueue {
    fn default() -> Self {
        Self::new()
    }
}

/// How a [`CompletionQueue`] nudges the reactor out of its poll wait.
/// The real server writes one byte into a pipe registered with epoll; a
/// loom model uses a no-op (the model's reactor thread drains the queue
/// unconditionally, which is exactly the lost-wakeup-freedom argument:
/// the wake is an optimization, never load-bearing).
pub trait Wake {
    /// Signal the reactor that a completion is ready.
    fn wake(&self);
}

/// The worker-to-reactor hand-off. Workers push finished responses and
/// fire the [`Wake`]; the reactor drains every pass.
pub struct CompletionQueue<W: Wake> {
    done: TrackedMutex<Vec<Completion>>,
    wake: W,
}

impl<W: Wake> CompletionQueue<W> {
    /// An empty queue signalling through `wake`.
    pub fn new(wake: W) -> CompletionQueue<W> {
        CompletionQueue {
            done: TrackedMutex::new(&classes::SERVER_COMPLETIONS, Vec::new()),
            wake,
        }
    }

    /// Publish one finished batch and nudge the reactor.
    pub fn push(&self, c: Completion) {
        self.done.lock().push(c);
        // The wake may be lossy (a full pipe drops the byte): the
        // reactor drains completions every pass, so a missing nudge
        // delays a response by at most one poll tick, never loses it.
        self.wake.wake();
    }

    /// Take everything published so far.
    pub fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.done.lock())
    }
}

/// One entry in a connection's response-order FIFO.
pub enum Pending {
    /// A parsed request line awaiting dispatch.
    Line {
        /// The request text (no trailing newline).
        text: String,
        /// When the reactor queued it (queue-wait metrics).
        enqueued: Instant,
    },
    /// An already-rendered response (e.g. `too_long`) that must wait
    /// its turn behind earlier requests.
    Immediate {
        /// The newline-terminated rendered response.
        bytes: Vec<u8>,
    },
}

/// The per-connection dispatch state machine: a FIFO of not-yet-served
/// entries plus the **at-most-one-batch-in-flight** flag. The reactor
/// pushes entries as bytes arrive, [`ConnFifo::pump`]s after every
/// event, and calls [`ConnFifo::complete`] when the worker's responses
/// come back; the FIFO guarantees responses leave in request order.
pub struct ConnFifo {
    queue: VecDeque<Pending>,
    in_flight: bool,
}

impl ConnFifo {
    /// An idle, empty FIFO.
    pub fn new() -> ConnFifo {
        ConnFifo {
            queue: VecDeque::new(),
            in_flight: false,
        }
    }

    /// Queue a parsed request line.
    pub fn push_line(&mut self, text: String) {
        self.queue.push_back(Pending::Line {
            text,
            enqueued: Instant::now(),
        });
    }

    /// Queue an already-rendered (error) response in FIFO position.
    pub fn push_immediate(&mut self, bytes: Vec<u8>) {
        self.queue.push_back(Pending::Immediate { bytes });
    }

    /// A worker currently owns this connection's head-of-line batch.
    pub fn in_flight(&self) -> bool {
        self.in_flight
    }

    /// Nothing queued and nothing in flight.
    pub fn is_idle(&self) -> bool {
        !self.in_flight && self.queue.is_empty()
    }

    /// Advances the FIFO: already-rendered responses at the head go
    /// straight to `wbuf`, then the run of request lines behind them is
    /// dispatched as **one batch job** (the worker serves the batch in
    /// order and returns one concatenated response block, so a whole
    /// pipelined burst costs a single reactor->worker->reactor round
    /// trip). Nothing moves while a batch is in flight — a queued
    /// `Immediate` behind it must not overtake its responses.
    pub fn pump(&mut self, token: u64, jobs: &JobQueue, wbuf: &mut Vec<u8>) {
        if self.in_flight {
            return;
        }
        while matches!(self.queue.front(), Some(Pending::Immediate { .. })) {
            let Some(Pending::Immediate { bytes }) = self.queue.pop_front() else {
                unreachable!()
            };
            wbuf.extend_from_slice(&bytes);
        }
        let mut lines = Vec::new();
        while lines.len() < MAX_BATCH_LINES
            && matches!(self.queue.front(), Some(Pending::Line { .. }))
        {
            let Some(Pending::Line { text, enqueued }) = self.queue.pop_front() else {
                unreachable!()
            };
            lines.push((text, enqueued));
        }
        if !lines.is_empty() {
            self.in_flight = true;
            jobs.push(Job { token, lines });
        }
    }

    /// The worker's batch came back: clear the in-flight flag and land
    /// its responses. The caller pumps again afterwards to dispatch
    /// whatever queued up behind the batch.
    pub fn complete(&mut self, bytes: &[u8], wbuf: &mut Vec<u8>) {
        debug_assert!(self.in_flight, "completion without a batch in flight");
        self.in_flight = false;
        wbuf.extend_from_slice(bytes);
    }
}

impl Default for ConnFifo {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    struct NoWake;
    impl Wake for NoWake {
        fn wake(&self) {}
    }

    #[test]
    fn fifo_batches_lines_and_orders_immediates() {
        let jobs = JobQueue::new();
        let mut fifo = ConnFifo::new();
        let mut wbuf = Vec::new();
        fifo.push_line("A".into());
        fifo.push_line("B".into());
        fifo.pump(7, &jobs, &mut wbuf);
        assert!(fifo.in_flight());
        // Queued behind the in-flight batch: must not overtake it.
        fifo.push_immediate(b"ERR\n".to_vec());
        fifo.pump(7, &jobs, &mut wbuf);
        assert!(wbuf.is_empty(), "immediate must wait for the batch");
        let job = jobs.pop().unwrap();
        assert_eq!(job.token, 7);
        let texts: Vec<&str> = job.lines.iter().map(|(t, _)| t.as_str()).collect();
        assert_eq!(texts, ["A", "B"]);
        fifo.complete(b"a\nb\n", &mut wbuf);
        fifo.pump(7, &jobs, &mut wbuf);
        assert_eq!(wbuf, b"a\nb\nERR\n");
        assert!(fifo.is_idle());
    }

    #[test]
    fn batch_cap_splits_oversized_bursts() {
        let jobs = JobQueue::new();
        let mut fifo = ConnFifo::new();
        let mut wbuf = Vec::new();
        for i in 0..MAX_BATCH_LINES + 3 {
            fifo.push_line(format!("L{i}"));
        }
        fifo.pump(1, &jobs, &mut wbuf);
        let first = jobs.pop().unwrap();
        assert_eq!(first.lines.len(), MAX_BATCH_LINES);
        // The remainder waits for the completion.
        fifo.complete(b"", &mut wbuf);
        fifo.pump(1, &jobs, &mut wbuf);
        let second = jobs.pop().unwrap();
        assert_eq!(second.lines.len(), 3);
        assert_eq!(second.lines[0].0, format!("L{MAX_BATCH_LINES}"));
    }

    #[test]
    fn completion_queue_drains_everything_pushed() {
        let cq = CompletionQueue::new(NoWake);
        cq.push(Completion {
            token: 1,
            bytes: b"x\n".to_vec(),
            stop: false,
        });
        cq.push(Completion {
            token: 2,
            bytes: b"y\n".to_vec(),
            stop: true,
        });
        let drained = cq.drain();
        assert_eq!(drained.len(), 2);
        assert!(drained[1].stop);
        assert!(cq.drain().is_empty());
    }

    #[test]
    fn closed_job_queue_drains_then_ends() {
        let jobs = JobQueue::new();
        jobs.push(Job {
            token: 1,
            lines: vec![("X".into(), Instant::now())],
        });
        jobs.close();
        assert!(jobs.pop().is_some(), "backlog drains after close");
        assert!(jobs.pop().is_none(), "then the worker exit signal");
    }
}
