//! The write-ahead log: every accepted operation is framed, checksummed
//! and persisted **before** the client sees the acknowledgement.
//!
//! ## File format
//!
//! ```text
//! header:  "RTWCWAL1" (8 bytes)  base_seq: u64 LE (8 bytes)
//! record:  len: u32 LE  crc32(payload): u32 LE  payload
//! payload: req_id: u64 LE  tag: u8 (1=admit, 2=remove)  handle: u64 LE
//!          [StreamSpec wire bytes, admit only]
//! ```
//!
//! `base_seq` is the number of accepted operations already captured by
//! the snapshot the log continues from; record `i` of the file is
//! operation `base_seq + i + 1` of the service's history. A `req_id` of
//! zero means the client supplied none.
//!
//! ## Crash discipline
//!
//! Records are appended with a single write and, under
//! [`FsyncPolicy::Always`], synced before the operation is
//! acknowledged. On any append or sync error the log **rolls the tail
//! back** to the end of the last durable record, so an unacknowledged
//! operation never survives into recovery; if even the rollback fails
//! the log marks itself broken and the service degrades to read-only.
//! [`Wal::open`] scans the whole file, verifies every CRC, and
//! truncates a torn tail (a partial final record from a crash) — the
//! surviving prefix is exactly the acknowledged history.

use crate::faultfs::WalFile;
use crate::service::AcceptedOp;
use rtwc_core::StreamSpec;
use std::io;
use std::time::{Duration, Instant};

/// File-name of the log inside a `--wal-dir`.
pub const WAL_FILE: &str = "wal.log";

const MAGIC: &[u8; 8] = b"RTWCWAL1";
/// Header bytes: magic + `base_seq`.
pub const WAL_HEADER_BYTES: u64 = 16;
/// Sanity cap on a record payload; anything larger is tail corruption.
const MAX_PAYLOAD: u32 = 1 << 16;

const TAG_ADMIT: u8 = 1;
const TAG_REMOVE: u8 = 2;

/// When `fsync` runs relative to the acknowledgement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync every record before acking: no acked op is ever lost.
    Always,
    /// Sync at most once per interval: bounded loss window, near
    /// in-memory throughput.
    Interval(Duration),
    /// Never sync explicitly: the OS page cache decides.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never`, or `interval:MS`.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| FsyncPolicy::Interval(Duration::from_millis(ms)))
                    .map_err(|_| format!("bad fsync interval '{ms}'")),
                None => Err(format!(
                    "unknown fsync policy '{other}' (always|interval:MS|never)"
                )),
            },
        }
    }

    /// Stable name for reports (`always`, `interval:50`, `never`).
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_string(),
            FsyncPolicy::Interval(d) => format!("interval:{}", d.as_millis()),
            FsyncPolicy::Never => "never".to_string(),
        }
    }
}

/// One decoded log record: the accepted operation plus the client's
/// idempotency id (0 = none).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Client-supplied request id, 0 when absent.
    pub req_id: u64,
    /// The operation.
    pub op: AcceptedOp,
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Encodes a record payload (no framing).
pub fn encode_payload(req_id: u64, op: &AcceptedOp) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 1 + 8 + StreamSpec::WIRE_BYTES);
    out.extend_from_slice(&req_id.to_le_bytes());
    match op {
        AcceptedOp::Admit { handle, spec } => {
            out.push(TAG_ADMIT);
            out.extend_from_slice(&handle.to_le_bytes());
            spec.encode_to(&mut out);
        }
        AcceptedOp::Remove { handle } => {
            out.push(TAG_REMOVE);
            out.extend_from_slice(&handle.to_le_bytes());
        }
    }
    out
}

/// Decodes a record payload; `None` on any structural mismatch.
pub fn decode_payload(buf: &[u8]) -> Option<WalRecord> {
    if buf.len() < 17 {
        return None;
    }
    let req_id = u64::from_le_bytes(buf[0..8].try_into().ok()?);
    let tag = buf[8];
    let handle = u64::from_le_bytes(buf[9..17].try_into().ok()?);
    let op = match tag {
        TAG_ADMIT => {
            let spec = StreamSpec::decode(&buf[17..])?;
            if buf.len() != 17 + StreamSpec::WIRE_BYTES {
                return None;
            }
            AcceptedOp::Admit { handle, spec }
        }
        TAG_REMOVE => {
            if buf.len() != 17 {
                return None;
            }
            AcceptedOp::Remove { handle }
        }
        _ => return None,
    };
    Some(WalRecord { req_id, op })
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One intact frame of a WAL file, borrowed from the raw bytes.
///
/// `seq` is the service's operation sequence number **after** this
/// frame is applied (record `i` of a file with base `b` has seq
/// `b + i + 1`), matching [`Wal::seq`]'s "next append" convention: a
/// replica whose applied seq is `n` needs exactly the frames with
/// `seq > n`.
#[derive(Clone, Copy, Debug)]
pub struct Frame<'a> {
    /// Byte offset of the frame's length prefix within the file.
    pub offset: u64,
    /// Operation sequence number after applying this frame.
    pub seq: u64,
    /// CRC-32 of the payload, as stored in the frame header.
    pub crc: u32,
    /// The raw record payload (see [`decode_payload`]).
    pub payload: &'a [u8],
}

impl Frame<'_> {
    /// Byte offset one past this frame — where the next frame starts.
    pub fn end(&self) -> u64 {
        self.offset + 8 + self.payload.len() as u64
    }
}

/// Iterator over the intact frames of a raw WAL image, shared by
/// recovery ([`Wal::open`]) and the replication shipper so there is a
/// single frame parser. Stops at the first torn or corrupt frame;
/// [`FrameIter::offset`] then points at the byte where the intact
/// prefix ends (the truncation point for recovery, or the resume point
/// for a shipper waiting on more durable bytes).
#[derive(Debug)]
pub struct FrameIter<'a> {
    bytes: &'a [u8],
    at: usize,
    base_seq: u64,
    yielded: u64,
}

impl<'a> FrameIter<'a> {
    /// Parses the `RTWCWAL1` header and positions the iterator at the
    /// first record. Errors if the header is short or the magic is
    /// wrong.
    pub fn new(bytes: &'a [u8]) -> io::Result<FrameIter<'a>> {
        if bytes.len() < WAL_HEADER_BYTES as usize || &bytes[..8] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "WAL header is corrupt (bad magic or short file)",
            ));
        }
        let base_seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        Ok(FrameIter {
            bytes,
            at: WAL_HEADER_BYTES as usize,
            base_seq,
            yielded: 0,
        })
    }

    /// The snapshot sequence number the file continues from.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// Byte offset of the next frame to parse — after exhaustion, one
    /// past the last intact frame.
    pub fn offset(&self) -> u64 {
        self.at as u64
    }
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = Frame<'a>;

    fn next(&mut self) -> Option<Frame<'a>> {
        let end = parse_frame(self.bytes, self.at)?;
        let frame = Frame {
            offset: self.at as u64,
            seq: self.base_seq + self.yielded + 1,
            crc: u32::from_le_bytes(
                self.bytes[self.at + 4..self.at + 8]
                    .try_into()
                    .expect("4 bytes"),
            ),
            payload: &self.bytes[self.at + 8..end],
        };
        self.at = end;
        self.yielded += 1;
        Some(frame)
    }
}

/// What [`Wal::open`] found in an existing file.
#[derive(Debug)]
pub struct WalOpen {
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// The snapshot sequence number the log continues from.
    pub base_seq: u64,
    /// Torn-tail bytes discarded (0 on a clean file).
    pub truncated_bytes: u64,
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: Box<dyn WalFile>,
    policy: FsyncPolicy,
    base_seq: u64,
    records: u64,
    /// Byte offset one past the last intact record.
    end: u64,
    last_sync: Instant,
    broken: bool,
}

impl Wal {
    /// Opens (or initializes) a log over `file`. Scans every record,
    /// verifies CRCs, and truncates a torn tail; the surviving records
    /// are returned for replay.
    pub fn open(mut file: Box<dyn WalFile>, policy: FsyncPolicy) -> io::Result<(Wal, WalOpen)> {
        let bytes = file.read_all()?;
        if bytes.is_empty() {
            // Fresh log: write the header for base_seq 0.
            let mut header = Vec::with_capacity(WAL_HEADER_BYTES as usize);
            header.extend_from_slice(MAGIC);
            header.extend_from_slice(&0u64.to_le_bytes());
            file.append(&header)?;
            file.sync()?;
            let wal = Wal {
                file,
                policy,
                base_seq: 0,
                records: 0,
                end: WAL_HEADER_BYTES,
                last_sync: Instant::now(),
                broken: false,
            };
            return Ok((
                wal,
                WalOpen {
                    records: Vec::new(),
                    base_seq: 0,
                    truncated_bytes: 0,
                },
            ));
        }
        let mut frames = FrameIter::new(&bytes)?;
        let base_seq = frames.base_seq();
        let mut records = Vec::new();
        let mut at = WAL_HEADER_BYTES as usize;
        // Scan until the first frame that does not parse; everything
        // after it is a torn tail from a crash mid-append.
        for f in &mut frames {
            let Some(record) = decode_payload(f.payload) else {
                break;
            };
            records.push(record);
            at = f.end() as usize;
        }
        let truncated = (bytes.len() - at) as u64;
        if truncated > 0 {
            file.truncate(at as u64)?;
            file.sync()?;
        }
        let wal = Wal {
            file,
            policy,
            base_seq,
            records: records.len() as u64,
            end: at as u64,
            last_sync: Instant::now(),
            broken: false,
        };
        Ok((
            wal,
            WalOpen {
                records,
                base_seq,
                truncated_bytes: truncated,
            },
        ))
    }

    /// The operation sequence number the *next* append will get.
    pub fn seq(&self) -> u64 {
        self.base_seq + self.records
    }

    /// Records currently in the file (after `base_seq`).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// True once an append/sync error could not be rolled back; the
    /// log must not be appended to again.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// The active fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Appends one accepted operation and applies the fsync policy.
    ///
    /// On success the record is in the file (and durable under
    /// [`FsyncPolicy::Always`]). On *any* error the tail is rolled back
    /// so the record is gone, and the error is returned — the caller
    /// must not acknowledge the operation. A rollback failure poisons
    /// the log ([`Wal::is_broken`]).
    pub fn append(&mut self, req_id: u64, op: &AcceptedOp) -> io::Result<()> {
        if self.broken {
            return Err(io::Error::other("WAL is broken (earlier device error)"));
        }
        let framed = frame(&encode_payload(req_id, op));
        if let Err(e) = self.file.append(&framed) {
            self.rollback();
            return Err(e);
        }
        let synced_end = self.end + framed.len() as u64;
        match self.policy {
            FsyncPolicy::Always => {
                if let Err(e) = self.file.sync() {
                    self.rollback();
                    return Err(e);
                }
                self.last_sync = Instant::now();
            }
            FsyncPolicy::Interval(every) => {
                if self.last_sync.elapsed() >= every {
                    if let Err(e) = self.file.sync() {
                        self.rollback();
                        return Err(e);
                    }
                    self.last_sync = Instant::now();
                }
            }
            FsyncPolicy::Never => {}
        }
        self.end = synced_end;
        self.records += 1;
        Ok(())
    }

    /// Appends one accepted operation **without** running the fsync
    /// policy — the group-commit layer
    /// ([`crate::group_commit::GroupWal`]) schedules syncs itself,
    /// batching many records per fsync. Same rollback contract as
    /// [`Wal::append`]: on error the tail is rolled back and the record
    /// is gone from the file.
    pub fn append_raw(&mut self, req_id: u64, op: &AcceptedOp) -> io::Result<()> {
        if self.broken {
            return Err(io::Error::other("WAL is broken (earlier device error)"));
        }
        let framed = frame(&encode_payload(req_id, op));
        if let Err(e) = self.file.append(&framed) {
            self.rollback();
            return Err(e);
        }
        self.end += framed.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Byte offset one past the last intact record — the group-commit
    /// layer's durability cursor.
    pub fn end_offset(&self) -> u64 {
        self.end
    }

    /// Rolls the log back to a previously observed
    /// `(end_offset, records)` point, discarding every record after it
    /// — the group-commit layer's whole-batch rollback when a batched
    /// fsync fails, so no unacknowledged record survives into recovery.
    /// A truncate failure poisons the log.
    pub fn truncate_to(&mut self, end: u64, records: u64) -> io::Result<()> {
        if let Err(e) = self.file.truncate(end) {
            self.broken = true;
            return Err(e);
        }
        self.end = end;
        self.records = records;
        Ok(())
    }

    /// Syncs unconditionally, regardless of policy — the clean-shutdown
    /// path for `interval`/`never`, where acknowledged records may
    /// still sit in the page cache.
    pub fn sync_now(&mut self) -> io::Result<()> {
        if self.broken {
            return Err(io::Error::other("WAL is broken (earlier device error)"));
        }
        self.file.sync()?;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Best-effort tail rollback to the last known-good offset.
    fn rollback(&mut self) {
        if self.file.truncate(self.end).is_err() {
            self.broken = true;
        }
    }

    /// Restarts the log after a snapshot at sequence `base_seq`: the
    /// file is truncated to an empty record list with the new header.
    pub fn reset(&mut self, base_seq: u64) -> io::Result<()> {
        if self.broken {
            return Err(io::Error::other("WAL is broken (earlier device error)"));
        }
        self.file.truncate(0)?;
        let mut header = Vec::with_capacity(WAL_HEADER_BYTES as usize);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&base_seq.to_le_bytes());
        self.file.append(&header)?;
        self.file.sync()?;
        self.base_seq = base_seq;
        self.records = 0;
        self.end = WAL_HEADER_BYTES;
        self.last_sync = Instant::now();
        Ok(())
    }
}

/// Returns the end offset of the frame starting at `at`, if the frame
/// is complete and its CRC verifies.
fn parse_frame(bytes: &[u8], at: usize) -> Option<usize> {
    if at + 8 > bytes.len() {
        return None;
    }
    let len = u32::from_le_bytes(bytes[at..at + 4].try_into().ok()?);
    if len == 0 || len > MAX_PAYLOAD {
        return None;
    }
    let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().ok()?);
    let end = at + 8 + len as usize;
    if end > bytes.len() {
        return None;
    }
    if crc32(&bytes[at + 8..end]) != crc {
        return None;
    }
    Some(end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultfs::RealFile;
    use rtwc_core::StreamSpec;
    use wormnet_topology::NodeId;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rtwc-wal-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(WAL_FILE)
    }

    fn spec(tag: u32) -> StreamSpec {
        StreamSpec::new(NodeId(tag), NodeId(tag + 1), 2, 50 + u64::from(tag), 4, 50)
    }

    fn admit(handle: u64) -> AcceptedOp {
        AcceptedOp::Admit {
            handle,
            spec: spec(handle as u32),
        }
    }

    fn open(path: &std::path::Path, policy: FsyncPolicy) -> (Wal, WalOpen) {
        Wal::open(Box::new(RealFile::open(path).unwrap()), policy).unwrap()
    }

    #[test]
    fn payload_round_trips_both_tags() {
        for op in [admit(7), AcceptedOp::Remove { handle: 3 }] {
            let payload = encode_payload(42, &op);
            let rec = decode_payload(&payload).unwrap();
            assert_eq!(rec.req_id, 42);
            assert_eq!(rec.op, op);
        }
        assert_eq!(decode_payload(&[]), None);
        assert_eq!(decode_payload(&[0; 16]), None);
        let mut bad_tag = encode_payload(1, &admit(0));
        bad_tag[8] = 9;
        assert_eq!(decode_payload(&bad_tag), None);
    }

    #[test]
    fn append_reopen_replays_everything() {
        let path = tmp("replay");
        std::fs::remove_file(&path).ok();
        let (mut wal, open0) = open(&path, FsyncPolicy::Always);
        assert_eq!(open0.records.len(), 0);
        wal.append(0, &admit(0)).unwrap();
        wal.append(11, &admit(1)).unwrap();
        wal.append(0, &AcceptedOp::Remove { handle: 0 }).unwrap();
        assert_eq!(wal.seq(), 3);
        drop(wal);
        let (wal, opened) = open(&path, FsyncPolicy::Always);
        assert_eq!(opened.truncated_bytes, 0);
        assert_eq!(opened.base_seq, 0);
        assert_eq!(opened.records.len(), 3);
        assert_eq!(opened.records[1].req_id, 11);
        assert_eq!(opened.records[2].op, AcceptedOp::Remove { handle: 0 });
        assert_eq!(wal.seq(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_at_every_offset() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = open(&path, FsyncPolicy::Never);
        for i in 0..4u64 {
            wal.append(i, &admit(i)).unwrap();
        }
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        // Record boundaries: parse to find them.
        let mut bounds = vec![WAL_HEADER_BYTES as usize];
        let mut at = WAL_HEADER_BYTES as usize;
        while let Some(end) = parse_frame(&full, at) {
            bounds.push(end);
            at = end;
        }
        assert_eq!(bounds.len(), 5);
        // Truncate at every byte offset: recovery keeps exactly the
        // records whose frames survive whole.
        for cut in WAL_HEADER_BYTES as usize..=full.len() {
            let copy = tmp("torn-cut");
            std::fs::write(&copy, &full[..cut]).unwrap();
            let (_, opened) = open(&copy, FsyncPolicy::Never);
            let expect = bounds.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(opened.records.len(), expect, "cut at {cut}");
            assert_eq!(
                opened.truncated_bytes as usize,
                cut - bounds[expect],
                "cut at {cut}"
            );
            // The file is now clean: reopening truncates nothing.
            let (_, reopened) = open(&copy, FsyncPolicy::Never);
            assert_eq!(reopened.truncated_bytes, 0);
            assert_eq!(reopened.records.len(), expect);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bitflip_in_a_record_cuts_the_log_there() {
        let path = tmp("bitflip");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = open(&path, FsyncPolicy::Never);
        for i in 0..3u64 {
            wal.append(0, &admit(i)).unwrap();
        }
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the second record's payload.
        let r0_end = parse_frame(&bytes, WAL_HEADER_BYTES as usize).unwrap();
        bytes[r0_end + 12] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (_, opened) = open(&path, FsyncPolicy::Never);
        assert_eq!(opened.records.len(), 1, "corruption cuts before record 2");
        assert!(opened.truncated_bytes > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_restarts_at_the_snapshot_seq() {
        let path = tmp("reset");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = open(&path, FsyncPolicy::Always);
        for i in 0..5u64 {
            wal.append(0, &admit(i)).unwrap();
        }
        wal.reset(5).unwrap();
        assert_eq!(wal.seq(), 5);
        assert_eq!(wal.records(), 0);
        wal.append(0, &admit(5)).unwrap();
        drop(wal);
        let (_, opened) = open(&path, FsyncPolicy::Always);
        assert_eq!(opened.base_seq, 5);
        assert_eq!(opened.records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn frame_iter_yields_seqs_and_stops_at_torn_tail() {
        let path = tmp("frameiter");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = open(&path, FsyncPolicy::Never);
        for i in 0..3u64 {
            wal.append(i + 1, &admit(i)).unwrap();
        }
        wal.reset(3).unwrap();
        wal.append(9, &admit(3)).unwrap();
        wal.append(10, &admit(4)).unwrap();
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        let frames: Vec<_> = FrameIter::new(&bytes).unwrap().collect();
        assert_eq!(frames.len(), 2);
        // Seq follows the "after applying" convention from base_seq.
        assert_eq!(frames[0].seq, 4);
        assert_eq!(frames[1].seq, 5);
        assert_eq!(frames[0].offset, WAL_HEADER_BYTES);
        assert_eq!(frames[1].offset, frames[0].end());
        for f in &frames {
            assert_eq!(crc32(f.payload), f.crc);
            assert!(decode_payload(f.payload).is_some());
        }
        // A torn tail stops the iterator at the last intact boundary.
        let cut = frames[1].end() as usize - 3;
        let mut it = FrameIter::new(&bytes[..cut]).unwrap();
        assert_eq!(it.by_ref().count(), 1);
        assert_eq!(it.offset(), frames[0].end());
        assert!(FrameIter::new(&bytes[..4]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("interval:50"),
            Ok(FsyncPolicy::Interval(Duration::from_millis(50)))
        );
        assert!(FsyncPolicy::parse("interval:x").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(
            FsyncPolicy::Interval(Duration::from_millis(50)).label(),
            "interval:50"
        );
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }
}
