//! Periodic state snapshots: the admitted set, the handle table, and
//! the idempotency (dedup) window, written atomically so the WAL can be
//! compacted.
//!
//! ## File format
//!
//! ```text
//! magic: "RTWCSNP1" (8 bytes)
//! body:
//!   seq: u64 LE            accepted ops captured by this snapshot
//!   next_handle: u64 LE
//!   count: u32 LE          admitted streams, in dense (admission) order
//!   count x (handle: u64 LE, StreamSpec wire bytes)
//!   dedup_count: u32 LE
//!   dedup_count x (req_id: u64, admit: u8, handle: u64, bound: u64, deadline: u64)
//! crc32(body): u32 LE
//! ```
//!
//! ## Atomicity
//!
//! The snapshot is written to `snapshot.tmp`, synced, renamed over
//! `snapshot.bin`, and the directory is synced — a crash at any point
//! leaves either the old snapshot or the new one, never a torn mix.
//! Recovery deletes a stray `snapshot.tmp` and validates the CRC; a
//! corrupt `snapshot.bin` is an error (state would be silently lost),
//! never silently ignored.

use crate::wal::crc32;
use rtwc_core::StreamSpec;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// File-name of the current snapshot inside a `--wal-dir`.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Scratch name the snapshot is staged under before the atomic rename.
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";

const MAGIC: &[u8; 8] = b"RTWCSNP1";

/// One persisted idempotency-window entry: the outcome a duplicate
/// request id must be answered with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DedupEntry {
    /// The client's request id.
    pub req_id: u64,
    /// True for an admit outcome, false for a remove.
    pub admit: bool,
    /// The stable handle the original request was answered with.
    pub handle: u64,
    /// The bound reported by the original admit (0 for removes).
    pub bound: u64,
    /// The deadline reported by the original admit (0 for removes).
    pub deadline: u64,
}

/// Everything a snapshot captures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotData {
    /// Accepted operations captured (the WAL restarts here).
    pub seq: u64,
    /// Next stable handle to assign.
    pub next_handle: u64,
    /// Admitted streams with their handles, in dense order.
    pub streams: Vec<(u64, StreamSpec)>,
    /// The idempotency window, oldest first.
    pub dedup: Vec<DedupEntry>,
}

fn encode(data: &SnapshotData) -> Vec<u8> {
    let mut body = Vec::with_capacity(
        24 + data.streams.len() * (8 + StreamSpec::WIRE_BYTES) + data.dedup.len() * 33,
    );
    body.extend_from_slice(&data.seq.to_le_bytes());
    body.extend_from_slice(&data.next_handle.to_le_bytes());
    body.extend_from_slice(&(data.streams.len() as u32).to_le_bytes());
    for (handle, spec) in &data.streams {
        body.extend_from_slice(&handle.to_le_bytes());
        spec.encode_to(&mut body);
    }
    body.extend_from_slice(&(data.dedup.len() as u32).to_le_bytes());
    for e in &data.dedup {
        body.extend_from_slice(&e.req_id.to_le_bytes());
        body.push(u8::from(e.admit));
        body.extend_from_slice(&e.handle.to_le_bytes());
        body.extend_from_slice(&e.bound.to_le_bytes());
        body.extend_from_slice(&e.deadline.to_le_bytes());
    }
    let mut out = Vec::with_capacity(12 + body.len());
    out.extend_from_slice(MAGIC);
    let crc = crc32(&body);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("snapshot {what}"))
}

fn decode(bytes: &[u8]) -> io::Result<SnapshotData> {
    if bytes.len() < 12 || &bytes[..8] != MAGIC {
        return Err(corrupt("has a bad magic or is too short"));
    }
    let body = &bytes[8..bytes.len() - 4];
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != crc {
        return Err(corrupt("fails its CRC"));
    }
    let mut at = 0usize;
    let mut take = |n: usize| -> io::Result<&[u8]> {
        let s = body
            .get(at..at + n)
            .ok_or_else(|| corrupt("is truncated"))?;
        at += n;
        Ok(s)
    };
    let seq = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
    let next_handle = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
    let count = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes"));
    let mut streams = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let handle = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        let spec = StreamSpec::decode(take(StreamSpec::WIRE_BYTES)?)
            .ok_or_else(|| corrupt("holds an undecodable stream spec"))?;
        streams.push((handle, spec));
    }
    let dedup_count = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes"));
    let mut dedup = Vec::with_capacity(dedup_count.min(1 << 20) as usize);
    for _ in 0..dedup_count {
        let req_id = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        let admit = take(1)?[0] != 0;
        let handle = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        let bound = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        let deadline = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        dedup.push(DedupEntry {
            req_id,
            admit,
            handle,
            bound,
            deadline,
        });
    }
    if at != body.len() {
        return Err(corrupt("has trailing bytes"));
    }
    Ok(SnapshotData {
        seq,
        next_handle,
        streams,
        dedup,
    })
}

/// Writes `data` atomically into `dir` (tmp + fsync + rename + dir
/// fsync).
pub fn write_snapshot(dir: &Path, data: &SnapshotData) -> io::Result<()> {
    let tmp = dir.join(SNAPSHOT_TMP);
    let dst = dir.join(SNAPSHOT_FILE);
    let bytes = encode(data);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, &dst)?;
    // Persist the rename itself; without this a crash can lose the
    // directory entry even though the data blocks are on disk.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Decodes an in-memory snapshot image (magic + body + CRC trailer).
///
/// Replication ships `snapshot.bin` verbatim; both ends use this to
/// validate the image and read its `seq` without touching the
/// filesystem.
pub fn parse_snapshot(bytes: &[u8]) -> io::Result<SnapshotData> {
    decode(bytes)
}

/// Loads the snapshot from `dir`, if one exists. A stray staging file
/// from a crashed snapshot write is removed. `Ok(None)` means "no
/// snapshot"; a present-but-corrupt snapshot is an error.
pub fn load_snapshot(dir: &Path) -> io::Result<Option<SnapshotData>> {
    let _ = fs::remove_file(dir.join(SNAPSHOT_TMP));
    let path = dir.join(SNAPSHOT_FILE);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    decode(&bytes).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wormnet_topology::NodeId;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rtwc-snap-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> SnapshotData {
        SnapshotData {
            seq: 17,
            next_handle: 9,
            streams: vec![
                (3, StreamSpec::new(NodeId(0), NodeId(5), 2, 50, 4, 50)),
                (8, StreamSpec::new(NodeId(12), NodeId(17), 1, 60, 6, 55)),
            ],
            dedup: vec![
                DedupEntry {
                    req_id: 0xdead_beef,
                    admit: true,
                    handle: 3,
                    bound: 23,
                    deadline: 50,
                },
                DedupEntry {
                    req_id: 7,
                    admit: false,
                    handle: 1,
                    bound: 0,
                    deadline: 0,
                },
            ],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = tmpdir("roundtrip");
        assert_eq!(load_snapshot(&dir).unwrap(), None);
        let data = sample();
        write_snapshot(&dir, &data).unwrap();
        assert_eq!(load_snapshot(&dir).unwrap(), Some(data));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stray_staging_file_is_cleaned_up() {
        let dir = tmpdir("stray");
        write_snapshot(&dir, &sample()).unwrap();
        std::fs::write(dir.join(SNAPSHOT_TMP), b"half-written garbage").unwrap();
        assert!(load_snapshot(&dir).unwrap().is_some());
        assert!(!dir.join(SNAPSHOT_TMP).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_detected_not_ignored() {
        let dir = tmpdir("corrupt");
        write_snapshot(&dir, &sample()).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load_snapshot(&dir).is_err());
        // Truncation too.
        write_snapshot(&dir, &sample()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(load_snapshot(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
