//! A minimal synchronous client for the newline-delimited protocol:
//! one request line out, one JSON line back.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

/// A connected client. Each [`Client::send`] is a full round trip.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server at `addr` (`host:port`).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request line and returns the response line (without
    /// the trailing newline). An empty response means the server closed
    /// the connection.
    pub fn send(&mut self, request: &str) -> io::Result<String> {
        // One write per request: a separate newline write would sit in
        // Nagle's buffer waiting for the server's delayed ACK.
        let mut line = String::with_capacity(request.len() + 1);
        line.push_str(request);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}
