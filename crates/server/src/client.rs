//! The synchronous client: one request line out, one JSON line back —
//! now with per-request deadlines, typed errors, reconnect, bounded
//! exponential backoff with deterministic jitter, and idempotent
//! retries.
//!
//! ## Retry semantics
//!
//! [`Client::send`] is a single attempt under a deadline. After a
//! [`ClientError::Timeout`] the connection is in an unknown state (the
//! response may still arrive and desynchronize the stream), so the
//! retrying wrappers always reconnect before trying again.
//!
//! [`Client::send_with_retry`] retries transport failures, `busy`
//! shedding, and `sealed` sheds from a leader whose write lease lapsed
//! (transient by design: the lease re-arms on follower contact, or a
//! fence turns the next attempt into a `not_leader` redirect). For
//! `ADMIT`/`REMOVE` a blind resend could apply the
//! operation twice (the loss happened *after* the server acted), so
//! state-changing requests should go through
//! [`Client::send_idempotent`], which stamps an `@REQID` prefix the
//! server deduplicates — a retried admit whose first acknowledgement
//! was lost returns the original outcome instead of a second stream.

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::thread;
use std::time::{Duration, Instant};

/// Client-side robustness knobs.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Per-request response deadline.
    pub io_timeout: Duration,
    /// Additional attempts after the first (so `retries = 4` means at
    /// most 5 attempts).
    pub retries: u32,
    /// First backoff delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Seed for deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(5),
            retries: 4,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            jitter_seed: 0x5eed_c11e,
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// A transport-level failure (connect, write, read).
    Io(io::Error),
    /// No complete response arrived within
    /// [`ClientConfig::io_timeout`].
    Timeout,
    /// The server closed the connection before responding.
    Disconnected,
    /// Every attempt failed; `last` describes the final failure.
    Exhausted {
        /// Attempts made (first try + retries).
        attempts: u32,
        /// Human-readable description of the last failure.
        last: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Timeout => write!(f, "request timed out"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ClientError> for io::Error {
    fn from(e: ClientError) -> Self {
        match e {
            ClientError::Io(e) => e,
            other => io::Error::other(other.to_string()),
        }
    }
}

/// `splitmix64` — the workspace's stock deterministic generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Extracts `retry_after_ms` from a `busy` response line.
fn busy_retry_ms(reply: &str) -> Option<u64> {
    if !reply.contains("\"status\":\"busy\"") {
        return None;
    }
    let pat = "\"retry_after_ms\":";
    let start = reply.find(pat)? + pat.len();
    let rest = &reply[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// True for a `sealed` shed: the leader's write lease lapsed. The
/// condition is transient — the lease re-arms when follower contact
/// returns, or a fence redirects the next attempt — so the client
/// backs off and retries like `busy`.
fn is_sealed(reply: &str) -> bool {
    reply.contains("\"code\":\"sealed\"")
}

/// Extracts the leader address from a `not_leader` redirect ("not the
/// leader; leader is HOST:PORT"). `None` for any other response, or
/// when the follower does not know its leader.
fn not_leader_target(reply: &str) -> Option<String> {
    if !reply.contains("\"code\":\"not_leader\"") {
        return None;
    }
    let pat = "leader is ";
    let start = reply.find(pat)? + pat.len();
    let rest = &reply[start..];
    let end = rest.find('"').unwrap_or(rest.len());
    let addr = rest[..end].trim();
    if addr.is_empty() {
        None
    } else {
        Some(addr.to_string())
    }
}

/// How long a read blocks before re-checking the request deadline.
const CLIENT_READ_TICK: Duration = Duration::from_millis(50);

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// A connected client. Each [`Client::send`] is a full round trip.
pub struct Client {
    addr: String,
    config: ClientConfig,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    jitter: u64,
}

impl Client {
    /// Connects to a running server at `addr` (`host:port`) with the
    /// default [`ClientConfig`].
    pub fn connect(addr: &str) -> io::Result<Client> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit robustness knobs.
    pub fn connect_with(addr: &str, config: ClientConfig) -> io::Result<Client> {
        let stream = Self::open(addr, &config)?;
        Ok(Client {
            addr: addr.to_string(),
            jitter: config.jitter_seed,
            config,
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn open(addr: &str, config: &ClientConfig) -> io::Result<TcpStream> {
        let mut last = io::Error::new(io::ErrorKind::InvalidInput, "no address resolved");
        for sockaddr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sockaddr, config.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(CLIENT_READ_TICK))?;
                    return Ok(stream);
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Drops the current connection and dials the same address again.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let stream = Self::open(&self.addr, &self.config)?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = stream;
        Ok(())
    }

    /// Sends one request line and returns the response line (without
    /// the trailing newline). One attempt, bounded by
    /// [`ClientConfig::io_timeout`].
    pub fn send(&mut self, request: &str) -> Result<String, ClientError> {
        // One write per request: a separate newline write would sit in
        // Nagle's buffer waiting for the server's delayed ACK.
        let mut line = String::with_capacity(request.len() + 1);
        line.push_str(request);
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.read_reply(Instant::now() + self.config.io_timeout)
    }

    /// Sends `requests` as one pipelined burst — a single TCP write,
    /// then the matching responses in request order. The server's
    /// per-connection FIFO guarantees ordering; pipelining amortizes
    /// the syscall and wake-up cost of a round trip over the window.
    /// The deadline covers the whole burst.
    pub fn send_pipelined(&mut self, requests: &[String]) -> Result<Vec<String>, ClientError> {
        let mut burst = String::with_capacity(requests.iter().map(|r| r.len() + 1).sum());
        for r in requests {
            burst.push_str(r);
            burst.push('\n');
        }
        self.writer.write_all(burst.as_bytes())?;
        let deadline = Instant::now() + self.config.io_timeout;
        let mut replies = Vec::with_capacity(requests.len());
        for _ in 0..requests.len() {
            replies.push(self.read_reply(deadline)?);
        }
        Ok(replies)
    }

    /// Reads one response line, ticking against `deadline`.
    fn read_reply(&mut self, deadline: Instant) -> Result<String, ClientError> {
        let mut reply = String::new();
        loop {
            match self.reader.read_line(&mut reply) {
                Ok(0) => return Err(ClientError::Disconnected),
                Ok(_) => break,
                Err(e) if is_timeout(&e) => {
                    if Instant::now() >= deadline {
                        return Err(ClientError::Timeout);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }

    /// Backoff before retry `attempt` (1-based): exponential from
    /// [`ClientConfig::backoff_base`], capped, plus up to 50%
    /// deterministic jitter so synchronized clients do not stampede.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let base = self.config.backoff_base.as_millis() as u64;
        let cap = self.config.backoff_max.as_millis() as u64;
        let exp = base.saturating_mul(1u64 << attempt.min(16)).min(cap.max(1));
        let jitter = splitmix64(&mut self.jitter) % (exp / 2 + 1);
        Duration::from_millis(exp + jitter)
    }

    /// Sends with retries: transport failures and timeouts reconnect
    /// and back off; `busy` responses honor the server's
    /// `retry_after_ms` hint; `sealed` sheds (a leader whose write
    /// lease lapsed) back off and retry; `not_leader` redirects re-dial
    /// the leader the follower names. **Not** safe for `ADMIT`/`REMOVE` unless
    /// the line carries an `@REQID` prefix — use
    /// [`Client::send_idempotent`] for those.
    pub fn send_with_retry(&mut self, request: &str) -> Result<String, ClientError> {
        let mut last = String::new();
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                thread::sleep(self.backoff(attempt));
                // The previous failure may have poisoned the stream.
                if let Err(e) = self.reconnect() {
                    last = format!("reconnect failed: {e}");
                    continue;
                }
            }
            match self.send(request) {
                Ok(reply) => {
                    if let Some(ms) = busy_retry_ms(&reply) {
                        last = format!("server busy (retry_after_ms={ms})");
                        thread::sleep(Duration::from_millis(ms));
                        continue;
                    }
                    // A sealed leader sheds writes only while its lease
                    // is lapsed; back off and retry — by then either
                    // the lease re-armed or a fence turned this into a
                    // `not_leader` redirect.
                    if is_sealed(&reply) {
                        last = "leader sealed (write lease lapsed)".to_string();
                        continue;
                    }
                    // A follower redirects writes: chase the leader
                    // (the next attempt reconnects to the new address).
                    // With an `@REQID` prefix this is exactly-once
                    // across a failover — the promoted leader replays
                    // the original outcome from the replicated dedup
                    // window.
                    match not_leader_target(&reply) {
                        Some(target) if target != self.addr => {
                            last = format!("redirected to leader {target}");
                            self.addr = target;
                        }
                        _ => return Ok(reply),
                    }
                }
                Err(ClientError::Io(e)) => last = format!("i/o error: {e}"),
                Err(ClientError::Timeout) => last = "timeout".to_string(),
                Err(ClientError::Disconnected) => last = "disconnected".to_string(),
                Err(e @ ClientError::Exhausted { .. }) => return Err(e),
            }
        }
        Err(ClientError::Exhausted {
            attempts: self.config.retries + 1,
            last,
        })
    }

    /// Sends a state-changing request with retries, stamped with the
    /// idempotency id `req_id` (nonzero): the server replays the
    /// original outcome for a duplicate id, so a retry after a lost
    /// acknowledgement cannot double-admit.
    pub fn send_idempotent(&mut self, req_id: u64, request: &str) -> Result<String, ClientError> {
        debug_assert_ne!(req_id, 0, "0 means 'no request id' on the wire");
        let line = format!("@{req_id} {request}");
        self.send_with_retry(&line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_hint_extraction() {
        assert_eq!(
            busy_retry_ms("{\"status\":\"busy\",\"retry_after_ms\":25}"),
            Some(25)
        );
        assert_eq!(busy_retry_ms("{\"status\":\"ok\"}"), None);
    }

    #[test]
    fn sealed_sheds_are_recognized_as_retryable() {
        assert!(is_sealed(
            "{\"status\":\"error\",\"code\":\"sealed\",\
             \"message\":\"write lease lapsed; retry\"}"
        ));
        assert!(!is_sealed("{\"status\":\"ok\"}"));
        assert!(!is_sealed(
            "{\"status\":\"error\",\"code\":\"not_leader\",\
             \"message\":\"not the leader; leader is 10.0.0.1:7000\"}"
        ));
    }

    #[test]
    fn backoff_grows_and_stays_bounded() {
        // No live connection needed: drive the schedule math directly.
        let config = ClientConfig::default();
        let base = config.backoff_base.as_millis() as u64;
        let cap = config.backoff_max.as_millis() as u64;
        let mut jitter = config.jitter_seed;
        let mut prev_exp = 0;
        for attempt in 1..=10u32 {
            let exp = base.saturating_mul(1u64 << attempt.min(16)).min(cap);
            let j = splitmix64(&mut jitter) % (exp / 2 + 1);
            assert!(exp >= prev_exp, "monotone until the cap");
            assert!(exp + j <= cap + cap / 2, "cap plus at most 50% jitter");
            prev_exp = exp;
        }
    }

    #[test]
    fn not_leader_target_extraction() {
        assert_eq!(
            not_leader_target(
                "{\"status\":\"error\",\"code\":\"not_leader\",\
                 \"message\":\"not the leader; leader is 10.0.0.1:7000\"}"
            ),
            Some("10.0.0.1:7000".to_string())
        );
        // A follower that does not know its leader: no redirect loop.
        assert_eq!(
            not_leader_target(
                "{\"status\":\"error\",\"code\":\"not_leader\",\
                 \"message\":\"not the leader; leader is \"}"
            ),
            None
        );
        assert_eq!(not_leader_target("{\"status\":\"ok\"}"), None);
    }

    #[test]
    fn write_to_a_follower_chases_the_redirect_to_the_leader() {
        use crate::repl::ReplHub;
        use crate::server::Server;
        use crate::service::AdmissionService;
        use std::sync::Arc;
        use wormnet_topology::Mesh;

        let leader = Arc::new(AdmissionService::new(Mesh::mesh2d(10, 10)));
        leader.attach_repl(Arc::new(ReplHub::leader()));
        let leader_srv = Server::bind(Arc::clone(&leader), "127.0.0.1:0").unwrap();
        let leader_addr = leader_srv.local_addr().unwrap().to_string();
        let leader_stop = leader_srv.shutdown_handle().unwrap();
        let leader_join = thread::spawn(move || leader_srv.run());

        let follower = Arc::new(AdmissionService::new(Mesh::mesh2d(10, 10)));
        follower.attach_repl(Arc::new(ReplHub::follower(&leader_addr)));
        let follower_srv = Server::bind(Arc::clone(&follower), "127.0.0.1:0").unwrap();
        let follower_addr = follower_srv.local_addr().unwrap().to_string();
        let follower_stop = follower_srv.shutdown_handle().unwrap();
        let follower_join = thread::spawn(move || follower_srv.run());

        // The client dials the follower; the write lands on the leader.
        let mut client = Client::connect(&follower_addr).unwrap();
        let reply = client.send_idempotent(7, "ADMIT 0,0 5,0 2 50 4").unwrap();
        assert!(reply.contains("\"status\":\"admitted\""), "{reply}");
        assert_eq!(leader.admitted_count(), 1);
        assert_eq!(follower.admitted_count(), 0);

        leader_stop.shutdown();
        follower_stop.shutdown();
        leader_join.join().unwrap().unwrap();
        follower_join.join().unwrap().unwrap();
    }

    #[test]
    fn connect_to_nowhere_fails_fast() {
        // Port 1 on loopback: connection refused, well under the
        // connect timeout.
        let started = Instant::now();
        assert!(Client::connect("127.0.0.1:1").is_err());
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}
