//! Deterministic network fault injection: a seeded in-process TCP
//! proxy, the network sibling of [`crate::faultfs::FailpointFile`].
//!
//! The proxy sits between a replication (or client) endpoint and its
//! peer and forwards bytes in both directions. Faults are flipped on a
//! shared [`NetChaosHandle`] — from scenario code, from a timed
//! [`NetSchedule`], or from `rtwc netchaos`'s stdin control channel:
//!
//! - **partition** — both directions blackhole: bytes are read and
//!   discarded, so each side sees a live-but-silent peer (exactly what
//!   a partition looks like to TCP until its own timers fire);
//! - **blackhole up / down** — one direction only, the asymmetric
//!   partition: `up` drops client→target bytes, `down` drops
//!   target→client;
//! - **latency** — a fixed delay added to every forwarded chunk;
//! - **sever** — the current connections are dropped outright (each
//!   side sees a clean disconnect and may reconnect through the still
//!   healthy proxy);
//! - **duplicate** — forwarded chunks are sometimes written twice,
//!   seeded-deterministically, modelling duplicate delivery (the
//!   replication protocol must treat re-sent frames as idempotent).
//!
//! Everything the proxy decides by chance (duplicate delivery) comes
//! from a [splitmix64] stream owned by the handle, so one seed fixes
//! the whole fault pattern: the chaos classes built on the proxy are
//! reproducible run to run.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// One fault action the proxy can apply, either immediately (control
/// channel) or at a scheduled offset ([`NetSchedule`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetAction {
    /// Blackhole both directions.
    Partition,
    /// Blackhole client→target only (the asymmetric partition).
    BlackholeUp,
    /// Blackhole target→client only.
    BlackholeDown,
    /// Clear every fault (latency included).
    Heal,
    /// Drop the current connections; new ones connect normally.
    Sever,
    /// Delay every forwarded chunk by this many milliseconds.
    Latency(u64),
    /// Turn seeded duplicate delivery on or off.
    Duplicate(bool),
}

impl NetAction {
    /// Parses one control word: `partition`, `blackhole-up`,
    /// `blackhole-down`, `heal`, `sever`, `latency <ms>`,
    /// `duplicate on|off`.
    pub fn parse(line: &str) -> Option<NetAction> {
        let mut words = line.split_whitespace();
        let action = match (words.next()?, words.next()) {
            ("partition", None) => NetAction::Partition,
            ("blackhole-up", None) => NetAction::BlackholeUp,
            ("blackhole-down", None) => NetAction::BlackholeDown,
            ("heal", None) => NetAction::Heal,
            ("sever", None) => NetAction::Sever,
            ("latency", Some(ms)) => NetAction::Latency(ms.parse().ok()?),
            ("duplicate", Some("on")) => NetAction::Duplicate(true),
            ("duplicate", Some("off")) => NetAction::Duplicate(false),
            _ => return None,
        };
        words.next().is_none().then_some(action)
    }
}

/// A timed fault script: offset-stamped actions, applied by a runner
/// thread once the proxy starts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetSchedule {
    /// `(offset from start, action)`, in the order they were written.
    pub steps: Vec<(Duration, NetAction)>,
}

impl NetSchedule {
    /// Parses a schedule of the form
    /// `at 100ms partition; at 500ms heal; at 600ms latency 5`.
    /// Offsets are milliseconds with a mandatory `ms` suffix; steps are
    /// `;`-separated and must be non-decreasing in time.
    pub fn parse(text: &str) -> Result<NetSchedule, String> {
        let mut steps = Vec::new();
        let mut last = Duration::ZERO;
        for step in text.split(';') {
            let step = step.trim();
            if step.is_empty() {
                continue;
            }
            let rest = step
                .strip_prefix("at ")
                .ok_or_else(|| format!("step {step:?}: expected `at <N>ms <action>`"))?;
            let (when, action) = rest
                .split_once(' ')
                .ok_or_else(|| format!("step {step:?}: missing action"))?;
            let ms: u64 = when
                .strip_suffix("ms")
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| format!("step {step:?}: bad offset {when:?}"))?;
            let at = Duration::from_millis(ms);
            if at < last {
                return Err(format!("step {step:?}: offsets must not decrease"));
            }
            last = at;
            let action = NetAction::parse(action)
                .ok_or_else(|| format!("step {step:?}: unknown action {action:?}"))?;
            steps.push((at, action));
        }
        Ok(NetSchedule { steps })
    }
}

/// The shared fault switches every pump thread consults per chunk.
#[derive(Debug)]
struct NetState {
    /// Connection generation: a sever bumps it and every connection
    /// born under an older generation tears down.
    generation: AtomicU64,
    /// Discard client→target bytes.
    drop_up: AtomicBool,
    /// Discard target→client bytes.
    drop_down: AtomicBool,
    /// Added per-chunk delay, microseconds.
    latency_us: AtomicU64,
    /// Seeded duplicate delivery on forwarded chunks.
    duplicate: AtomicBool,
    /// splitmix64 state for every random decision.
    rng: AtomicU64,
    /// Proxy shutdown flag.
    stop: AtomicBool,
}

/// Advances a splitmix64 stream held in an atomic — each caller gets a
/// distinct, deterministic draw regardless of thread interleaving
/// given a fixed per-chunk decision count.
fn splitmix64(state: &AtomicU64) -> u64 {
    let mut z = state
        .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The control half of a running proxy: flips faults atomically; every
/// in-flight connection sees the change on its next chunk.
#[derive(Clone, Debug)]
pub struct NetChaosHandle {
    state: Arc<NetState>,
}

impl NetChaosHandle {
    /// Applies one action.
    pub fn apply(&self, action: NetAction) {
        match action {
            NetAction::Partition => {
                self.state.drop_up.store(true, Ordering::SeqCst);
                self.state.drop_down.store(true, Ordering::SeqCst);
            }
            NetAction::BlackholeUp => self.state.drop_up.store(true, Ordering::SeqCst),
            NetAction::BlackholeDown => self.state.drop_down.store(true, Ordering::SeqCst),
            NetAction::Heal => {
                self.state.drop_up.store(false, Ordering::SeqCst);
                self.state.drop_down.store(false, Ordering::SeqCst);
                self.state.latency_us.store(0, Ordering::SeqCst);
                self.state.duplicate.store(false, Ordering::SeqCst);
            }
            NetAction::Sever => {
                self.state.generation.fetch_add(1, Ordering::SeqCst);
            }
            NetAction::Latency(ms) => self
                .state
                .latency_us
                .store(ms.saturating_mul(1000), Ordering::SeqCst),
            NetAction::Duplicate(on) => self.state.duplicate.store(on, Ordering::SeqCst),
        }
    }

    /// Is either direction currently blackholed?
    pub fn faulted(&self) -> bool {
        self.state.drop_up.load(Ordering::SeqCst) || self.state.drop_down.load(Ordering::SeqCst)
    }
}

/// A running fault-injection proxy. Dropping it without
/// [`NetChaos::stop`] detaches the threads (they exit with the
/// process).
#[derive(Debug)]
pub struct NetChaos {
    handle: NetChaosHandle,
    addr: SocketAddr,
    accept: Option<thread::JoinHandle<()>>,
}

impl NetChaos {
    /// Starts proxying `listener` to `target` under `seed`. Bind the
    /// listener to port 0 and read [`NetChaos::addr`] to wire peers
    /// through the proxy.
    pub fn spawn(listener: TcpListener, target: &str, seed: u64) -> io::Result<NetChaos> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(NetState {
            generation: AtomicU64::new(0),
            drop_up: AtomicBool::new(false),
            drop_down: AtomicBool::new(false),
            latency_us: AtomicU64::new(0),
            duplicate: AtomicBool::new(false),
            rng: AtomicU64::new(seed),
            stop: AtomicBool::new(false),
        });
        let accept_state = Arc::clone(&state);
        let target = target.to_string();
        let accept = thread::Builder::new()
            .name("netchaos".to_string())
            .spawn(move || accept_loop(&listener, &target, &accept_state))?;
        Ok(NetChaos {
            handle: NetChaosHandle { state },
            addr,
            accept: Some(accept),
        })
    }

    /// The proxy's listening address (point peers here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The control handle (cloneable; share it with a schedule runner
    /// or a control thread).
    pub fn handle(&self) -> NetChaosHandle {
        self.handle.clone()
    }

    /// Spawns a thread that applies `schedule` relative to now.
    pub fn run_schedule(&self, schedule: NetSchedule) -> thread::JoinHandle<()> {
        let handle = self.handle();
        let state = Arc::clone(&self.handle.state);
        thread::spawn(move || {
            let start = std::time::Instant::now();
            for (at, action) in schedule.steps {
                while start.elapsed() < at {
                    if state.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    thread::sleep(Duration::from_millis(2));
                }
                handle.apply(action);
            }
        })
    }

    /// Stops accepting, tears every connection down, and joins.
    pub fn stop(mut self) {
        self.handle.state.stop.store(true, Ordering::SeqCst);
        // A sever makes in-flight pumps notice the stop promptly.
        self.handle.apply(NetAction::Sever);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, target: &str, state: &Arc<NetState>) {
    let mut pumps: Vec<thread::JoinHandle<()>> = Vec::new();
    while !state.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let Ok(upstream) = TcpStream::connect(target) else {
                    // The target is down: drop the client (it sees a
                    // refused/closed connection, as it would without
                    // the proxy in the middle).
                    continue;
                };
                let born = state.generation.load(Ordering::SeqCst);
                let _ = client.set_nodelay(true);
                let _ = upstream.set_nodelay(true);
                let (Ok(c2), Ok(u2)) = (client.try_clone(), upstream.try_clone()) else {
                    continue;
                };
                let up_state = Arc::clone(state);
                let down_state = Arc::clone(state);
                let up = thread::spawn(move || pump(&client, &u2, &up_state, born, true));
                let down = thread::spawn(move || pump(&upstream, &c2, &down_state, born, false));
                pumps.push(up);
                pumps.push(down);
                pumps.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
    for h in pumps {
        let _ = h.join();
    }
}

/// Forwards one direction until EOF, an IO error, a sever (generation
/// bump), or proxy stop. Blackholed chunks are read *and discarded*:
/// the sender's TCP keeps flowing, exactly like a partitioned-but-up
/// peer, rather than backpressuring into a blocked write.
fn pump(from: &TcpStream, to: &TcpStream, state: &Arc<NetState>, born: u64, up: bool) {
    let mut from = from;
    let mut to = to;
    let _ = from.set_read_timeout(Some(Duration::from_millis(20)));
    let mut buf = [0u8; 16 * 1024];
    loop {
        if state.stop.load(Ordering::SeqCst) || state.generation.load(Ordering::SeqCst) != born {
            // Severed: drop both halves so each side sees a clean
            // disconnect.
            let _ = from.shutdown(std::net::Shutdown::Both);
            let _ = to.shutdown(std::net::Shutdown::Both);
            return;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => {
                let _ = to.shutdown(std::net::Shutdown::Both);
                return;
            }
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => {
                let _ = to.shutdown(std::net::Shutdown::Both);
                return;
            }
        };
        let dropped = if up {
            state.drop_up.load(Ordering::SeqCst)
        } else {
            state.drop_down.load(Ordering::SeqCst)
        };
        if dropped {
            continue;
        }
        let latency = state.latency_us.load(Ordering::SeqCst);
        if latency > 0 {
            thread::sleep(Duration::from_micros(latency));
        }
        if to.write_all(&buf[..n]).is_err() {
            let _ = from.shutdown(std::net::Shutdown::Both);
            return;
        }
        if state.duplicate.load(Ordering::SeqCst)
            && splitmix64(&state.rng) & 1 == 0
            && to.write_all(&buf[..n]).is_err()
        {
            let _ = from.shutdown(std::net::Shutdown::Both);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// An echo server that uppercases, so direction is observable.
    fn echo_upper() -> (SocketAddr, thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = thread::spawn(move || {
            while let Ok((mut s, _)) = listener.accept() {
                let mut buf = [0u8; 1024];
                loop {
                    match s.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            let out: Vec<u8> =
                                buf[..n].iter().map(u8::to_ascii_uppercase).collect();
                            if s.write_all(&out).is_err() {
                                break;
                            }
                        }
                    }
                }
            }
        });
        (addr, h)
    }

    fn roundtrip(s: &mut TcpStream, msg: &[u8]) -> io::Result<Vec<u8>> {
        s.write_all(msg)?;
        let mut got = vec![0u8; msg.len()];
        s.read_exact(&mut got)?;
        Ok(got)
    }

    #[test]
    fn proxy_passes_bytes_until_partitioned_and_heals() {
        let (target, _srv) = echo_upper();
        let proxy = NetChaos::spawn(
            TcpListener::bind("127.0.0.1:0").unwrap(),
            &target.to_string(),
            7,
        )
        .unwrap();
        let mut s = TcpStream::connect(proxy.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        assert_eq!(roundtrip(&mut s, b"hello").unwrap(), b"HELLO");

        proxy.handle().apply(NetAction::Partition);
        assert!(proxy.handle().faulted());
        s.write_all(b"lost").unwrap();
        let mut buf = [0u8; 4];
        let err = s.read_exact(&mut buf).unwrap_err();
        assert!(
            matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut),
            "partitioned reads must time out, got {err:?}"
        );

        // Heal: the same connection flows again (the partition never
        // tore TCP down, exactly like a real one).
        proxy.handle().apply(NetAction::Heal);
        assert!(!proxy.handle().faulted());
        assert_eq!(roundtrip(&mut s, b"back!").unwrap(), b"BACK!");
        proxy.stop();
    }

    #[test]
    fn one_way_blackhole_is_asymmetric() {
        let (target, _srv) = echo_upper();
        let proxy = NetChaos::spawn(
            TcpListener::bind("127.0.0.1:0").unwrap(),
            &target.to_string(),
            7,
        )
        .unwrap();
        let mut s = TcpStream::connect(proxy.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        assert_eq!(roundtrip(&mut s, b"ok").unwrap(), b"OK");

        // Down blackhole: requests reach the echo server (its replies
        // are discarded), so after healing only the *new* request is
        // answered — the reply to the dropped one is gone for good.
        proxy.handle().apply(NetAction::BlackholeDown);
        s.write_all(b"x").unwrap();
        let mut one = [0u8; 1];
        assert!(s.read_exact(&mut one).is_err(), "reply must be dropped");
        proxy.handle().apply(NetAction::Heal);
        assert_eq!(roundtrip(&mut s, b"y").unwrap(), b"Y");
        proxy.stop();
    }

    #[test]
    fn sever_drops_connections_but_new_ones_reconnect() {
        let (target, _srv) = echo_upper();
        let proxy = NetChaos::spawn(
            TcpListener::bind("127.0.0.1:0").unwrap(),
            &target.to_string(),
            7,
        )
        .unwrap();
        let mut s = TcpStream::connect(proxy.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        assert_eq!(roundtrip(&mut s, b"a").unwrap(), b"A");
        proxy.handle().apply(NetAction::Sever);
        // The severed connection dies (EOF or reset within the pump's
        // poll interval); a fresh one works.
        let mut one = [0u8; 1];
        let dead = s.read_exact(&mut one).is_err();
        assert!(dead, "severed connection must die");
        let mut s2 = TcpStream::connect(proxy.addr()).unwrap();
        s2.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        assert_eq!(roundtrip(&mut s2, b"b").unwrap(), b"B");
        proxy.stop();
    }

    #[test]
    fn schedule_parses_and_rejects_malformed_scripts() {
        let sched =
            NetSchedule::parse("at 100ms partition; at 500ms heal; at 600ms latency 5").unwrap();
        assert_eq!(
            sched.steps,
            vec![
                (Duration::from_millis(100), NetAction::Partition),
                (Duration::from_millis(500), NetAction::Heal),
                (Duration::from_millis(600), NetAction::Latency(5)),
            ]
        );
        assert_eq!(NetSchedule::parse("").unwrap().steps, vec![]);
        assert!(NetSchedule::parse("at 100ms warp-drive").is_err());
        assert!(NetSchedule::parse("at 100 partition").is_err());
        assert!(NetSchedule::parse("partition").is_err());
        assert!(
            NetSchedule::parse("at 500ms heal; at 100ms partition").is_err(),
            "offsets must not decrease"
        );
        // Control words parse standalone too (the stdin channel).
        assert_eq!(
            NetAction::parse("duplicate on"),
            Some(NetAction::Duplicate(true))
        );
        assert_eq!(
            NetAction::parse("blackhole-up"),
            Some(NetAction::BlackholeUp)
        );
        assert_eq!(NetAction::parse("latency abc"), None);
        assert_eq!(NetAction::parse("partition now please"), None);
    }

    #[test]
    fn seeded_duplicates_are_deterministic() {
        // The rng stream is fixed by the seed: the same draw sequence
        // decides duplication run after run.
        let a = AtomicU64::new(42);
        let b = AtomicU64::new(42);
        let draws_a: Vec<u64> = (0..16).map(|_| splitmix64(&a)).collect();
        let draws_b: Vec<u64> = (0..16).map(|_| splitmix64(&b)).collect();
        assert_eq!(draws_a, draws_b);
        assert!(draws_a.iter().any(|d| d & 1 == 0));
        assert!(draws_a.iter().any(|d| d & 1 == 1));
    }
}
