//! The WAL device abstraction and the fault-injecting wrapper behind
//! `rtwc chaos`.
//!
//! The write-ahead log talks to its backing file only through the
//! [`WalFile`] trait, so the chaos harness can interpose a
//! [`FailpointFile`] that injects the failure classes real storage
//! exhibits:
//!
//! - **torn write** — a partial append that *reports* the error
//!   (`write` returned short / EIO mid-record);
//! - **short write** — a partial append that lies and reports success
//!   (lost page-cache tail, firmware bugs) — only detectable at
//!   recovery time via the record CRC;
//! - **fsync error** — `fsync` fails (thinly-provisioned volume, dying
//!   device); under `--fsync always` the op must not be acknowledged;
//! - **kill-9 truncation** — the file simply ends mid-record, injected
//!   by truncating at an arbitrary byte offset before recovery.
//!
//! Injection is counter-based and deterministic: a [`FaultPlan`] names
//! the 1-based append/sync call to fail, and the shared [`FaultState`]
//! records whether (and where) the fault fired so the harness knows the
//! exact acked-op prefix that must survive.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The file operations the WAL needs. Implemented by [`RealFile`]
/// (plain `std::fs`) and [`FailpointFile`] (fault injection).
#[allow(clippy::len_without_is_empty)] // a device length, not a collection
pub trait WalFile: Send + Sync + fmt::Debug {
    /// Reads the whole file from the start. Leaves the cursor at EOF.
    fn read_all(&mut self) -> io::Result<Vec<u8>>;
    /// Appends `buf` at the end of the file.
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes file data to stable storage (`fdatasync`-equivalent).
    fn sync(&mut self) -> io::Result<()>;
    /// Truncates the file to `len` bytes and re-seeks to the new end.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
    /// Current file length in bytes.
    fn len(&mut self) -> io::Result<u64>;
}

/// A real file on disk, opened read+append-at-end.
pub struct RealFile {
    file: File,
}

impl fmt::Debug for RealFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RealFile").finish_non_exhaustive()
    }
}

impl RealFile {
    /// Opens (creating if absent) `path` for read + write.
    pub fn open(path: &Path) -> io::Result<RealFile> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(RealFile { file })
    }
}

impl WalFile for RealFile {
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        self.file.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::End(0))?;
        Ok(())
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

/// An in-memory [`WalFile`] with a **synced-bytes watermark**: `sync`
/// advances the watermark to the current length, and
/// [`MemFile::synced_bytes`] exposes the prefix a crash at any moment
/// would preserve. Cloning yields a second handle onto the same
/// storage, so a test (or a loom model) holds an observer handle while
/// the WAL owns the other and can reconstruct the post-crash file with
/// [`MemFile::from_bytes`] at any point.
///
/// The interior mutex is a plain `std` one even under `--cfg loom`:
/// every access happens under the WAL's own (loom-instrumented) file
/// lock or after the threads joined, so it is never contended at a
/// model schedule point — it exists only to make the cheap `Clone`
/// sharing possible.
#[derive(Clone, Debug, Default)]
pub struct MemFile {
    state: Arc<std::sync::Mutex<MemState>>,
}

#[derive(Debug, Default)]
struct MemState {
    data: Vec<u8>,
    synced_len: usize,
    syncs: u64,
    /// Fail sync call `n` (1-based) and every later one, as in
    /// [`FaultPlan::fail_sync_from`].
    fail_sync_from: Option<u64>,
}

impl MemFile {
    /// An empty in-memory file.
    pub fn new() -> MemFile {
        MemFile::default()
    }

    /// A file pre-loaded with `data` (all of it already durable) — the
    /// "reopen after crash" constructor.
    pub fn from_bytes(data: Vec<u8>) -> MemFile {
        let synced_len = data.len();
        MemFile {
            state: Arc::new(std::sync::Mutex::new(MemState {
                data,
                synced_len,
                syncs: 0,
                fail_sync_from: None,
            })),
        }
    }

    /// Makes sync call `n` (1-based) and every later one fail — the
    /// in-memory analogue of a dying device.
    pub fn fail_sync_from(&self, n: u64) {
        self.lock().fail_sync_from = Some(n);
    }

    /// The bytes a crash right now would preserve (everything up to the
    /// last successful sync).
    pub fn synced_bytes(&self) -> Vec<u8> {
        let s = self.lock();
        s.data[..s.synced_len].to_vec()
    }

    /// The whole current contents, durable or not.
    pub fn bytes(&self) -> Vec<u8> {
        self.lock().data.clone()
    }

    /// Successful or failed sync calls so far.
    pub fn syncs(&self) -> u64 {
        self.lock().syncs
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl WalFile for MemFile {
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        Ok(self.lock().data.clone())
    }

    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.lock().data.extend_from_slice(buf);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut s = self.lock();
        s.syncs += 1;
        if let Some(from) = s.fail_sync_from {
            if s.syncs >= from {
                return Err(injected("fsync error"));
            }
        }
        s.synced_len = s.data.len();
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let mut s = self.lock();
        s.data.truncate(len as usize);
        s.synced_len = s.synced_len.min(s.data.len());
        Ok(())
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.lock().data.len() as u64)
    }
}

/// What to inject, keyed by 1-based call counts. `None` fields never
/// fire. At most one append fault fires per plan (whichever call count
/// is reached first).
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultPlan {
    /// On append call `n`, write only `keep` bytes and return an error
    /// (a detected torn write — the caller can roll back).
    pub torn_append: Option<(u64, usize)>,
    /// On append call `n`, write only `keep` bytes but report success
    /// (a lying disk — detectable only by the recovery CRC scan).
    pub short_append: Option<(u64, usize)>,
    /// Fail sync call `n` and every later sync (a dying device).
    pub fail_sync_from: Option<u64>,
    /// Stretch every sync by this long (a slow device). Not a failure:
    /// the latency failpoint lets the chaos harness force concurrent
    /// writers to pile up behind the group-commit leader so a
    /// mid-batch crash is actually mid-*batch*.
    pub sync_delay: Option<std::time::Duration>,
}

/// Shared observation point: which call counters have advanced and
/// whether a planned fault has fired.
#[derive(Debug, Default)]
pub struct FaultState {
    appends: AtomicU64,
    syncs: AtomicU64,
    fired: AtomicBool,
}

impl FaultState {
    /// Appends attempted so far.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::SeqCst)
    }

    /// Syncs attempted so far.
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::SeqCst)
    }

    /// True once any planned fault has been injected.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }
}

/// A [`WalFile`] that delegates to a [`RealFile`] but injects the
/// faults described by its [`FaultPlan`].
#[derive(Debug)]
pub struct FailpointFile {
    inner: RealFile,
    plan: FaultPlan,
    state: Arc<FaultState>,
}

impl FailpointFile {
    /// Wraps the file at `path` with `plan`; `state` is the shared
    /// observation handle.
    pub fn open(path: &Path, plan: FaultPlan, state: Arc<FaultState>) -> io::Result<FailpointFile> {
        Ok(FailpointFile {
            inner: RealFile::open(path)?,
            plan,
            state,
        })
    }
}

fn injected(kind: &str) -> io::Error {
    io::Error::other(format!("injected fault: {kind}"))
}

impl WalFile for FailpointFile {
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.inner.read_all()
    }

    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        let n = self.state.appends.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some((at, keep)) = self.plan.torn_append {
            if n == at {
                self.state.fired.store(true, Ordering::SeqCst);
                self.inner.append(&buf[..keep.min(buf.len())])?;
                return Err(injected("torn write"));
            }
        }
        if let Some((at, keep)) = self.plan.short_append {
            if n == at {
                self.state.fired.store(true, Ordering::SeqCst);
                // The lie: partial data, successful return.
                return self.inner.append(&buf[..keep.min(buf.len())]);
            }
        }
        self.inner.append(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        if let Some(d) = self.plan.sync_delay {
            std::thread::sleep(d);
        }
        let n = self.state.syncs.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(from) = self.plan.fail_sync_from {
            if n >= from {
                self.state.fired.store(true, Ordering::SeqCst);
                return Err(injected("fsync error"));
            }
        }
        self.inner.sync()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.inner.truncate(len)
    }

    fn len(&mut self) -> io::Result<u64> {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rtwc-faultfs-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("f.bin")
    }

    #[test]
    fn real_file_round_trips_and_truncates() {
        let path = tmp("real");
        let mut f = RealFile::open(&path).unwrap();
        f.truncate(0).unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.sync().unwrap();
        assert_eq!(f.read_all().unwrap(), b"hello world");
        // Appends after a read still land at the end.
        f.append(b"!").unwrap();
        assert_eq!(f.read_all().unwrap(), b"hello world!");
        f.truncate(5).unwrap();
        assert_eq!(f.read_all().unwrap(), b"hello");
        assert_eq!(f.len().unwrap(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_append_keeps_a_prefix_and_errors() {
        let path = tmp("torn");
        let state = Arc::new(FaultState::default());
        let plan = FaultPlan {
            torn_append: Some((2, 3)),
            ..FaultPlan::default()
        };
        let mut f = FailpointFile::open(&path, plan, Arc::clone(&state)).unwrap();
        f.truncate(0).unwrap();
        f.append(b"aaaa").unwrap();
        let err = f.append(b"bbbb").unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        assert!(state.fired());
        assert_eq!(f.read_all().unwrap(), b"aaaabbb");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_append_lies_about_success() {
        let path = tmp("short");
        let state = Arc::new(FaultState::default());
        let plan = FaultPlan {
            short_append: Some((1, 2)),
            ..FaultPlan::default()
        };
        let mut f = FailpointFile::open(&path, plan, Arc::clone(&state)).unwrap();
        f.truncate(0).unwrap();
        f.append(b"zzzz").unwrap(); // reports Ok, writes "zz"
        assert!(state.fired());
        assert_eq!(f.read_all().unwrap(), b"zz");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mem_file_watermark_tracks_syncs() {
        let observer = MemFile::new();
        let mut f = observer.clone();
        f.append(b"aaaa").unwrap();
        assert_eq!(observer.synced_bytes(), b"", "nothing durable yet");
        f.sync().unwrap();
        assert_eq!(observer.synced_bytes(), b"aaaa");
        f.append(b"bbbb").unwrap();
        assert_eq!(observer.synced_bytes(), b"aaaa", "tail not synced");
        assert_eq!(observer.bytes(), b"aaaabbbb");
        // Truncating below the watermark pulls it back.
        f.truncate(2).unwrap();
        assert_eq!(observer.synced_bytes(), b"aa");
        // A dying device: the watermark stops advancing.
        observer.fail_sync_from(2);
        f.append(b"cc").unwrap();
        assert!(f.sync().is_err());
        assert_eq!(observer.synced_bytes(), b"aa");
        assert_eq!(observer.syncs(), 2);
    }

    #[test]
    fn sync_failures_start_at_the_planned_call_and_persist() {
        let path = tmp("sync");
        let state = Arc::new(FaultState::default());
        let plan = FaultPlan {
            fail_sync_from: Some(2),
            ..FaultPlan::default()
        };
        let mut f = FailpointFile::open(&path, plan, Arc::clone(&state)).unwrap();
        f.sync().unwrap();
        assert!(!state.fired());
        assert!(f.sync().is_err());
        assert!(f.sync().is_err(), "a dying device stays dead");
        assert_eq!(state.syncs(), 3);
        std::fs::remove_file(&path).ok();
    }
}
