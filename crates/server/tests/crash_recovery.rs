//! Crash-recovery properties of the durable service.
//!
//! The headline property: **a crash at ANY byte offset of the WAL
//! recovers to a state bit-identical to a serial replay of the
//! surviving acknowledged prefix.** The history is generated once
//! through the real durable service; each proptest case then truncates
//! a copy of the log at an arbitrary offset and runs full recovery.
//!
//! Also here: the end-to-end idempotency guarantee — a duplicate
//! `@REQID ADMIT` over TCP returns the original outcome and does not
//! create a second stream.

use proptest::prelude::*;
use rtwc_core::StreamId;
use rtwc_server::{
    recover, replay, AcceptedOp, AdmissionService, Client, Durability, FsyncPolicy, GroupWal,
    Request, Response, Server,
};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::thread;
use wormnet_topology::{Mesh, Topology};

const WAL_HEADER_BYTES: usize = 16;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtwc-crashrec-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn mesh() -> Mesh {
    Mesh::mesh2d(10, 10)
}

/// Drives a real durable service once and returns the raw WAL bytes
/// plus the acknowledged operations, in order. Cached: every proptest
/// case cuts the same history at a different offset.
fn history() -> &'static (Vec<u8>, Vec<AcceptedOp>) {
    static HISTORY: OnceLock<(Vec<u8>, Vec<AcceptedOp>)> = OnceLock::new();
    HISTORY.get_or_init(|| {
        let dir = tmpdir("history");
        let m = mesh();
        let (state, wal, _) = recover(&m, &dir, FsyncPolicy::Never).unwrap();
        let service = AdmissionService::with_durability(
            m.clone(),
            state,
            Durability {
                dir: dir.clone(),
                wal: GroupWal::new(wal),
                snapshot_every: 0,
            },
        );
        let mut acked = Vec::new();
        let mut owned: Vec<u64> = Vec::new();
        for i in 0..14u64 {
            let row = (i % 9) as u32;
            if i % 5 == 4 {
                let victim = owned[owned.len() / 2];
                match service.handle(&Request::Remove {
                    req_id: 100 + i,
                    id: victim,
                }) {
                    Response::Removed { id } => {
                        acked.push(AcceptedOp::Remove { handle: id });
                        owned.retain(|&h| h != id);
                    }
                    other => panic!("remove refused: {other:?}"),
                }
            } else {
                let resp = service.handle(&Request::Admit {
                    req_id: 100 + i,
                    src: (0, row),
                    dst: (5 + (i % 4) as u32, row),
                    priority: 1 + (i % 4) as u32,
                    period: 150 + 13 * i,
                    length: 2 + i % 5,
                    deadline: None,
                });
                match resp {
                    Response::Admitted { id, .. } => {
                        let spec = rtwc_core::StreamSpec::new(
                            m.node_at(&[0, row]).unwrap(),
                            m.node_at(&[5 + (i % 4) as u32, row]).unwrap(),
                            1 + (i % 4) as u32,
                            150 + 13 * i,
                            2 + i % 5,
                            150 + 13 * i,
                        );
                        acked.push(AcceptedOp::Admit { handle: id, spec });
                        owned.push(id);
                    }
                    other => panic!("admit refused: {other:?}"),
                }
            }
        }
        service.flush();
        drop(service);
        let bytes = std::fs::read(dir.join("wal.log")).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        (bytes, acked)
    })
}

/// `(handle, bound)` pairs for a serial replay of `ops`, dense order.
fn serial_pairs(ops: &[AcceptedOp]) -> Vec<(u64, u64)> {
    let arcs: Vec<Arc<AcceptedOp>> = ops.iter().cloned().map(Arc::new).collect();
    let ctl = replay(&mesh(), &arcs).unwrap();
    let mut handles: Vec<u64> = Vec::new();
    for op in ops {
        match op {
            AcceptedOp::Admit { handle, .. } => handles.push(*handle),
            AcceptedOp::Remove { handle } => {
                let i = handles.iter().position(|h| h == handle).unwrap();
                handles.remove(i);
            }
        }
    }
    handles
        .iter()
        .enumerate()
        .map(|(i, &h)| (h, ctl.bound(StreamId(i as u32)).value().unwrap()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Crash anywhere: recovery lands exactly on the serial replay of
    /// whatever acked prefix physically survived — never a hole, never
    /// a divergent bound, never a silent acceptance of garbage.
    #[test]
    fn crash_at_any_wal_byte_offset_recovers_the_serial_prefix(cut_frac in 0u64..=10_000) {
        let (bytes, acked) = history();
        let cut = (cut_frac as usize * bytes.len()) / 10_000;
        let dir = tmpdir(&format!("cut-{cut}"));
        std::fs::write(dir.join("wal.log"), &bytes[..cut]).unwrap();
        let result = recover(&mesh(), &dir, FsyncPolicy::Always);
        if cut == 0 {
            // An empty file is a fresh log, not a crash artifact.
            let (state, _, _) = result.unwrap();
            prop_assert!(state.handles.is_empty());
        } else if cut < WAL_HEADER_BYTES {
            // A torn header is unrecoverable and must be *reported*,
            // not silently treated as an empty history.
            prop_assert!(result.is_err());
        } else {
            let (state, _, report) = result.unwrap();
            let survived = report.wal_records;
            prop_assert!(survived <= acked.len());
            let expected = serial_pairs(&acked[..survived]);
            let got: Vec<(u64, u64)> = state
                .handles
                .iter()
                .enumerate()
                .map(|(i, &h)| {
                    (h, state.ctl.bound(StreamId(i as u32)).value().unwrap())
                })
                .collect();
            prop_assert_eq!(got, expected, "cut at byte {} of {}", cut, bytes.len());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The end-to-end idempotency guarantee: a duplicate `@REQID ADMIT`
/// over TCP (the client's retry after a lost acknowledgement) returns
/// the original outcome verbatim and leaves the admitted set and the
/// accepted-op count untouched.
#[test]
fn duplicate_admit_request_id_replays_the_original_outcome() {
    let service = Arc::new(AdmissionService::new(mesh()));
    let server = Server::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let server_thread = thread::spawn(move || server.run());

    let mut client = Client::connect(&addr).unwrap();
    let first = client.send_idempotent(7, "ADMIT 0,0 5,0 2 50 4").unwrap();
    assert!(first.contains("\"status\":\"admitted\""), "{first}");
    let accepted_before = service.seq();
    let streams_before = service.admitted_count();

    // The retry: same request id, bit-identical answer, no new stream.
    let second = client.send_idempotent(7, "ADMIT 0,0 5,0 2 50 4").unwrap();
    assert_eq!(first, second, "replay must be the original outcome");
    assert_eq!(service.seq(), accepted_before, "no new accepted op");
    assert_eq!(service.admitted_count(), streams_before);
    let stats = client.send("STATS").unwrap();
    assert!(stats.contains("\"streams\":1"), "{stats}");
    // The accepted-op counter sees one fresh admission; the retry is
    // accounted separately as a replay.
    assert!(stats.contains("\"admitted\":1"), "{stats}");
    assert!(stats.contains("\"replayed\":1"), "{stats}");

    // Reusing the id for a *different* kind is refused, not replayed.
    let reuse = client.send("@7 REMOVE 0").unwrap();
    assert!(reuse.contains("\"code\":\"req_id_reuse\""), "{reuse}");

    // A fresh id still admits normally.
    let third = client.send_idempotent(8, "ADMIT 0,1 5,1 2 50 4").unwrap();
    assert!(third.contains("\"status\":\"admitted\""), "{third}");
    assert_eq!(service.admitted_count(), streams_before + 1);

    client.send("SHUTDOWN").unwrap();
    server_thread.join().unwrap().unwrap();
}
