use rtwc_server::faultfs::RealFile;
use rtwc_server::group_commit::GroupWal;
use rtwc_server::service::AcceptedOp;
use rtwc_server::wal::{FsyncPolicy, Wal, WAL_FILE};
use rtwc_core::StreamSpec;
use wormnet_topology::NodeId;

#[test]
fn groupwal_seq_after_reopen_with_records() {
    let dir = std::env::temp_dir().join(format!("seq-probe-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(WAL_FILE);
    let (mut wal, _) = Wal::open(Box::new(RealFile::open(&path).unwrap()), FsyncPolicy::Always).unwrap();
    for i in 0..3u64 {
        let op = AcceptedOp::Admit {
            handle: i,
            spec: StreamSpec::new(NodeId(i as u32), NodeId(i as u32 + 1), 2, 50, 4, 50),
        };
        wal.append(0, &op).unwrap();
    }
    assert_eq!(wal.seq(), 3);
    drop(wal);
    // Reopen (simulating recovery) and wrap in GroupWal.
    let (wal, opened) = Wal::open(Box::new(RealFile::open(&path).unwrap()), FsyncPolicy::Always).unwrap();
    assert_eq!(opened.records.len(), 3);
    assert_eq!(wal.seq(), 3, "raw wal seq correct");
    let gc = GroupWal::new(wal);
    // The next append should be operation 4 => seq() should be 3.
    assert_eq!(gc.seq(), 3, "GroupWal seq must match recovered history");
}
