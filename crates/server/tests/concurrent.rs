//! Concurrent admission soundness: N client threads fire interleaved
//! `ADMIT` / `REMOVE` / `QUERY` traffic at one server, and the final
//! admitted set must be **bit-identical** to a serial replay of the
//! accepted operations — admission decisions are serializable even
//! though queries run concurrently under the shared lock.

use rtwc_core::{DelayBound, StreamId, StreamSpec};
use rtwc_server::faultfs::RealFile;
use rtwc_server::service::AcceptedOp;
use rtwc_server::wal::WAL_FILE;
use rtwc_server::{
    replay, AdmissionService, Client, FsyncPolicy, GroupWal, Server, ServerConfig, Wal,
};
use std::sync::Arc;
use std::thread;
use wormnet_topology::{Mesh, NodeId};

fn extract_u64(json: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `key` out of a nested `"block":{...}` object of `json`.
fn extract_block_u64(json: &str, block: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{block}\":{{");
    let start = json.find(&pat)? + pat.len();
    let inner = &json[start..start + json[start..].find('}')?];
    extract_u64(inner, key)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The shared body: N client threads fire interleaved traffic, then
/// the final state must equal both a serial replay of the journal and
/// a from-scratch offline rebuild. `optimistic` turns on the
/// validate-then-commit concurrent admission path (with a multi-worker
/// server so admissions actually overlap).
fn interleaved_traffic_serializes(optimistic: bool) {
    const CLIENTS: usize = 8;
    const OPS: usize = 120;
    let mut svc = AdmissionService::new(Mesh::mesh2d(10, 10));
    svc.set_optimistic(optimistic);
    let service = Arc::new(svc);
    let server = Server::bind_with_config(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 0,
            workers: if optimistic { 4 } else { 0 },
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle().unwrap();
    let server_thread = thread::spawn(move || server.run());

    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let addr = addr.clone();
            thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let mut rng = 0x00c0_ffee ^ (i as u64) << 17;
                let mut own: Vec<u64> = Vec::new();
                for _ in 0..OPS {
                    let roll = splitmix64(&mut rng) % 10;
                    if roll < 5 || own.is_empty() {
                        // Random admit; rejections are expected and fine.
                        let sx = splitmix64(&mut rng) % 10;
                        let sy = splitmix64(&mut rng) % 10;
                        let mut dx = splitmix64(&mut rng) % 10;
                        let dy = splitmix64(&mut rng) % 10;
                        if (dx, dy) == (sx, sy) {
                            dx = (dx + 1) % 10;
                        }
                        let pr = 1 + splitmix64(&mut rng) % 4;
                        let period = 50 + splitmix64(&mut rng) % 400;
                        let len = 2 + splitmix64(&mut rng) % 6;
                        let reply = c
                            .send(&format!("ADMIT {sx},{sy} {dx},{dy} {pr} {period} {len}"))
                            .unwrap();
                        if reply.contains("\"status\":\"admitted\"") {
                            own.push(extract_u64(&reply, "id").unwrap());
                        }
                    } else if roll < 7 {
                        let idx = (splitmix64(&mut rng) % own.len() as u64) as usize;
                        let h = own.swap_remove(idx);
                        let reply = c.send(&format!("REMOVE {h}")).unwrap();
                        assert!(
                            reply.contains("\"status\":\"removed\""),
                            "own handle must remove cleanly: {reply}"
                        );
                    } else {
                        // Query a random own handle; it must still be
                        // admitted (only this client removes it) and
                        // its bound must respect the deadline.
                        let h = own[(splitmix64(&mut rng) % own.len() as u64) as usize];
                        let reply = c.send(&format!("QUERY {h}")).unwrap();
                        assert!(reply.contains("\"status\":\"ok\""), "{reply}");
                        let bound = extract_u64(&reply, "bound").unwrap();
                        let deadline = extract_u64(&reply, "deadline").unwrap();
                        assert!(bound <= deadline, "served bound violates deadline: {reply}");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // Serial replay of the accepted-op journal must reproduce the live
    // bounds bit for bit, in the same (dense) order.
    let live = service.bounds_by_handle();
    assert!(!live.is_empty(), "workload should leave streams admitted");
    let replayed = replay(service.mesh(), &service.ops()).unwrap();
    assert_eq!(replayed.len(), live.len());
    for (i, &(handle, bound)) in live.iter().enumerate() {
        assert_eq!(
            replayed.bound(StreamId(i as u32)),
            DelayBound::Bounded(bound),
            "handle {handle} diverged from serial replay"
        );
    }

    // And the served bounds must equal a fresh offline analysis — the
    // from-scratch rebuild agrees with both the live state and the
    // replay above.
    let audited = service.audit().expect("offline audit");
    assert_eq!(audited, live.len());

    // Histogram split: every request lands in the total latency
    // histogram; only worker-queued ones additionally record a queue
    // wait, and each recorded wait is a slice of some total, so the
    // tail of the total histogram dominates both splits.
    let stats = Client::connect(&addr).unwrap().send("STATS").unwrap();
    let total = extract_block_u64(&stats, "latency_us", "count").unwrap();
    let queued = extract_block_u64(&stats, "queue_us", "count").unwrap();
    assert!(
        total >= (CLIENTS * OPS) as u64,
        "every request must be observed: {stats}"
    );
    // Admission work always runs off the reactor (workers: 0 means
    // one per core), so the queued path carries the traffic.
    assert!(
        queued > 0,
        "worker pool active, queued path unused: {stats}"
    );
    assert!(queued <= total, "{stats}");
    let max_total = extract_block_u64(&stats, "latency_us", "max").unwrap();
    assert!(
        extract_block_u64(&stats, "queue_us", "max").unwrap() <= max_total,
        "{stats}"
    );
    assert!(
        extract_block_u64(&stats, "service_us", "max").unwrap() <= max_total,
        "{stats}"
    );

    handle.shutdown();
    server_thread.join().unwrap().unwrap();
}

#[test]
fn concurrent_clients_serialize_to_an_identical_replay() {
    interleaved_traffic_serializes(false);
}

/// Same soundness bar with the optimistic concurrent-admission path
/// on: admits with disjoint link-set neighborhoods validate under the
/// shared lock and commit without re-analysis, yet the final state is
/// still bit-identical to serial replay and a from-scratch rebuild.
#[test]
fn optimistic_concurrent_admission_matches_serial_replay() {
    interleaved_traffic_serializes(true);
}

/// A [`GroupWal`] wrapped around a *reopened* log must serve the full
/// history's sequence number, not just this process's appends — the
/// leader/follower ticket math and snapshot `seq` stamps both build on
/// it. (Regression test: `GroupWal::new` used to subtract the reopened
/// records from `Wal::seq`, double-discounting them.)
#[test]
fn groupwal_seq_counts_reopened_records() {
    let dir = std::env::temp_dir().join(format!("rtwc-seq-probe-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(WAL_FILE);

    let open = || {
        Wal::open(
            Box::new(RealFile::open(&path).unwrap()),
            FsyncPolicy::Always,
        )
    };
    let (mut wal, _) = open().unwrap();
    for i in 0..3u64 {
        let op = AcceptedOp::Admit {
            handle: i,
            spec: StreamSpec::new(NodeId(i as u32), NodeId(i as u32 + 1), 2, 50, 4, 50),
        };
        wal.append(0, &op).unwrap();
    }
    assert_eq!(wal.seq(), 3);
    drop(wal);

    // Reopen (simulating recovery) and wrap in the group committer:
    // the next append must become operation 4.
    let (wal, opened) = open().unwrap();
    assert_eq!(opened.records.len(), 3);
    assert_eq!(wal.seq(), 3, "raw wal seq counts the reopened history");
    let gc = GroupWal::new(wal);
    assert_eq!(gc.seq(), 3, "GroupWal seq must match the recovered history");

    let _ = std::fs::remove_dir_all(&dir);
}
