//! Concurrent admission soundness: N client threads fire interleaved
//! `ADMIT` / `REMOVE` / `QUERY` traffic at one server, and the final
//! admitted set must be **bit-identical** to a serial replay of the
//! accepted operations — admission decisions are serializable even
//! though queries run concurrently under the shared lock.

use rtwc_core::{DelayBound, StreamId};
use rtwc_server::{replay, AdmissionService, Client, Server, ServerConfig};
use std::sync::Arc;
use std::thread;
use wormnet_topology::Mesh;

fn extract_u64(json: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The shared body: N client threads fire interleaved traffic, then
/// the final state must equal both a serial replay of the journal and
/// a from-scratch offline rebuild. `optimistic` turns on the
/// validate-then-commit concurrent admission path (with a multi-worker
/// server so admissions actually overlap).
fn interleaved_traffic_serializes(optimistic: bool) {
    const CLIENTS: usize = 8;
    const OPS: usize = 120;
    let mut svc = AdmissionService::new(Mesh::mesh2d(10, 10));
    svc.set_optimistic(optimistic);
    let service = Arc::new(svc);
    let server = Server::bind_with_config(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 0,
            workers: if optimistic { 4 } else { 0 },
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle().unwrap();
    let server_thread = thread::spawn(move || server.run());

    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let addr = addr.clone();
            thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let mut rng = 0xc0ffee ^ (i as u64) << 17;
                let mut own: Vec<u64> = Vec::new();
                for _ in 0..OPS {
                    let roll = splitmix64(&mut rng) % 10;
                    if roll < 5 || own.is_empty() {
                        // Random admit; rejections are expected and fine.
                        let sx = splitmix64(&mut rng) % 10;
                        let sy = splitmix64(&mut rng) % 10;
                        let mut dx = splitmix64(&mut rng) % 10;
                        let dy = splitmix64(&mut rng) % 10;
                        if (dx, dy) == (sx, sy) {
                            dx = (dx + 1) % 10;
                        }
                        let pr = 1 + splitmix64(&mut rng) % 4;
                        let period = 50 + splitmix64(&mut rng) % 400;
                        let len = 2 + splitmix64(&mut rng) % 6;
                        let reply = c
                            .send(&format!("ADMIT {sx},{sy} {dx},{dy} {pr} {period} {len}"))
                            .unwrap();
                        if reply.contains("\"status\":\"admitted\"") {
                            own.push(extract_u64(&reply, "id").unwrap());
                        }
                    } else if roll < 7 {
                        let idx = (splitmix64(&mut rng) % own.len() as u64) as usize;
                        let h = own.swap_remove(idx);
                        let reply = c.send(&format!("REMOVE {h}")).unwrap();
                        assert!(
                            reply.contains("\"status\":\"removed\""),
                            "own handle must remove cleanly: {reply}"
                        );
                    } else {
                        // Query a random own handle; it must still be
                        // admitted (only this client removes it) and
                        // its bound must respect the deadline.
                        let h = own[(splitmix64(&mut rng) % own.len() as u64) as usize];
                        let reply = c.send(&format!("QUERY {h}")).unwrap();
                        assert!(reply.contains("\"status\":\"ok\""), "{reply}");
                        let bound = extract_u64(&reply, "bound").unwrap();
                        let deadline = extract_u64(&reply, "deadline").unwrap();
                        assert!(bound <= deadline, "served bound violates deadline: {reply}");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // Serial replay of the accepted-op journal must reproduce the live
    // bounds bit for bit, in the same (dense) order.
    let live = service.bounds_by_handle();
    assert!(!live.is_empty(), "workload should leave streams admitted");
    let replayed = replay(service.mesh(), &service.ops()).unwrap();
    assert_eq!(replayed.len(), live.len());
    for (i, &(handle, bound)) in live.iter().enumerate() {
        assert_eq!(
            replayed.bound(StreamId(i as u32)),
            DelayBound::Bounded(bound),
            "handle {handle} diverged from serial replay"
        );
    }

    // And the served bounds must equal a fresh offline analysis — the
    // from-scratch rebuild agrees with both the live state and the
    // replay above.
    let audited = service.audit().expect("offline audit");
    assert_eq!(audited, live.len());

    handle.shutdown();
    server_thread.join().unwrap().unwrap();
}

#[test]
fn concurrent_clients_serialize_to_an_identical_replay() {
    interleaved_traffic_serializes(false);
}

/// Same soundness bar with the optimistic concurrent-admission path
/// on: admits with disjoint link-set neighborhoods validate under the
/// shared lock and commit without re-analysis, yet the final state is
/// still bit-identical to serial replay and a from-scratch rebuild.
#[test]
fn optimistic_concurrent_admission_matches_serial_replay() {
    interleaved_traffic_serializes(true);
}
