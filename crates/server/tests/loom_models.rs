//! Bounded-exhaustive concurrency models of the reactor core, run under
//! `RUSTFLAGS="--cfg loom" cargo test -p rtwc-server --test loom_models`.
//!
//! Each model drives the *real* production types — [`GroupWal`] over an
//! in-memory [`MemFile`], [`AdmissionService`] with the optimistic path
//! on, and the dispatch [`JobQueue`]/[`CompletionQueue`]/[`ConnFifo`]
//! protocol — through every interleaving the checker's preemption
//! budget allows, asserting the invariants DESIGN.md's "Concurrency
//! verification" section inventories:
//!
//! - **durable-before-ack**: at the moment `wait_durable` acks a
//!   ticket under `--fsync always`, a crash (the synced prefix of the
//!   device) already preserves that ticket's record;
//! - **whole-batch rollback**: a failed group sync acks nothing and
//!   leaves zero unacknowledged records for recovery to find;
//! - **linearizability**: concurrent optimistic admissions produce a
//!   journal whose serial replay reproduces the live bounds bit-for-bit;
//! - **no lost wakeup / no double dispatch**: every queued line is
//!   answered exactly once, in order, with at most one batch in flight.
//!
//! Alongside each model sits a `seeded_*` test: a minimal replica of
//! the protocol with the guard deliberately removed (ack before sync,
//! commit without revalidation, dispatch without the in-flight gate),
//! wrapped in `catch_unwind` to prove the checker actually finds the
//! interleaving that breaks it — the models are load-bearing, not
//! vacuous.
#![cfg(loom)]

use rtwc_core::{StreamId, StreamSpec};
use rtwc_server::dispatch::{Completion, CompletionQueue, ConnFifo, Job, JobQueue, Wake};
use rtwc_server::faultfs::MemFile;
use rtwc_server::group_commit::GroupWal;
use rtwc_server::service::{replay, AcceptedOp, AdmissionService};
use rtwc_server::sync::{thread, Arc, Condvar, Mutex};
use rtwc_server::wal::{FsyncPolicy, Wal};
use std::panic::{catch_unwind, AssertUnwindSafe};
use wormnet_topology::{Mesh, NodeId};

/// Runs `f` under the model checker expecting some interleaving to
/// fail; true when the checker found one.
fn fails(f: impl Fn() + Send + Sync + 'static) -> bool {
    catch_unwind(AssertUnwindSafe(|| loom::model(f))).is_err()
}

fn admit_op(handle: u64) -> AcceptedOp {
    AcceptedOp::Admit {
        handle,
        spec: StreamSpec::new(
            NodeId(handle as u32),
            NodeId(handle as u32 + 1),
            2,
            50,
            4,
            50,
        ),
    }
}

/// Records recoverable from `bytes` — what a process that crashed with
/// exactly these bytes durable would replay.
fn recovered_records(bytes: Vec<u8>) -> usize {
    let (_, opened) = Wal::open(Box::new(MemFile::from_bytes(bytes)), FsyncPolicy::Never)
        .expect("synced prefix must always parse");
    opened.records.len()
}

fn group_wal_on(observer: &MemFile, policy: FsyncPolicy) -> GroupWal {
    let (wal, _) = Wal::open(Box::new(observer.clone()), policy).expect("fresh mem wal");
    GroupWal::new(wal)
}

// ---------------------------------------------------------------------
// Model 1: group commit acks a ticket only once its record is durable.
// ---------------------------------------------------------------------

#[test]
fn group_commit_acked_implies_durable() {
    loom::model(|| {
        let observer = MemFile::new();
        let gc = Arc::new(group_wal_on(&observer, FsyncPolicy::Always));
        let handles: Vec<_> = (0..2u64)
            .map(|i| {
                let gc = Arc::clone(&gc);
                let observer = observer.clone();
                thread::spawn(move || {
                    let ticket = gc.append(0, &admit_op(i)).expect("healthy log accepts");
                    gc.wait_durable(ticket).expect("healthy device syncs");
                    // The ack moment: a crash right now must preserve
                    // this ticket's record — durable-before-ack.
                    let durable = recovered_records(observer.synced_bytes());
                    assert!(
                        durable as u64 >= ticket,
                        "acked ticket {ticket} but only {durable} records durable"
                    );
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(recovered_records(observer.synced_bytes()), 2);
    });
}

#[test]
fn seeded_ack_before_sync_is_caught() {
    // The same protocol with the guard removed: the appender "acks" its
    // ticket without waiting for the syncer. Some interleaving acks a
    // record the device has not made durable, and the checker finds it.
    assert!(fails(|| {
        #[derive(Default)]
        struct Dev {
            appended: u64,
            synced: u64,
        }
        let dev = Arc::new(Mutex::new(Dev::default()));
        let syncer = {
            let dev = Arc::clone(&dev);
            thread::spawn(move || {
                let mut d = dev.lock().unwrap();
                d.synced = d.appended;
            })
        };
        let ticket = {
            let mut d = dev.lock().unwrap();
            d.appended += 1;
            d.appended
        };
        // BUG: ack here, without waiting for the sync to cover us.
        let d = dev.lock().unwrap();
        assert!(d.synced >= ticket, "acked ticket {ticket} not durable");
        drop(d);
        syncer.join().unwrap();
    }));
}

// ---------------------------------------------------------------------
// Model 2: a failed group sync rolls back the whole batch — nothing is
// acked and recovery finds zero unacknowledged records.
// ---------------------------------------------------------------------

#[test]
fn group_commit_failed_sync_acks_nothing() {
    loom::model(|| {
        let observer = MemFile::new();
        // Sync #1 is the fresh log's header; every group sync fails.
        observer.fail_sync_from(2);
        let gc = Arc::new(group_wal_on(&observer, FsyncPolicy::Always));
        let handles: Vec<_> = (0..2u64)
            .map(|i| {
                let gc = Arc::clone(&gc);
                thread::spawn(move || {
                    // The append may already be refused (another batch
                    // broke the log first); an accepted one must then
                    // fail its durability wait. No schedule acks.
                    if let Ok(ticket) = gc.append(0, &admit_op(i)) {
                        gc.wait_durable(ticket)
                            .expect_err("no ticket survives a failed group sync");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(gc.is_broken(), "a failed sync must break the log");
        drop(gc);
        // Whole-batch rollback: neither the durable prefix nor the raw
        // file holds a record nobody was acked for.
        assert_eq!(recovered_records(observer.synced_bytes()), 0);
        assert_eq!(recovered_records(observer.bytes()), 0);
    });
}

// ---------------------------------------------------------------------
// Model 3: concurrent optimistic admissions stay linearizable — the
// journal's serial replay reproduces the live state bit-for-bit.
// ---------------------------------------------------------------------

#[test]
fn optimistic_admissions_linearize_to_journal_order() {
    loom::model(|| {
        let mut svc = AdmissionService::new(Mesh::mesh2d(8, 8));
        svc.set_optimistic(true);
        let svc = Arc::new(svc);
        // Same row: the two admissions share links, so one thread's
        // commit invalidates the other's optimistic component and
        // forces the serial fallback in some schedules. Both streams
        // are feasible together in either order.
        let lines = [((0, 0), (5, 0), 2), ((1, 0), (6, 0), 1)];
        let handles: Vec<_> = lines
            .into_iter()
            .map(|(src, dst, priority)| {
                let svc = Arc::clone(&svc);
                thread::spawn(move || {
                    let r = svc.admit(0, src, dst, priority, 200, 4, None);
                    assert!(
                        matches!(r, rtwc_server::protocol::Response::Admitted { .. }),
                        "feasible pair must admit in every schedule: {r:?}"
                    );
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // The commit-point audit: cached bounds equal a fresh offline
        // analysis, and the journal replays to the same bounds.
        svc.audit().expect("cached bounds match offline analysis");
        let replayed = replay(svc.mesh(), &svc.ops()).expect("journal replays serially");
        for (i, (_, live)) in svc.bounds_by_handle().into_iter().enumerate() {
            assert_eq!(
                replayed.bound(StreamId(i as u32)).value(),
                Some(live),
                "replay diverged from live state at dense id {i}"
            );
        }
    });
}

#[test]
fn seeded_commit_without_revalidation_is_caught() {
    // The optimistic path with the staleness check removed: read a
    // value under the shared lock, then blindly install the derived
    // result under the exclusive lock. The classic lost update — two
    // increments, final value 1 — exists in some interleaving.
    assert!(fails(|| {
        let cell = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    // "Validate": derive the new state from a snapshot.
                    let derived = *cell.lock().unwrap() + 1;
                    // BUG: "commit" without checking the snapshot is
                    // still current.
                    *cell.lock().unwrap() = derived;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*cell.lock().unwrap(), 2, "lost update");
    }));
}

// ---------------------------------------------------------------------
// Model 4: the dispatch protocol answers every line exactly once, in
// order, with at most one batch in flight per connection.
// ---------------------------------------------------------------------

/// A loom-visible completion signal: the model's reactor blocks on it
/// instead of epoll. The counter is incremented *after* the completion
/// is in the queue, so `wait_for(n)` guarantees `drain()` yields at
/// least `n` completions in total.
struct Notify {
    pushed: Mutex<u64>,
    cv: Condvar,
}

impl Notify {
    fn new() -> Notify {
        Notify {
            pushed: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    fn wait_for(&self, n: u64) {
        let mut g = self.pushed.lock().unwrap();
        while *g < n {
            g = self.cv.wait(g).unwrap();
        }
    }
}

struct NotifyWake(Arc<Notify>);

impl Wake for NotifyWake {
    fn wake(&self) {
        *self.0.pushed.lock().unwrap() += 1;
        self.0.cv.notify_all();
    }
}

fn render(job: &Job) -> Completion {
    let mut bytes = Vec::new();
    for (text, _) in &job.lines {
        bytes.extend_from_slice(text.to_lowercase().as_bytes());
        bytes.push(b'\n');
    }
    Completion {
        token: job.token,
        bytes,
        stop: false,
    }
}

#[test]
fn dispatch_answers_each_line_once_in_order() {
    loom::model(|| {
        let jobs = Arc::new(JobQueue::new());
        let notify = Arc::new(Notify::new());
        let completions = Arc::new(CompletionQueue::new(NotifyWake(Arc::clone(&notify))));
        let served = Arc::new(Mutex::new(Vec::new()));
        let worker = {
            let jobs = Arc::clone(&jobs);
            let completions = Arc::clone(&completions);
            let served = Arc::clone(&served);
            thread::spawn(move || {
                while let Some(job) = jobs.pop() {
                    for (text, _) in &job.lines {
                        served.lock().unwrap().push(text.clone());
                    }
                    completions.push(render(&job));
                }
            })
        };

        // The reactor: line A dispatches as batch 1; line B and the
        // rendered error arrive while it is in flight and must wait.
        let mut fifo = ConnFifo::new();
        let mut wbuf = Vec::new();
        fifo.push_line("A".into());
        fifo.pump(7, &jobs, &mut wbuf);
        assert!(fifo.in_flight(), "batch 1 must be in flight");
        fifo.push_line("B".into());
        fifo.push_immediate(b"E\n".to_vec());
        fifo.pump(7, &jobs, &mut wbuf);
        assert!(wbuf.is_empty(), "nothing may overtake the in-flight batch");

        let mut applied = 0u64;
        while applied < 2 {
            notify.wait_for(applied + 1);
            for c in completions.drain() {
                assert_eq!(c.token, 7);
                fifo.complete(&c.bytes, &mut wbuf);
                applied += 1;
                fifo.pump(7, &jobs, &mut wbuf);
            }
        }
        jobs.close();
        worker.join().unwrap();

        // Exactly once, in order — on the wire and at the worker.
        assert_eq!(wbuf, b"a\nb\nE\n");
        assert_eq!(*served.lock().unwrap(), ["A", "B"]);
        assert!(fifo.is_idle());
    });
}

#[test]
fn seeded_dispatch_without_inflight_gate_is_caught() {
    // The protocol with the at-most-one-batch gate removed: both lines
    // dispatch as separate concurrent jobs, two workers race to finish
    // them, and some interleaving delivers the responses out of order.
    assert!(fails(|| {
        let jobs = Arc::new(JobQueue::new());
        let notify = Arc::new(Notify::new());
        let completions = Arc::new(CompletionQueue::new(NotifyWake(Arc::clone(&notify))));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let jobs = Arc::clone(&jobs);
                let completions = Arc::clone(&completions);
                thread::spawn(move || {
                    if let Some(job) = jobs.pop() {
                        completions.push(render(&job));
                    }
                })
            })
            .collect();

        // BUG: dispatch both batches at once instead of gating on the
        // first one's completion.
        for text in ["A", "B"] {
            let mut fifo = ConnFifo::new();
            let mut scratch = Vec::new();
            fifo.push_line(text.into());
            fifo.pump(7, &jobs, &mut scratch);
        }
        notify.wait_for(2);
        let mut wbuf = Vec::new();
        for c in completions.drain() {
            wbuf.extend_from_slice(&c.bytes);
        }
        jobs.close();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(wbuf, b"a\nb\n", "responses must come back in request order");
    }));
}
