//! Pipelining properties of the reactor front end.
//!
//! A client may write K newline-delimited requests in one TCP segment
//! without reading; the server must come back with exactly K responses
//! **in request order** (the per-connection FIFO plus the
//! one-in-flight rule). The proptest then interleaves pipelined
//! `ADMIT`/`REMOVE` bursts across several connections and checks the
//! strongest soundness bar the service offers: the final admitted set
//! is bit-identical to a serial replay of the accepted-op journal and
//! to a fresh offline rebuild.

use proptest::prelude::*;
use rtwc_core::{DelayBound, StreamId};
use rtwc_server::{replay, AdmissionService, Client, Server, ServerConfig};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use wormnet_topology::Mesh;

fn extract_u64(json: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = &json[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn spawn_server(
    workers: usize,
) -> (
    Arc<AdmissionService>,
    String,
    rtwc_server::ShutdownHandle,
    thread::JoinHandle<std::io::Result<()>>,
) {
    let service = Arc::new(AdmissionService::new(Mesh::mesh2d(10, 10)));
    let server = Server::bind_with_config(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 0,
            workers,
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.shutdown_handle().unwrap();
    let join = thread::spawn(move || server.run());
    (service, addr, handle, join)
}

/// K requests in ONE TCP segment, zero reads in between: exactly K
/// responses come back, in request order. The requests are chosen so
/// each response is distinguishable (distinct ids / kinds), proving
/// order rather than just count.
#[test]
fn one_segment_of_k_requests_yields_k_ordered_responses() {
    let (_service, addr, handle, join) = spawn_server(2);
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.set_nodelay(true).unwrap();
    // Admits on distinct rows admit independently; the trailing QUERY
    // and REMOVE reference the stream admitted *earlier in the same
    // segment*, so they only succeed if served strictly in order.
    let segment = b"ADMIT 0,0 5,0 2 100 4\n\
                    ADMIT 0,1 5,1 2 100 4\n\
                    QUERY 0\n\
                    REMOVE 1\n\
                    QUERY 1\n";
    stream.write_all(segment).unwrap();
    let mut reader = std::io::BufReader::new(stream);
    let mut lines = Vec::new();
    for _ in 0..5 {
        let mut line = String::new();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        assert!(line.ends_with('\n'), "truncated response: {line:?}");
        lines.push(line.trim().to_string());
    }
    assert!(
        lines[0].contains("\"status\":\"admitted\"") && lines[0].contains("\"id\":0"),
        "{lines:?}"
    );
    assert!(
        lines[1].contains("\"status\":\"admitted\"") && lines[1].contains("\"id\":1"),
        "{lines:?}"
    );
    assert!(
        lines[2].contains("\"status\":\"ok\"") && lines[2].contains("\"id\":0"),
        "{lines:?}"
    );
    assert!(
        lines[3].contains("\"status\":\"removed\"") && lines[3].contains("\"id\":1"),
        "{lines:?}"
    );
    // Stream 1 is gone by the time the last QUERY runs.
    assert!(lines[4].contains("\"code\":\"unknown_id\""), "{lines:?}");
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// A malformed and an overlong line in the middle of a pipelined burst
/// keep their place in the response order.
#[test]
fn error_responses_keep_their_place_in_the_pipeline() {
    let (_service, addr, handle, join) = spawn_server(2);
    let mut stream = TcpStream::connect(&addr).unwrap();
    let big = "x".repeat(rtwc_server::MAX_LINE_BYTES + 8);
    let segment = format!("STATS\nFROB 1\n{big}\nSTATS\n");
    stream.write_all(segment.as_bytes()).unwrap();
    let mut reader = std::io::BufReader::new(stream);
    let mut lines = Vec::new();
    for _ in 0..4 {
        let mut line = String::new();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        lines.push(line.trim().to_string());
    }
    assert!(lines[0].contains("\"status\":\"ok\""), "{lines:?}");
    assert!(lines[1].contains("\"status\":\"error\""), "{lines:?}");
    assert!(lines[2].contains("\"code\":\"too_long\""), "{lines:?}");
    assert!(lines[3].contains("\"status\":\"ok\""), "{lines:?}");
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// One pipelined connection driven by `seed`: bursts of ADMIT/REMOVE
/// (removes target handles owned by this connection), every burst sent
/// as a single write. Panics (failing the test) if responses come back
/// out of order with respect to what this connection sent.
fn drive_pipelined(addr: &str, mut seed: u64, bursts: usize, window: usize) {
    let mut c = Client::connect(addr).unwrap();
    let mut own: Vec<u64> = Vec::new();
    for _ in 0..bursts {
        let mut lines = Vec::with_capacity(window);
        let mut expects_remove = Vec::with_capacity(window);
        for _ in 0..window {
            if splitmix64(&mut seed).is_multiple_of(4) && !own.is_empty() {
                let i = (splitmix64(&mut seed) % own.len() as u64) as usize;
                let h = own.swap_remove(i);
                lines.push(format!("REMOVE {h}"));
                expects_remove.push(Some(h));
            } else {
                let sx = splitmix64(&mut seed) % 10;
                let sy = splitmix64(&mut seed) % 10;
                let mut dx = splitmix64(&mut seed) % 10;
                let dy = splitmix64(&mut seed) % 10;
                if (dx, dy) == (sx, sy) {
                    dx = (dx + 1) % 10;
                }
                let pr = 1 + splitmix64(&mut seed) % 4;
                let period = 60 + splitmix64(&mut seed) % 400;
                let len = 2 + splitmix64(&mut seed) % 6;
                lines.push(format!("ADMIT {sx},{sy} {dx},{dy} {pr} {period} {len}"));
                expects_remove.push(None);
            }
        }
        let replies = c.send_pipelined(&lines).unwrap();
        assert_eq!(replies.len(), lines.len());
        for (expect, reply) in expects_remove.iter().zip(&replies) {
            match expect {
                // A REMOVE of an own handle must succeed AND answer in
                // its slot — an out-of-order response would surface
                // here as a mismatched id or a wrong status.
                Some(h) => {
                    assert!(reply.contains("\"status\":\"removed\""), "{reply}");
                    assert_eq!(extract_u64(reply, "id"), Some(*h), "{reply}");
                }
                None => {
                    if reply.contains("\"status\":\"admitted\"") {
                        own.push(extract_u64(reply, "id").unwrap());
                    } else {
                        assert!(reply.contains("\"status\":\"rejected\""), "{reply}");
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Interleaved pipelined ADMIT/REMOVE across connections: whatever
    /// order the reactor interleaves the bursts in, the accepted-op
    /// journal replays serially to the exact live state, and a fresh
    /// offline rebuild agrees.
    #[test]
    fn interleaved_pipelined_bursts_replay_bit_identical(
        seed in 0u64..=u64::MAX,
        bursts in 2usize..5,
        window in 2usize..7,
    ) {
        let (service, addr, handle, join) = spawn_server(2);
        let conns = 3usize;
        let drivers: Vec<_> = (0..conns)
            .map(|i| {
                let addr = addr.clone();
                let seed = seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                thread::spawn(move || drive_pipelined(&addr, seed, bursts, window))
            })
            .collect();
        for d in drivers {
            d.join().unwrap();
        }

        let live = service.bounds_by_handle();
        let replayed = replay(service.mesh(), &service.ops()).unwrap();
        prop_assert_eq!(replayed.len(), live.len());
        for (i, &(handle_id, bound)) in live.iter().enumerate() {
            prop_assert_eq!(
                replayed.bound(StreamId(i as u32)),
                DelayBound::Bounded(bound),
                "handle {} diverged from serial replay",
                handle_id
            );
        }
        let audited = service.audit().expect("offline audit");
        prop_assert_eq!(audited, live.len());

        handle.shutdown();
        join.join().unwrap().unwrap();
    }
}
