//! Torus simulation and the dateline virtual-channel split.
//!
//! Dimension-order routing on a torus has cyclic channel dependencies
//! through the wraparound links: four worms around a ring can deadlock.
//! Splitting every priority class into two dateline layers
//! (`SimConfig::num_layers = 2` + `Torus::dateline_layers`) breaks the
//! cycle. This test demonstrates the deadlock *and* its cure.

use rtwc_core::{StreamId, StreamSet, StreamSpec};
use wormnet_sim::{SimConfig, Simulator};
use wormnet_topology::{DimensionOrderRouting, NodeId, Topology, Torus};

/// Four one-shot worms chasing each other around a 4-node ring:
/// 0 -> 2, 1 -> 3, 2 -> 0, 3 -> 1, all routed the increasing way by the
/// deterministic tie-break. Long messages + tiny buffers guarantee each
/// worm holds its first channel while waiting for its second.
fn ring_set() -> (Torus, StreamSet) {
    let t = Torus::new(&[4]);
    let mk = |s: u32, d: u32| StreamSpec::new(NodeId(s), NodeId(d), 1, 1_000_000, 8, 1_000_000);
    let set = StreamSet::resolve(
        &t,
        &DimensionOrderRouting,
        &[mk(0, 2), mk(1, 3), mk(2, 0), mk(3, 1)],
    )
    .unwrap();
    (t, set)
}

#[test]
fn ring_routes_all_go_the_same_way() {
    let (t, set) = ring_set();
    // Every route takes the increasing direction (deterministic
    // tie-break on the 2-vs-2 distance), forming the dependency cycle.
    for id in set.ids() {
        let path = &set.get(id).path;
        assert_eq!(path.hops(), 2);
        for w in path.nodes().windows(2) {
            let a = t.coord(w[0]).get(0);
            let b = t.coord(w[1]).get(0);
            assert_eq!(b, (a + 1) % 4, "route must go the increasing way");
        }
    }
}

#[test]
fn single_layer_torus_deadlocks() {
    let (t, set) = ring_set();
    let mut cfg = SimConfig::paper(1)
        .with_cycles(3_000, 0)
        .with_buffer_depth(2);
    cfg.stall_limit = 500;
    let mut sim = Simulator::new(t.num_links(), &set, cfg).unwrap();
    sim.run();
    assert!(
        sim.stats().stalled_at.is_some(),
        "the ring must deadlock without dateline layers"
    );
    assert_eq!(sim.stats().total_completed(), 0);
}

#[test]
fn dateline_layers_break_the_deadlock() {
    let (t, set) = ring_set();
    let layers: Vec<Vec<u8>> = set.iter().map(|s| t.dateline_layers(&s.path)).collect();
    let mut cfg = SimConfig::paper(1)
        .with_cycles(3_000, 0)
        .with_buffer_depth(2)
        .with_layers(2);
    cfg.stall_limit = 500;
    let phases = vec![0; set.len()];
    let mut sim =
        Simulator::with_phases_and_layers(t.num_links(), &set, cfg, &phases, &layers).unwrap();
    sim.run();
    assert!(
        sim.stats().stalled_at.is_none(),
        "datelines must prevent deadlock"
    );
    assert_eq!(sim.stats().total_completed(), 4, "all four worms deliver");
    // Everyone still pays only pipeline + (possibly) same-class
    // serialization; latencies are finite and sane.
    for id in set.ids() {
        let l = set.get(id).latency;
        let max = sim.stats().max_latency(id, 0).unwrap();
        assert!(max >= l && max <= 10 * l, "{id:?}: {max} vs L {l}");
    }
}

#[test]
fn layers_rejected_when_malformed() {
    let (t, set) = ring_set();
    let cfg = SimConfig::paper(1).with_layers(2);
    let phases = vec![0; set.len()];
    // Wrong vector count.
    let err = Simulator::with_phases_and_layers(t.num_links(), &set, cfg.clone(), &phases, &[])
        .unwrap_err();
    assert!(err.contains("layer vector"), "{err}");
    // Layer index out of range for num_layers = 1.
    let bad: Vec<Vec<u8>> = set
        .iter()
        .map(|s| vec![1; s.path.hops() as usize])
        .collect();
    let err =
        Simulator::with_phases_and_layers(t.num_links(), &set, SimConfig::paper(1), &phases, &bad)
            .unwrap_err();
    assert!(err.contains("out of range"), "{err}");
}

#[test]
fn mesh_unaffected_by_extra_layers() {
    // Running a mesh workload with num_layers = 2 and all-zero layers
    // must produce identical statistics to the single-layer run.
    use wormnet_topology::{Mesh, XyRouting};
    let m = Mesh::mesh2d(6, 6);
    let specs = vec![
        StreamSpec::new(
            m.node_at(&[0, 0]).unwrap(),
            m.node_at(&[5, 0]).unwrap(),
            2,
            40,
            6,
            40,
        ),
        StreamSpec::new(
            m.node_at(&[1, 0]).unwrap(),
            m.node_at(&[5, 2]).unwrap(),
            1,
            60,
            8,
            60,
        ),
    ];
    let set = StreamSet::resolve(&m, &XyRouting, &specs).unwrap();
    let run = |layers: usize| {
        let cfg = SimConfig::paper(2)
            .with_cycles(2_000, 0)
            .with_layers(layers);
        let mut sim = Simulator::new(m.num_links(), &set, cfg).unwrap();
        sim.run();
        sim.stats().records.clone()
    };
    assert_eq!(run(1), run(2));
    let _ = StreamId(0);
}
