//! End-to-end over the structured workload scenarios: every scenario
//! resolves, analyzes, and simulates, and wherever the analysis
//! produces a bound, the simulation respects it.

use rtwc_core::{determine_feasibility, StreamSet, StreamSpec};
use rtwc_workload::{
    bit_reversal, hotspot, nearest_neighbor, pipeline, random_permutation, transpose,
};
use wormnet_sim::{SimConfig, Simulator};
use wormnet_topology::{Mesh, NodeId, Topology, XyRouting};

fn check_bounds(mesh: &Mesh, specs: Vec<StreamSpec>, plevels: usize, cycles: u64) {
    let set = StreamSet::resolve(mesh, &XyRouting, &specs).unwrap();
    let report = determine_feasibility(&set);
    let cfg = SimConfig::paper(plevels).with_cycles(cycles, 0);
    let mut sim = Simulator::new(mesh.num_links(), &set, cfg).unwrap();
    sim.run();
    assert!(sim.stats().stalled_at.is_none());
    let mut bounded_checked = 0;
    for id in set.ids() {
        if let Some(u) = report.bound(id).value() {
            if let Some(max) = sim.stats().max_latency(id, 0) {
                assert!(max <= u, "{id:?}: max {max} > U {u}");
                bounded_checked += 1;
            }
        }
    }
    assert!(bounded_checked > 0, "scenario produced no checkable stream");
}

#[test]
fn transpose_end_to_end() {
    let mesh = Mesh::mesh2d(6, 6);
    let specs = transpose(&mesh, 4, 400, 8);
    check_bounds(&mesh, specs, 4, 5_000);
}

#[test]
fn hotspot_end_to_end() {
    let mesh = Mesh::mesh2d(8, 8);
    let hot = mesh.node_at(&[4, 4]).unwrap();
    let specs = hotspot(&mesh, hot, 10, 3, 500, 10, 77);
    check_bounds(&mesh, specs, 3, 5_000);
}

#[test]
fn nearest_neighbor_end_to_end() {
    let mesh = Mesh::mesh2d(6, 6);
    let specs = nearest_neighbor(&mesh, 1, 100, 4);
    // Disjoint single-hop streams: every stream is unblocked and every
    // latency equals C (1 hop + C - 1).
    let set = StreamSet::resolve(&mesh, &XyRouting, &specs).unwrap();
    let cfg = SimConfig::paper(1).with_cycles(1_000, 0);
    let mut sim = Simulator::new(mesh.num_links(), &set, cfg).unwrap();
    sim.run();
    for id in set.ids() {
        let ls = sim.stats().latencies(id, 0);
        assert!(!ls.is_empty());
        assert!(ls.iter().all(|&l| l == 4), "{id:?}: {ls:?}");
    }
}

#[test]
fn pipeline_end_to_end() {
    let mesh = Mesh::mesh2d(8, 8);
    let stages: Vec<NodeId> = [(0u32, 0u32), (3, 2), (5, 5), (7, 7)]
        .iter()
        .map(|&(x, y)| mesh.node_at(&[x, y]).unwrap())
        .collect();
    let specs = pipeline(&stages, 300, 12);
    check_bounds(&mesh, specs, 3, 4_000);
}

#[test]
fn bit_reversal_end_to_end() {
    let mesh = Mesh::mesh2d(8, 8);
    let specs = bit_reversal(&mesh, 5, 600, 6);
    check_bounds(&mesh, specs, 5, 6_000);
}

#[test]
fn random_permutation_end_to_end() {
    let mesh = Mesh::mesh2d(8, 8);
    let specs = random_permutation(&mesh, 16, 4, 500, 10, 1234);
    check_bounds(&mesh, specs, 4, 5_000);
}
