//! Cross-crate reproduction of the paper's Figures 4 and 6 numbers
//! through the *public workspace API* (the core crate has its own
//! white-box versions; these go through the facade the way a user
//! would).

use rtwc::prelude::*;
use rtwc_core::{direct_only_bound, generate_hp, BlockingMode};

/// Figures 4-6: M1 (T=10, C=2), M2 (T=15, C=3), M3 (T=13, C=4), and a
/// target with latency 6, arranged so M1 and M2 block only indirectly
/// (M1 via M2, M2 via M3).
fn figure_set() -> StreamSet {
    ScenarioBuilder::mesh2d(20, 2)
        .stream((6, 0), (9, 0), 4, 10, 2) // M1
        .stream((4, 0), (7, 0), 3, 15, 3) // M2
        .stream((2, 0), (5, 0), 2, 13, 4) // M3
        .stream((0, 0), (3, 0), 1, 50, 4) // target: L = 3 + 4 - 1 = 6
        .build()
        .unwrap()
}

#[test]
fn target_latency_is_six() {
    let set = figure_set();
    assert_eq!(set.get(StreamId(3)).latency, 6);
}

#[test]
fn figure4_direct_bound_is_26() {
    // "if the network latency of M4 is 6, then time 26 is the delay
    // upper bound of M4" (all elements direct).
    let set = figure_set();
    assert_eq!(
        direct_only_bound(&set, StreamId(3), 50),
        DelayBound::Bounded(26)
    );
}

#[test]
fn figure5_blocking_chain_shape() {
    let set = figure_set();
    let hp = generate_hp(&set, StreamId(3));
    assert_eq!(hp.len(), 3);
    let m1 = hp.element(StreamId(0)).unwrap();
    let m2 = hp.element(StreamId(1)).unwrap();
    let m3 = hp.element(StreamId(2)).unwrap();
    assert_eq!(m1.mode, BlockingMode::Indirect);
    assert_eq!(m1.intermediates, vec![StreamId(1)]);
    assert_eq!(m2.mode, BlockingMode::Indirect);
    assert_eq!(m2.intermediates, vec![StreamId(2)]);
    assert_eq!(m3.mode, BlockingMode::Direct);
}

#[test]
fn figure6_indirect_bound_is_22() {
    // "Thus the delay upper bound of M4 is reduced to time 22."
    let set = figure_set();
    assert_eq!(cal_u(&set, StreamId(3), 50), DelayBound::Bounded(22));
}

#[test]
fn full_feasibility_through_facade() {
    let set = figure_set();
    let report = determine_feasibility(&set);
    assert!(report.is_feasible());
    // Highest priority stream is unblocked.
    assert_eq!(
        report.bound(StreamId(0)),
        DelayBound::Bounded(set.get(StreamId(0)).latency)
    );
}
