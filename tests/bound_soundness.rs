//! Cross-crate soundness check: for the paper's preemptive switching,
//! every latency ever observed in simulation must stay within the
//! analytically computed delay upper bound `U`.
//!
//! This is the strongest end-to-end statement the reproduction can
//! make: the analyzer (`rtwc-core`), the workload generator
//! (`rtwc-workload`), and the flit-level simulator (`wormnet-sim`)
//! agree on the semantics of priorities, routes, and periods.

use rtwc_core::DelayBound;
use rtwc_workload::{generate, PaperWorkloadConfig};
use wormnet_sim::{SimConfig, Simulator};
use wormnet_topology::Topology;

fn check_seed(seed: u64, num_streams: usize, plevels: u32) -> (usize, usize) {
    let w = generate(PaperWorkloadConfig {
        num_streams,
        priority_levels: plevels,
        seed,
        ..PaperWorkloadConfig::default()
    });
    let cfg = SimConfig::paper(plevels as usize).with_cycles(10_000, 0);
    let mut sim = Simulator::new(w.mesh.num_links(), &w.set, cfg).unwrap();
    sim.run();
    let mut checked = 0;
    let mut violations = 0;
    for id in w.set.ids() {
        if let DelayBound::Bounded(u) = w.bounds[id.index()] {
            if let Some(max) = sim.stats().max_latency(id, 0) {
                checked += 1;
                if max > u {
                    violations += 1;
                    eprintln!(
                        "seed {seed}: {id:?} max actual {max} > U {u} (P={}, T={}, C={})",
                        w.set.get(id).priority(),
                        w.set.get(id).period(),
                        w.set.get(id).max_length()
                    );
                }
            }
        }
    }
    (checked, violations)
}

#[test]
fn bounds_hold_in_simulation_single_level() {
    let mut total = 0;
    for seed in [1u64, 2, 3] {
        let (checked, violations) = check_seed(seed, 12, 1);
        assert_eq!(violations, 0, "seed {seed}");
        total += checked;
    }
    assert!(total > 20, "checked {total} streams");
}

#[test]
fn bounds_hold_in_simulation_multi_level() {
    let mut total = 0;
    for seed in [4u64, 5, 6] {
        let (checked, violations) = check_seed(seed, 16, 4);
        assert_eq!(violations, 0, "seed {seed}");
        total += checked;
    }
    assert!(total > 30, "checked {total} streams");
}

#[test]
fn highest_priority_class_rides_at_network_latency() {
    // Streams of the top priority class whose HP sets are empty must
    // see *exactly* their network latency in every message.
    let w = generate(PaperWorkloadConfig {
        num_streams: 16,
        priority_levels: 4,
        seed: 99,
        ..PaperWorkloadConfig::default()
    });
    let cfg = SimConfig::paper(4).with_cycles(10_000, 0);
    let mut sim = Simulator::new(w.mesh.num_links(), &w.set, cfg).unwrap();
    sim.run();
    let mut exercised = 0;
    for id in w.set.ids() {
        let s = w.set.get(id);
        if rtwc_core::generate_hp(&w.set, id).is_empty() {
            let ls = sim.stats().latencies(id, 0);
            assert!(!ls.is_empty(), "{id:?} completed nothing");
            assert!(
                ls.iter().all(|&l| l == s.latency),
                "{id:?}: unblocked stream saw interference: {ls:?} != {}",
                s.latency
            );
            exercised += 1;
        }
    }
    assert!(exercised > 0, "workload had no unblocked stream");
}
