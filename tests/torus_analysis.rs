//! The analysis on a torus, end to end: the delay-bound machinery is
//! routing-agnostic, so wrap-around paths analyze like any others —
//! and with dateline layers the simulator validates the bounds.

use rtwc_core::{determine_feasibility, is_deadlock_free, StreamSet, StreamSpec};
use wormnet_sim::{SimConfig, Simulator};
use wormnet_topology::{DimensionOrderRouting, Topology, Torus};

fn torus_set() -> (Torus, StreamSet) {
    let t = Torus::new(&[6, 6]);
    let n = |x: u32, y: u32| t.node_at(&[x, y]).unwrap();
    // Routes that genuinely wrap: 4,1 -> 1,1 goes around the X edge.
    let specs = vec![
        StreamSpec::new(n(4, 1), n(1, 1), 3, 60, 6, 60),
        StreamSpec::new(n(5, 1), n(2, 1), 2, 90, 8, 90), // overlaps the wrap
        StreamSpec::new(n(0, 3), n(3, 5), 1, 120, 10, 120), // disjoint
    ];
    let set = StreamSet::resolve(&t, &DimensionOrderRouting, &specs).unwrap();
    (t, set)
}

#[test]
fn wrap_paths_analyze() {
    let (t, set) = torus_set();
    // Both wrap streams take the short way (3 hops), so L = 3 + C - 1.
    assert_eq!(set.get(rtwc_core::StreamId(0)).latency, 8);
    assert_eq!(set.get(rtwc_core::StreamId(1)).latency, 10);
    let report = determine_feasibility(&set);
    assert!(report.is_feasible());
    // Stream 1 is blocked by stream 0 on the shared wrap channels.
    let hp = rtwc_core::generate_hp(&set, rtwc_core::StreamId(1));
    assert_eq!(hp.len(), 1);
    let _ = t;
}

#[test]
fn dateline_layers_keep_it_deadlock_free() {
    let (t, set) = torus_set();
    let layers: Vec<Vec<u8>> = set.iter().map(|s| t.dateline_layers(&s.path)).collect();
    assert!(is_deadlock_free(&set, Some(&layers)));
}

#[test]
fn torus_simulation_respects_bounds() {
    let (t, set) = torus_set();
    let report = determine_feasibility(&set);
    let layers: Vec<Vec<u8>> = set.iter().map(|s| t.dateline_layers(&s.path)).collect();
    let cfg = SimConfig::paper(3).with_cycles(8_000, 0).with_layers(2);
    let phases = vec![0; set.len()];
    let mut sim =
        Simulator::with_phases_and_layers(t.num_links(), &set, cfg, &phases, &layers).unwrap();
    sim.run();
    assert!(sim.stats().stalled_at.is_none());
    for id in set.ids() {
        let u = report.bound(id).value().unwrap();
        let max = sim.stats().max_latency(id, 0).unwrap();
        assert!(max <= u, "{id:?}: {max} > {u}");
    }
}
