//! Full-stack check: jobs deployed by the host processor, then the
//! *whole deployed system* simulated at flit level — every observed
//! latency must respect the guarantee the host handed out at admission
//! time.

use rtwc_host::{
    Clustered, CommunicationAware, HostProcessor, JobSpec, MessageRequirement, TaskId,
};
use wormnet_sim::{SimConfig, Simulator};
use wormnet_topology::Topology;

fn stage_job(name: &str, tasks: usize, priority: u32, period: u64, length: u64) -> JobSpec {
    let msgs = (0..tasks as u32 - 1)
        .map(|i| MessageRequirement::new(TaskId(i), TaskId(i + 1), priority, period, length))
        .collect();
    JobSpec::new(name, tasks, msgs).unwrap()
}

#[test]
fn deployed_system_respects_guarantees_in_simulation() {
    let mut host = HostProcessor::new(8, 8);
    host.deploy(&stage_job("ctrl", 4, 3, 80, 8), &CommunicationAware)
        .unwrap();
    host.deploy(&stage_job("sense", 5, 2, 120, 12), &Clustered)
        .unwrap();
    host.deploy(&stage_job("log", 3, 1, 300, 24), &CommunicationAware)
        .unwrap();
    let set = host.stream_set().expect("jobs deployed");
    assert_eq!(set.len(), 3 + 4 + 2);

    let plevels = set.iter().map(|s| s.priority()).max().unwrap() as usize;
    let cfg = SimConfig::paper(plevels).with_cycles(12_000, 0);
    let mut sim = Simulator::new(host.mesh().num_links(), set, cfg).unwrap();
    sim.run();
    assert!(sim.stats().stalled_at.is_none());

    for job in host.jobs() {
        for &s in &job.streams {
            let u = host.bound(s).value().expect("admitted means bounded");
            let max = sim
                .stats()
                .max_latency(s, 0)
                .expect("stream delivered messages");
            assert!(
                max <= u,
                "job {:?} stream {s}: max {max} > guaranteed {u}",
                job.id
            );
        }
    }
}

#[test]
fn guarantees_survive_job_churn() {
    let mut host = HostProcessor::new(8, 8);
    let a = host
        .deploy(&stage_job("a", 4, 2, 100, 16), &CommunicationAware)
        .unwrap();
    host.deploy(&stage_job("b", 4, 1, 150, 12), &CommunicationAware)
        .unwrap();
    host.remove_job(a);
    host.deploy(&stage_job("c", 4, 3, 90, 10), &CommunicationAware)
        .unwrap();

    let set = host.stream_set().unwrap();
    let plevels = set.iter().map(|s| s.priority()).max().unwrap() as usize;
    let cfg = SimConfig::paper(plevels).with_cycles(10_000, 0);
    let mut sim = Simulator::new(host.mesh().num_links(), set, cfg).unwrap();
    sim.run();
    for job in host.jobs() {
        for &s in &job.streams {
            let u = host.bound(s).value().unwrap();
            let max = sim.stats().max_latency(s, 0).unwrap();
            assert!(max <= u, "{s}: {max} > {u}");
        }
    }
}
