//! Cross-crate regression of the paper's §3 motivation: classic
//! wormhole switching exposes high-priority traffic to priority
//! inversion; the flit-level preemptive scheme removes it; Li's scheme
//! sits in between.

use rtwc_core::{StreamId, StreamSet};
use rtwc_workload::ScenarioBuilder;
use wormnet_sim::{SimConfig, Simulator};
use wormnet_topology::{Mesh, Topology};

/// The Fig. 2 scenario: three heavy low-priority aggressors sharing a
/// row with one urgent stream.
fn inversion_scenario() -> (Mesh, StreamSet) {
    ScenarioBuilder::mesh2d(10, 10)
        .stream((1, 2), (8, 2), 1, 60, 40)
        .stream((2, 0), (8, 2), 1, 60, 40)
        .stream((2, 4), (7, 2), 1, 60, 40)
        .stream((0, 2), (9, 2), 4, 300, 6)
        .build_with_mesh()
        .unwrap()
}

fn victim_max(cfg: SimConfig) -> u64 {
    let (mesh, set) = inversion_scenario();
    let mut sim = Simulator::new(mesh.num_links(), &set, cfg.with_cycles(6_000, 0)).unwrap();
    sim.run();
    sim.stats().max_latency(StreamId(3), 0).unwrap_or(u64::MAX)
}

#[test]
fn preemptive_eliminates_inversion() {
    let (_, set) = inversion_scenario();
    let l = set.get(StreamId(3)).latency;
    assert_eq!(victim_max(SimConfig::paper(4)), l);
}

#[test]
fn classic_suffers_inversion() {
    let (_, set) = inversion_scenario();
    let l = set.get(StreamId(3)).latency;
    let classic = victim_max(SimConfig::classic());
    assert!(
        classic >= 2 * l,
        "classic wormhole should at least double the victim's latency: {classic} vs L={l}"
    );
}

#[test]
fn li_sits_between() {
    let preemptive = victim_max(SimConfig::paper(4));
    let li = victim_max(SimConfig::li(4));
    let classic = victim_max(SimConfig::classic());
    assert!(
        preemptive <= li && li <= classic,
        "expected preemptive ({preemptive}) <= li ({li}) <= classic ({classic})"
    );
}

#[test]
fn aggressor_throughput_not_starved_by_preemption() {
    // Flit-level preemption must not starve the low-priority class on a
    // lightly loaded victim stream: the aggressors keep nearly the same
    // throughput under either policy.
    let count = |cfg: SimConfig| {
        let (mesh, set) = inversion_scenario();
        let mut sim = Simulator::new(mesh.num_links(), &set, cfg.with_cycles(6_000, 0)).unwrap();
        sim.run();
        (0..3u32)
            .map(|i| sim.stats().latencies(StreamId(i), 0).len())
            .sum::<usize>()
    };
    let classic = count(SimConfig::classic());
    let preemptive = count(SimConfig::paper(4));
    assert!(
        preemptive * 10 >= classic * 9,
        "preemption starved aggressors: {preemptive} vs {classic}"
    );
}
