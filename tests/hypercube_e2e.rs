//! End-to-end on the paper's *other* named topology: a binary
//! hypercube with e-cube routing. The analysis is topology-agnostic
//! (it consumes routed paths), and the simulator only sees channels —
//! this exercises both away from the 2-D mesh.

use rtwc_core::{
    cal_u, determine_feasibility, generate_hp, DelayBound, StreamId, StreamSet, StreamSpec,
};
use wormnet_sim::{SimConfig, Simulator};
use wormnet_topology::{EcubeRouting, Hypercube, NodeId, Topology};

fn cube_set() -> (Hypercube, StreamSet) {
    let h = Hypercube::new(4); // 16 nodes
                               // E-cube resolves low bits first; craft overlapping routes:
                               // 0000 -> 0111 goes via 0001, 0011; 0001 -> 0011 shares the
                               // 0001 -> 0011 channel.
    let specs = vec![
        StreamSpec::new(NodeId(0b0000), NodeId(0b0111), 3, 60, 6, 60),
        StreamSpec::new(NodeId(0b0001), NodeId(0b0011), 2, 80, 4, 80),
        StreamSpec::new(NodeId(0b1000), NodeId(0b1100), 1, 100, 8, 100),
    ];
    let set = StreamSet::resolve(&h, &EcubeRouting, &specs).unwrap();
    (h, set)
}

#[test]
fn ecube_paths_overlap_as_designed() {
    let (_, set) = cube_set();
    let a = set.get(StreamId(0));
    let b = set.get(StreamId(1));
    let c = set.get(StreamId(2));
    assert!(
        a.path.shares_link(&b.path),
        "0->7 and 1->3 share 0001->0011"
    );
    assert!(!a.path.shares_link(&c.path));
    assert!(a.directly_affects(b));
}

#[test]
fn analysis_works_on_hypercube() {
    let (_, set) = cube_set();
    let report = determine_feasibility(&set);
    assert!(report.is_feasible());
    // Stream 1 is blocked by stream 0 (shared channel).
    let hp1 = generate_hp(&set, StreamId(1));
    assert_eq!(hp1.len(), 1);
    // Stream 0 and stream 2 are unblocked: U = L.
    assert_eq!(
        report.bound(StreamId(0)),
        DelayBound::Bounded(set.get(StreamId(0)).latency)
    );
    assert_eq!(
        report.bound(StreamId(2)),
        DelayBound::Bounded(set.get(StreamId(2)).latency)
    );
    // Stream 1 pays interference: L=5, stream 0 holds the shared
    // channel's timeline for C=6 slots each period.
    let u1 = cal_u(&set, StreamId(1), 80).value().unwrap();
    assert!(u1 > set.get(StreamId(1)).latency);
}

#[test]
fn simulation_respects_bounds_on_hypercube() {
    let (h, set) = cube_set();
    let report = determine_feasibility(&set);
    let cfg = SimConfig::paper(3).with_cycles(5_000, 0);
    let mut sim = Simulator::new(h.num_links(), &set, cfg).unwrap();
    sim.run();
    for id in set.ids() {
        let max = sim.stats().max_latency(id, 0).expect("messages completed");
        let u = report.bound(id).value().unwrap();
        assert!(max <= u, "{id:?}: max {max} > U {u}");
    }
    // The unblocked top-priority stream rides at exactly L.
    assert_eq!(
        sim.stats().max_latency(StreamId(0), 0).unwrap(),
        set.get(StreamId(0)).latency
    );
}
