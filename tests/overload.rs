//! Behavior under overload: when the offered load exceeds what the
//! analysis can bound, the reproduction must degrade *honestly* —
//! unbounded analysis results, growing backlogs in simulation, no
//! deadlocks, no panics.

use rtwc_core::{cal_u, DelayBound, StreamId, StreamSet};
use rtwc_workload::ScenarioBuilder;
use wormnet_sim::{SimConfig, Simulator};
use wormnet_topology::Topology;

/// Three streams saturating one row: combined demand 3 * 20/30 = 2.0x
/// the shared channels' capacity.
fn overloaded() -> (wormnet_topology::Mesh, StreamSet) {
    ScenarioBuilder::mesh2d(10, 2)
        .stream((0, 0), (6, 0), 3, 30, 20)
        .stream((1, 0), (7, 0), 2, 30, 20)
        .stream((2, 0), (8, 0), 1, 30, 20)
        .build_with_mesh()
        .unwrap()
}

#[test]
fn analysis_reports_unbounded_lowest_stream() {
    let (_, set) = overloaded();
    // Highest priority stream is still fine.
    assert_eq!(
        cal_u(&set, StreamId(0), 10_000),
        DelayBound::Bounded(set.get(StreamId(0)).latency)
    );
    // The lowest-priority stream's interference exceeds capacity: the
    // bound search exhausts any horizon.
    assert_eq!(cal_u(&set, StreamId(2), 50_000), DelayBound::Exceeded);
}

#[test]
fn simulation_backlogs_but_keeps_moving() {
    let (mesh, set) = overloaded();
    let cfg = SimConfig::paper(3).with_cycles(5_000, 0);
    let mut sim = Simulator::new(mesh.num_links(), &set, cfg).unwrap();
    sim.run();
    let stats = sim.stats();
    // No deadlock/livelock: the watchdog stayed quiet and flits moved
    // at full channel rate on the hot row.
    assert!(stats.stalled_at.is_none());
    let (_, util) = stats.hottest_link().unwrap();
    assert!(
        util > 0.95,
        "saturated channel should be ~fully utilized: {util}"
    );
    // The top stream is never harmed.
    let top = set.get(StreamId(0));
    assert!(stats
        .latencies(StreamId(0), 0)
        .iter()
        .all(|&l| l == top.latency));
    // The bottom stream falls behind: backlog grows.
    assert!(
        stats.unfinished(StreamId(2)) > 3,
        "overloaded stream should accumulate a backlog, had {}",
        stats.unfinished(StreamId(2))
    );
}

#[test]
fn classic_fifo_survives_overload_too() {
    let (mesh, set) = overloaded();
    let cfg = SimConfig::classic().with_cycles(5_000, 0);
    let mut sim = Simulator::new(mesh.num_links(), &set, cfg).unwrap();
    sim.run();
    assert!(sim.stats().stalled_at.is_none());
    assert!(sim.stats().total_completed() > 0);
}
