#!/usr/bin/env bash
# kill-9 restart-recover check for the durable admission service.
#
# Admits streams over TCP with `--fsync always` (idempotent request
# ids included), SIGKILLs the daemon mid-flight, restarts it over the
# same WAL directory, and requires:
#   1. the restart log to announce a recovery (not a fresh seed);
#   2. every pre-crash QUERY answer to be byte-identical after restart;
#   3. a retried pre-crash ADMIT request id to replay its original
#      outcome instead of double-admitting.
# Prints the "bit-identical" marker CI greps for on success.
set -euo pipefail

RTWC=${RTWC:-target/debug/rtwc}
SPEC=${SPEC:-crates/cli/tests/fixtures/clean.streams}
DIR=$(mktemp -d)
SERVER=""
cleanup() {
  [ -n "$SERVER" ] && kill -9 "$SERVER" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

start_server() {
  local log=$1
  "$RTWC" serve "$SPEC" --addr 127.0.0.1:0 \
    --wal-dir "$DIR/wal" --fsync always > "$log" &
  SERVER=$!
  for _ in $(seq 100); do
    grep -q "listening on" "$log" && break
    sleep 0.1
  done
  ADDR=$(sed -n 's/^listening on \([^ ]*\).*/\1/p' "$log")
  test -n "$ADDR"
}

start_server "$DIR/serve1.log"

# Two admits with idempotency ids, plus an immediate duplicate: the
# retry must return the original acknowledgement byte for byte.
"$RTWC" client "$ADDR" --req-id 101 ADMIT 0,0 5,0 2 50 4 > "$DIR/admit1.json"
"$RTWC" client "$ADDR" --req-id 102 ADMIT 0,2 6,2 3 60 4 > "$DIR/admit2.json"
"$RTWC" client "$ADDR" --req-id 101 ADMIT 0,0 5,0 2 50 4 > "$DIR/retry-live.json"
cmp "$DIR/admit1.json" "$DIR/retry-live.json"

# Record every admitted stream's served answer (5 seeded + 2 admitted).
for h in 0 1 2 3 4 5 6; do
  "$RTWC" client "$ADDR" QUERY "$h" >> "$DIR/pre-crash.json"
done

kill -9 "$SERVER"
wait "$SERVER" 2>/dev/null || true
SERVER=""

start_server "$DIR/serve2.log"
grep -q "recovered" "$DIR/serve2.log" || {
  echo "restart did not recover (re-seeded instead?)" >&2
  cat "$DIR/serve2.log" >&2
  exit 1
}

for h in 0 1 2 3 4 5 6; do
  "$RTWC" client "$ADDR" QUERY "$h" >> "$DIR/post-crash.json"
done
cmp "$DIR/pre-crash.json" "$DIR/post-crash.json"

# The dedup window survived the crash: the same request id still
# replays the original outcome on the recovered service.
"$RTWC" client "$ADDR" --req-id 101 ADMIT 0,0 5,0 2 50 4 > "$DIR/retry-recovered.json"
cmp "$DIR/admit1.json" "$DIR/retry-recovered.json"

"$RTWC" client "$ADDR" SHUTDOWN > /dev/null
wait "$SERVER" 2>/dev/null || true
SERVER=""

echo "kill-9 recovery bit-identical: 7 stream(s) answered identically across SIGKILL restart"
