#!/usr/bin/env bash
# Failover checks for the replication subsystem: a leader kill-9
# scenario, then a network-partition scenario with a leader lease.
#
# Scenario 1 starts a durable leader shipping its WAL and a
# warm-standby follower as two real processes, admits streams over TCP
# (idempotent request ids included), SIGKILLs the leader mid-cluster,
# promotes the follower, and requires:
#   1. the follower to reject writes with a NOT_LEADER redirect while
#      the leader lives, then accept them once promoted;
#   2. every pre-kill QUERY answer on the leader to be byte-identical
#      on the promoted follower;
#   3. a retried pre-kill ADMIT request id to replay its original
#      outcome on the new leader instead of double-admitting.
#
# Scenario 2 routes the replication link through the `rtwc netchaos`
# proxy, partitions it, and requires the split-brain-safety chain:
# the leased leader seals (sheds writes with a retryable `sealed`
# error) before the standby's grace promotes it, the promoted standby
# takes writes, and at heal time the deposed leader fences — emitting
# a DivergenceReport and redirecting writes to the new leader.
#
# Prints the "bit-identical" and "partition failover" markers CI greps
# for on success.
set -euo pipefail

RTWC=${RTWC:-target/debug/rtwc}
SPEC=${SPEC:-crates/cli/tests/fixtures/clean.streams}
DIR=$(mktemp -d)
LEADER=""
FOLLOWER=""
NETCHAOS=""
cleanup() {
  [ -n "$LEADER" ] && kill -9 "$LEADER" 2>/dev/null || true
  [ -n "$FOLLOWER" ] && kill -9 "$FOLLOWER" 2>/dev/null || true
  [ -n "$NETCHAOS" ] && kill -9 "$NETCHAOS" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

wait_for() { # log pattern
  for _ in $(seq 100); do
    grep -q "$2" "$1" && return 0
    sleep 0.1
  done
  echo "timed out waiting for '$2' in $1" >&2
  cat "$1" >&2
  return 1
}

"$RTWC" serve "$SPEC" --addr 127.0.0.1:0 --wal-dir "$DIR/leader" \
  --fsync always --repl-addr 127.0.0.1:0 > "$DIR/leader.log" &
LEADER=$!
wait_for "$DIR/leader.log" "^replication listening on"
ADDR=$(sed -n 's/^listening on \([^ ]*\).*/\1/p' "$DIR/leader.log")
REPL=$(sed -n 's/^replication listening on \([^ ]*\).*/\1/p' "$DIR/leader.log")
test -n "$ADDR" && test -n "$REPL"

"$RTWC" serve "$SPEC" --addr 127.0.0.1:0 --wal-dir "$DIR/follower" \
  --fsync always --follower-of "$REPL" > "$DIR/follower.log" &
FOLLOWER=$!
wait_for "$DIR/follower.log" "^listening on"
FADDR=$(sed -n 's/^listening on \([^ ]*\).*/\1/p' "$DIR/follower.log")
test -n "$FADDR"

# Admits with idempotency ids against the leader, plus a duplicate:
# the retry must return the original acknowledgement byte for byte.
"$RTWC" client "$ADDR" --req-id 101 ADMIT 0,0 5,0 2 50 4 > "$DIR/admit1.json"
"$RTWC" client "$ADDR" --req-id 102 ADMIT 0,2 6,2 3 60 4 > "$DIR/admit2.json"
"$RTWC" client "$ADDR" --req-id 101 ADMIT 0,0 5,0 2 50 4 > "$DIR/retry-live.json"
cmp "$DIR/admit1.json" "$DIR/retry-live.json"

# A standby must refuse writes and point at the leader: with no
# retries the client reports the redirect instead of chasing it.
if "$RTWC" client "$FADDR" --retries 0 ADMIT 0,4 6,4 1 80 2 \
    > "$DIR/follower-write.json" 2> "$DIR/follower-write.err"; then
  echo "follower accepted a write before promotion" >&2
  exit 1
fi
grep -q "redirected to leader" "$DIR/follower-write.err"

# Wait for the follower to apply the leader's whole stream (5 seeded
# + 2 admitted = applied_seq 7), then record every admitted stream's
# answer on the leader.
for _ in $(seq 100); do
  "$RTWC" client "$FADDR" STATS > "$DIR/fstats.json"
  grep -q '"applied_seq":7' "$DIR/fstats.json" && break
  sleep 0.1
done
grep -q '"applied_seq":7' "$DIR/fstats.json"
for h in 0 1 2 3 4 5 6; do
  "$RTWC" client "$ADDR" QUERY "$h" >> "$DIR/pre-kill.json"
done

kill -9 "$LEADER"
wait "$LEADER" 2>/dev/null || true
LEADER=""

# Promote the standby and require the audited flip.
"$RTWC" promote "$FADDR" > "$DIR/promote.json"
grep -q '"status":"promoted"' "$DIR/promote.json"

# Every answer the dead leader served must come back byte-identical.
for h in 0 1 2 3 4 5 6; do
  "$RTWC" client "$FADDR" QUERY "$h" >> "$DIR/post-kill.json"
done
cmp "$DIR/pre-kill.json" "$DIR/post-kill.json"

# Exactly-once across failover: the pre-kill request id still replays
# its original outcome on the new leader.
"$RTWC" client "$FADDR" --req-id 101 ADMIT 0,0 5,0 2 50 4 > "$DIR/retry-promoted.json"
cmp "$DIR/admit1.json" "$DIR/retry-promoted.json"

# And the new leader takes fresh writes.
"$RTWC" client "$FADDR" --req-id 201 ADMIT 0,4 6,4 1 80 2 > "$DIR/new-write.json"
grep -q '"status":"admitted"' "$DIR/new-write.json"

"$RTWC" client "$FADDR" SHUTDOWN > /dev/null
wait "$FOLLOWER" 2>/dev/null || true
FOLLOWER=""

echo "leader kill-9 failover bit-identical: 7 stream(s) answered identically on the promoted follower"

# ---------------------------------------------------------------------
# Scenario 2: network partition with a leader lease. Fresh pair; the
# replication link crosses the netchaos proxy, driven over a FIFO.
# Lease 500ms < promotion grace 1500ms, so the deposed leader always
# seals strictly before the standby starts serving writes.
# ---------------------------------------------------------------------

"$RTWC" serve "$SPEC" --addr 127.0.0.1:0 --wal-dir "$DIR/part-leader" \
  --fsync always --repl-addr 127.0.0.1:0 --lease-ms 500 \
  > "$DIR/part-leader.log" 2> "$DIR/part-leader.err" &
LEADER=$!
wait_for "$DIR/part-leader.log" "^replication listening on"
ADDR=$(sed -n 's/^listening on \([^ ]*\).*/\1/p' "$DIR/part-leader.log")
REPL=$(sed -n 's/^replication listening on \([^ ]*\).*/\1/p' "$DIR/part-leader.log")
test -n "$ADDR" && test -n "$REPL"

mkfifo "$DIR/chaosctl"
"$RTWC" netchaos "$REPL" --seed 7 < "$DIR/chaosctl" > "$DIR/netchaos.log" &
NETCHAOS=$!
exec 3> "$DIR/chaosctl" # hold the write end open for the whole scenario
wait_for "$DIR/netchaos.log" "^netchaos listening on"
PROXY=$(sed -n 's/^netchaos listening on \([^ ]*\).*/\1/p' "$DIR/netchaos.log")
test -n "$PROXY"

"$RTWC" serve "$SPEC" --addr 127.0.0.1:0 --wal-dir "$DIR/part-follower" \
  --fsync always --follower-of "$PROXY" --promote-grace-ms 1500 \
  > "$DIR/part-follower.log" &
FOLLOWER=$!
wait_for "$DIR/part-follower.log" "^listening on"
FADDR=$(sed -n 's/^listening on \([^ ]*\).*/\1/p' "$DIR/part-follower.log")
test -n "$FADDR"

# Two replicated admits, then wait until the standby applied the whole
# stream (5 seeded + 2 admitted = applied_seq 7).
"$RTWC" client "$ADDR" --req-id 211 ADMIT 0,0 5,0 2 50 4 > /dev/null
"$RTWC" client "$ADDR" --req-id 212 ADMIT 0,2 6,2 3 60 4 > /dev/null
for _ in $(seq 100); do
  "$RTWC" client "$FADDR" STATS > "$DIR/part-fstats.json"
  grep -q '"applied_seq":7' "$DIR/part-fstats.json" && break
  sleep 0.1
done
grep -q '"applied_seq":7' "$DIR/part-fstats.json"

echo "partition" >&3
# One write inside the lease window: acknowledged on the old leader
# only, never replicated — the divergent suffix the fence will audit.
# (Losing the race against the seal is fine; the fence then audits 0.)
"$RTWC" client "$ADDR" --retries 0 --req-id 301 ADMIT 0,4 6,4 1 80 2 \
  > "$DIR/divergent.json" 2>/dev/null || true

# The lease lapses without follower acks: the leader seals...
for _ in $(seq 100); do
  "$RTWC" client "$ADDR" STATS > "$DIR/part-lstats.json"
  grep -q '"sealed":true' "$DIR/part-lstats.json" && break
  sleep 0.1
done
grep -q '"sealed":true' "$DIR/part-lstats.json"

# ...and sheds writes with the retryable `sealed` error.
if "$RTWC" client "$ADDR" --retries 0 ADMIT 0,6 6,6 1 90 2 \
    > "$DIR/sealed-write.json" 2> "$DIR/sealed-write.err"; then
  echo "sealed leader accepted a write" >&2
  exit 1
fi
grep -q "leader sealed" "$DIR/sealed-write.err"

# The standby's grace lapses and it self-promotes into epoch 2.
for _ in $(seq 100); do
  "$RTWC" client "$FADDR" STATS > "$DIR/part-fstats.json"
  grep -q '"role":"leader"' "$DIR/part-fstats.json" && break
  sleep 0.1
done
grep -q '"role":"leader"' "$DIR/part-fstats.json"
"$RTWC" client "$FADDR" --req-id 401 ADMIT 0,6 6,6 1 90 2 > "$DIR/part-new-write.json"
grep -q '"status":"admitted"' "$DIR/part-new-write.json"

# Heal: the promoted leader's fence reaches the deposed one, which
# audits its divergent suffix and permanently demotes.
echo "heal" >&3
wait_for "$DIR/part-leader.err" "DivergenceReport: fenced by epoch 2"

# The deposed leader now redirects writes at the promoted leader.
if "$RTWC" client "$ADDR" --retries 0 ADMIT 0,7 6,7 1 95 2 \
    > "$DIR/deposed-write.json" 2> "$DIR/deposed-write.err"; then
  echo "deposed leader accepted a write after the fence" >&2
  exit 1
fi
grep -q "redirected to leader $FADDR" "$DIR/deposed-write.err"

"$RTWC" client "$FADDR" SHUTDOWN > /dev/null
wait "$FOLLOWER" 2>/dev/null || true
FOLLOWER=""
"$RTWC" client "$ADDR" SHUTDOWN > /dev/null
wait "$LEADER" 2>/dev/null || true
LEADER=""
echo "quit" >&3
exec 3>&-
wait "$NETCHAOS" 2>/dev/null || true
NETCHAOS=""

echo "partition failover: leader sealed before promotion, deposed leader fenced with a DivergenceReport and redirected writes to $FADDR"
