#!/usr/bin/env bash
# Leader kill-9 failover check for the replication subsystem.
#
# Starts a durable leader shipping its WAL and a warm-standby follower
# as two real processes, admits streams over TCP (idempotent request
# ids included), SIGKILLs the leader mid-cluster, promotes the
# follower, and requires:
#   1. the follower to reject writes with a NOT_LEADER redirect while
#      the leader lives, then accept them once promoted;
#   2. every pre-kill QUERY answer on the leader to be byte-identical
#      on the promoted follower;
#   3. a retried pre-kill ADMIT request id to replay its original
#      outcome on the new leader instead of double-admitting.
# Prints the "bit-identical" marker CI greps for on success.
set -euo pipefail

RTWC=${RTWC:-target/debug/rtwc}
SPEC=${SPEC:-crates/cli/tests/fixtures/clean.streams}
DIR=$(mktemp -d)
LEADER=""
FOLLOWER=""
cleanup() {
  [ -n "$LEADER" ] && kill -9 "$LEADER" 2>/dev/null || true
  [ -n "$FOLLOWER" ] && kill -9 "$FOLLOWER" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

wait_for() { # log pattern
  for _ in $(seq 100); do
    grep -q "$2" "$1" && return 0
    sleep 0.1
  done
  echo "timed out waiting for '$2' in $1" >&2
  cat "$1" >&2
  return 1
}

"$RTWC" serve "$SPEC" --addr 127.0.0.1:0 --wal-dir "$DIR/leader" \
  --fsync always --repl-addr 127.0.0.1:0 > "$DIR/leader.log" &
LEADER=$!
wait_for "$DIR/leader.log" "^replication listening on"
ADDR=$(sed -n 's/^listening on \([^ ]*\).*/\1/p' "$DIR/leader.log")
REPL=$(sed -n 's/^replication listening on \([^ ]*\).*/\1/p' "$DIR/leader.log")
test -n "$ADDR" && test -n "$REPL"

"$RTWC" serve "$SPEC" --addr 127.0.0.1:0 --wal-dir "$DIR/follower" \
  --fsync always --follower-of "$REPL" > "$DIR/follower.log" &
FOLLOWER=$!
wait_for "$DIR/follower.log" "^listening on"
FADDR=$(sed -n 's/^listening on \([^ ]*\).*/\1/p' "$DIR/follower.log")
test -n "$FADDR"

# Admits with idempotency ids against the leader, plus a duplicate:
# the retry must return the original acknowledgement byte for byte.
"$RTWC" client "$ADDR" --req-id 101 ADMIT 0,0 5,0 2 50 4 > "$DIR/admit1.json"
"$RTWC" client "$ADDR" --req-id 102 ADMIT 0,2 6,2 3 60 4 > "$DIR/admit2.json"
"$RTWC" client "$ADDR" --req-id 101 ADMIT 0,0 5,0 2 50 4 > "$DIR/retry-live.json"
cmp "$DIR/admit1.json" "$DIR/retry-live.json"

# A standby must refuse writes and point at the leader: with no
# retries the client reports the redirect instead of chasing it.
if "$RTWC" client "$FADDR" --retries 0 ADMIT 0,4 6,4 1 80 2 \
    > "$DIR/follower-write.json" 2> "$DIR/follower-write.err"; then
  echo "follower accepted a write before promotion" >&2
  exit 1
fi
grep -q "redirected to leader" "$DIR/follower-write.err"

# Wait for the follower to apply the leader's whole stream (5 seeded
# + 2 admitted = applied_seq 7), then record every admitted stream's
# answer on the leader.
for _ in $(seq 100); do
  "$RTWC" client "$FADDR" STATS > "$DIR/fstats.json"
  grep -q '"applied_seq":7' "$DIR/fstats.json" && break
  sleep 0.1
done
grep -q '"applied_seq":7' "$DIR/fstats.json"
for h in 0 1 2 3 4 5 6; do
  "$RTWC" client "$ADDR" QUERY "$h" >> "$DIR/pre-kill.json"
done

kill -9 "$LEADER"
wait "$LEADER" 2>/dev/null || true
LEADER=""

# Promote the standby and require the audited flip.
"$RTWC" promote "$FADDR" > "$DIR/promote.json"
grep -q '"status":"promoted"' "$DIR/promote.json"

# Every answer the dead leader served must come back byte-identical.
for h in 0 1 2 3 4 5 6; do
  "$RTWC" client "$FADDR" QUERY "$h" >> "$DIR/post-kill.json"
done
cmp "$DIR/pre-kill.json" "$DIR/post-kill.json"

# Exactly-once across failover: the pre-kill request id still replays
# its original outcome on the new leader.
"$RTWC" client "$FADDR" --req-id 101 ADMIT 0,0 5,0 2 50 4 > "$DIR/retry-promoted.json"
cmp "$DIR/admit1.json" "$DIR/retry-promoted.json"

# And the new leader takes fresh writes.
"$RTWC" client "$FADDR" --req-id 201 ADMIT 0,4 6,4 1 80 2 > "$DIR/new-write.json"
grep -q '"status":"admitted"' "$DIR/new-write.json"

"$RTWC" client "$FADDR" SHUTDOWN > /dev/null
wait "$FOLLOWER" 2>/dev/null || true
FOLLOWER=""

echo "leader kill-9 failover bit-identical: 7 stream(s) answered identically on the promoted follower"
