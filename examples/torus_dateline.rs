//! Wormhole deadlock on a torus, live: four worms chase each other
//! around a ring and freeze; dateline virtual-channel layers break the
//! cycle and everything delivers.
//!
//! Run with: `cargo run --example torus_dateline`

use rtwc::prelude::*;
use rtwc_core::StreamSpec;
use wormnet_topology::{DimensionOrderRouting, NodeId, Torus};

fn main() {
    let torus = Torus::new(&[4]);
    println!("4-node ring torus, four one-shot 8-flit worms: 0->2, 1->3, 2->0, 3->1");
    println!("(deterministic DOR ties break toward +1, so all four go clockwise)\n");

    let mk = |s: u32, d: u32| StreamSpec::new(NodeId(s), NodeId(d), 1, 1_000_000, 8, 1_000_000);
    let set = StreamSet::resolve(
        &torus,
        &DimensionOrderRouting,
        &[mk(0, 2), mk(1, 3), mk(2, 0), mk(3, 1)],
    )
    .unwrap();

    // Attempt 1: single VC layer.
    let mut cfg = SimConfig::paper(1)
        .with_cycles(3_000, 0)
        .with_buffer_depth(2);
    cfg.stall_limit = 200;
    let mut sim = Simulator::new(torus.num_links(), &set, cfg).unwrap();
    sim.run();
    match sim.stats().stalled_at {
        Some(t) => println!(
            "single layer : DEADLOCK detected at cycle {t} ({} of 4 worms delivered)",
            sim.stats().total_completed()
        ),
        None => println!("single layer : unexpectedly survived"),
    }

    // Attempt 2: two dateline layers, per-hop layers from the torus.
    let layers: Vec<Vec<u8>> = set.iter().map(|s| torus.dateline_layers(&s.path)).collect();
    for (s, ls) in set.iter().zip(&layers) {
        println!("  {} route layers: {:?}", s.id, ls);
    }
    let mut cfg = SimConfig::paper(1)
        .with_cycles(3_000, 0)
        .with_buffer_depth(2)
        .with_layers(2);
    cfg.stall_limit = 200;
    let phases = vec![0; set.len()];
    let mut sim =
        Simulator::with_phases_and_layers(torus.num_links(), &set, cfg, &phases, &layers).unwrap();
    sim.run();
    println!(
        "two datelines: {} of 4 worms delivered, no stall (max latency {})",
        sim.stats().total_completed(),
        set.ids()
            .filter_map(|id| sim.stats().max_latency(id, 0))
            .max()
            .unwrap_or(0)
    );
}
