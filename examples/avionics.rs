//! An avionics-flavoured periodic workload — the kind of hard real-time
//! multicomputer application the paper's introduction motivates — with
//! end-to-end guarantees checked by the feasibility test and validated
//! in simulation.
//!
//! The platform is an 8x8 mesh hosting a flight-control pipeline
//! (sensors -> filters -> fusion -> actuators), a radar stream, and
//! bulk maintenance/telemetry traffic. Priorities follow criticality.
//!
//! Run with: `cargo run --example avionics`

use rtwc::prelude::*;

fn main() {
    // Deadlines are explicit here (tighter than periods), exercising
    // the U <= D test rather than the default D = T.
    let builder = ScenarioBuilder::mesh2d(8, 8)
        // -- flight control pipeline (criticality A: priority 5) --
        .stream_with_deadline((0, 0), (3, 1), 5, 50, 4, 25) // IMU -> filter
        .stream_with_deadline((3, 1), (4, 4), 5, 50, 4, 25) // filter -> fusion
        .stream_with_deadline((4, 4), (7, 6), 5, 50, 4, 25) // fusion -> elevator actuator
        // -- radar track stream (criticality B: priority 4) --
        .stream_with_deadline((7, 0), (4, 4), 4, 80, 12, 60)
        // -- cockpit display updates (priority 3) --
        .stream_with_deadline((4, 4), (0, 7), 3, 120, 20, 120)
        // -- health monitoring (priority 2) --
        .stream_with_deadline((2, 6), (6, 2), 2, 200, 16, 200)
        .stream_with_deadline((5, 5), (1, 2), 2, 200, 16, 200)
        // -- maintenance log dump (priority 1, big and lazy) --
        .stream_with_deadline((6, 2), (0, 7), 1, 400, 64, 400);
    let (mesh, set) = builder.build_with_mesh().unwrap();

    println!("Avionics workload on an 8x8 mesh ({} streams)\n", set.len());
    let report = determine_feasibility(&set);
    for s in set.iter() {
        println!(
            "  {}: P={} T={} C={} D={} L={}  U = {}  [{}]",
            s.id,
            s.priority(),
            s.period(),
            s.max_length(),
            s.deadline(),
            s.latency,
            report.bound(s.id),
            if report.bound(s.id).meets(s.deadline()) {
                "guaranteed"
            } else {
                "NOT guaranteed"
            },
        );
    }
    println!(
        "\nAdmission verdict: {}",
        if report.is_feasible() {
            "all deadlines guaranteed (success)"
        } else {
            "fail"
        }
    );

    // Validate in simulation: max observed latency must stay within U.
    let cfg = SimConfig::paper(5).with_cycles(50_000, 2_000);
    let mut sim = Simulator::new(mesh.num_links(), &set, cfg).unwrap();
    sim.run();
    println!("\nSimulation check (50000 flit times):");
    let mut violations = 0;
    for s in set.iter() {
        let max = sim.stats().max_latency(s.id, 2_000).unwrap_or(0);
        let ok = report.bound(s.id).value().is_some_and(|u| max <= u);
        if !ok {
            violations += 1;
        }
        println!(
            "  {}: max actual {:>4}  vs U = {:>4}  {}",
            s.id,
            max,
            report.bound(s.id),
            if ok { "ok" } else { "VIOLATION" }
        );
    }
    println!(
        "\n{}",
        if violations == 0 {
            "every observed latency is within its computed upper bound"
        } else {
            "bound violations observed — investigate!"
        }
    );
}
