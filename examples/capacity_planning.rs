//! Admission control / capacity planning with the incremental
//! [`AdmissionController`]: keep adding periodic streams to a mesh until
//! the feasibility test says no — and see *which* stream breaks and why
//! (its HP set tells you).
//!
//! This is how the paper's host processor would be used in practice:
//! "given a set of real-time communication requests, if all of their U
//! values are less than or equal to the corresponding deadlines, the
//! requests can be met." The controller only recomputes the bounds the
//! new stream can actually affect, so admission is cheap even as the
//! set grows.
//!
//! Run with: `cargo run --example capacity_planning`

use rtwc::prelude::*;
use rtwc_core::{generate_hp, AdmissionController, AdmissionError};
use wormnet_topology::Mesh;

fn main() {
    let mesh_size = 6u32;
    let mesh = Mesh::mesh2d(mesh_size, mesh_size);
    // Candidate streams arrive one by one: row traffic with period 90,
    // 20-flit messages, deadline 60, priorities cycling 3, 2, 1 (so
    // later arrivals at the same priority pile onto the same virtual
    // channels).
    type Candidate = ((u32, u32), (u32, u32), u32);
    let candidates: Vec<Candidate> = (0..18)
        .map(|i| {
            let row = i % mesh_size;
            let start = (i / mesh_size) % (mesh_size - 2);
            ((start, row), (mesh_size - 1, row), 3 - (i % 3))
        })
        .collect();

    let mut ctl = AdmissionController::new();
    println!("Admitting streams onto a {mesh_size}x{mesh_size} mesh (T=90, C=20, D=60):\n");
    for (i, &(src, dst, prio)) in candidates.iter().enumerate() {
        let s = mesh.node_at(&[src.0, src.1]).unwrap();
        let d = mesh.node_at(&[dst.0, dst.1]).unwrap();
        let path = XyRouting.route(&mesh, s, d).unwrap();
        let spec = StreamSpec::new(s, d, prio, 90, 20, 60);
        match ctl.admit(spec, path) {
            Ok(id) => println!(
                "  request {i:>2}: {src:?} -> {dst:?} P{prio}  ADMITTED as {id} (U = {})",
                ctl.bound(id)
            ),
            Err(AdmissionError::CandidateInfeasible {
                bound, blocked_by, ..
            }) => {
                let blockers: Vec<String> = blocked_by.iter().map(|b| b.to_string()).collect();
                println!(
                    "  request {i:>2}: {src:?} -> {dst:?} P{prio}  REJECTED (own bound {bound} misses D=60; blocked by {})",
                    blockers.join(", ")
                );
                explain_candidate(&ctl, &mesh, src, dst, prio);
            }
            Err(AdmissionError::BreaksExisting { victims, .. }) => {
                let names: Vec<String> = victims.iter().map(|v| v.to_string()).collect();
                println!(
                    "  request {i:>2}: {src:?} -> {dst:?} P{prio}  REJECTED (would break {})",
                    names.join(", ")
                );
            }
            Err(e) => println!("  request {i:>2}: invalid: {e}"),
        }
    }
    println!(
        "\nFinal capacity: {} of {} requests admitted with hard guarantees",
        ctl.len(),
        candidates.len()
    );
    println!(
        "Cal_U invocations: {} (incremental — a full re-analysis per request would need {})",
        ctl.recomputations(),
        // Sum over k of (k streams in the trial set).
        (1..=candidates.len()).sum::<usize>(),
    );
}

/// Shows the blockers a rejected candidate would have faced.
fn explain_candidate(
    ctl: &AdmissionController,
    mesh: &Mesh,
    src: (u32, u32),
    dst: (u32, u32),
    prio: u32,
) {
    let Some(set) = ctl.set() else { return };
    // Rebuild the trial set just for the diagnostic.
    let mut parts: Vec<(StreamSpec, wormnet_topology::Path)> = set
        .iter()
        .map(|s| (s.spec.clone(), s.path.clone()))
        .collect();
    let s = mesh.node_at(&[src.0, src.1]).unwrap();
    let d = mesh.node_at(&[dst.0, dst.1]).unwrap();
    let path = XyRouting.route(mesh, s, d).unwrap();
    parts.push((StreamSpec::new(s, d, prio, 90, 20, 60), path));
    let Ok(trial) = StreamSet::from_parts(parts) else {
        return;
    };
    let cand = StreamId(trial.len() as u32 - 1);
    let hp = generate_hp(&trial, cand);
    let blockers: Vec<String> = hp
        .elements()
        .iter()
        .map(|e| {
            format!(
                "{}{}",
                e.stream,
                if e.is_direct() { "" } else { " (indirect)" }
            )
        })
        .collect();
    println!("             blocked by [{}]", blockers.join(", "));
}
