//! Fault recovery planning: a channel fails, the host processor
//! re-routes the affected streams around it (deterministic BFS over the
//! surviving channels) and re-runs the feasibility test to see which
//! guarantees survive the detour.
//!
//! The paper cites fault-tolerant real-time channels [Zheng & Shin] as
//! the companion problem; this example shows the analysis side of that
//! story on our substrate.
//!
//! Run with: `cargo run --example link_failure`

use rtwc::prelude::*;
use rtwc_core::{channel_loads, is_deadlock_free, StreamSpec};
use wormnet_topology::{BfsRouting, Mesh, NodeId, Path};

fn resolve(
    mesh: &Mesh,
    routing: &BfsRouting,
    raw: &[(NodeId, NodeId, u32, u64, u64, u64)],
) -> StreamSet {
    let parts: Vec<(StreamSpec, Path)> = raw
        .iter()
        .map(|&(s, d, p, t, c, dl)| {
            let path = routing.route(mesh, s, d).expect("network connected");
            (StreamSpec::new(s, d, p, t, c, dl), path)
        })
        .collect();
    StreamSet::from_parts(parts).unwrap()
}

fn report(title: &str, mesh: &Mesh, set: &StreamSet) {
    let feas = determine_feasibility(set);
    println!("{title}");
    for s in set.iter() {
        println!(
            "  {}: {} hops, L={}  U = {}  [{}]",
            s.id,
            s.path.hops(),
            s.latency,
            feas.bound(s.id),
            if feas.bound(s.id).meets(s.deadline()) {
                "guaranteed"
            } else {
                "NOT guaranteed"
            }
        );
    }
    let loads = channel_loads(set, mesh.num_links());
    let hottest = loads.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "  verdict: {} (hottest channel load {:.2})\n",
        if feas.is_feasible() {
            "success"
        } else {
            "fail"
        },
        hottest
    );
}

fn main() {
    let mesh = Mesh::mesh2d(8, 8);
    let n = |x: u32, y: u32| mesh.node_at(&[x, y]).unwrap();
    let raw = [
        (n(0, 2), n(7, 2), 3, 60, 8, 60),    // crosses row 2
        (n(1, 2), n(6, 2), 2, 80, 10, 80),   // also row 2
        (n(3, 0), n(3, 7), 1, 120, 12, 120), // column 3
    ];

    // Healthy network: BFS routes coincide with minimal paths.
    let healthy = BfsRouting::new();
    let set = resolve(&mesh, &healthy, &raw);
    report("before failure:", &mesh, &set);

    // The row-2 channel (3,2) -> (4,2) fails.
    let broken = mesh.link_between(n(3, 2), n(4, 2)).unwrap();
    println!("channel (3,2) -> (4,2) fails!\n");

    // Streams crossing it must detour; re-resolve everything with the
    // failure-aware router and re-run the feasibility test.
    let degraded = BfsRouting::avoiding([broken]);
    let set2 = resolve(&mesh, &degraded, &raw);
    for (before, after) in set.iter().zip(set2.iter()) {
        if before.path.hops() != after.path.hops() {
            println!(
                "  {} re-routed: {} -> {} hops (L {} -> {})",
                before.id,
                before.path.hops(),
                after.path.hops(),
                before.latency,
                after.latency
            );
        }
    }
    println!();
    report("after re-planning:", &mesh, &set2);
    // BFS detours are not turn-restricted, so deadlock freedom is now a
    // proof obligation — discharge it with the channel-dependency-graph
    // check before committing the new routes.
    println!(
        "deadlock check on the re-routed set (Dally-Seitz condition): {}",
        if is_deadlock_free(&set2, None) {
            "acyclic — safe to commit"
        } else {
            "CYCLE FOUND — do not commit these routes"
        }
    );
}
