//! Priority inversion in classic wormhole switching (paper Figure 2),
//! and its resolution by flit-level preemptive virtual channels.
//!
//! Three low-priority streams keep a switch's output channel busy while
//! a high-priority message needs it. Under classic (non-prioritized,
//! single-VC) wormhole switching the high-priority message waits behind
//! them indefinitely; under the paper's scheme it preempts the channel
//! at flit granularity and sails through at its network latency.
//!
//! Run with: `cargo run --example priority_inversion`

use rtwc::prelude::*;

fn build() -> (Mesh, StreamSet) {
    // Aggressors enter row 2 from different columns and all continue
    // east through the channels the victim needs; the victim crosses
    // the same row-2 segment.
    ScenarioBuilder::mesh2d(10, 10)
        // Low-priority aggressors: long messages, short periods (the
        // "message 1 / message 2 / message n" of Fig. 2).
        .stream((1, 2), (8, 2), 1, 60, 40)
        .stream((2, 0), (8, 2), 1, 60, 40)
        .stream((2, 4), (7, 2), 1, 60, 40)
        // The high-priority message B of Fig. 2.
        .stream((0, 2), (9, 2), 4, 300, 6)
        .build_with_mesh()
        .unwrap()
}

fn run(policy_name: &str, cfg: SimConfig) {
    let (mesh, set) = build();
    let victim = StreamId(3);
    let mut sim = Simulator::new(
        mesh.num_links(),
        &set,
        cfg.with_cycles(6_000, 0).with_trace(),
    )
    .unwrap();
    sim.run();
    let stats = sim.stats();
    let l = set.get(victim).latency;
    println!("{policy_name}:");
    match stats.mean_latency(victim, 0) {
        Some(mean) => {
            let max = stats.max_latency(victim, 0).unwrap();
            println!(
                "  high-priority stream: network latency L = {l}, mean actual = {mean:.1}, max = {max}, unfinished = {}",
                stats.unfinished(victim)
            );
            if max as f64 > 3.0 * l as f64 {
                println!("  -> severe priority inversion (blocked behind low-priority worms)");
            } else if max == l {
                println!("  -> no interference at all: flit-level preemption in action");
            } else {
                println!("  -> mild interference");
            }
        }
        None => println!(
            "  high-priority stream: NO message completed in 6000 cycles (permanently blocked, as in Fig. 2), unfinished = {}",
            stats.unfinished(victim)
        ),
    }
    // Aggressors' throughput, to show the channel was genuinely loaded.
    let aggressor_msgs: usize = (0..3).map(|i| stats.latencies(StreamId(i), 0).len()).sum();
    println!("  low-priority messages completed: {aggressor_msgs}");
    // Measured Gantt of the first 70 cycles: '#' transmitting, 'w'
    // stalled in flight, '.' idle. M3 is the high-priority victim.
    println!("{}", indent(&sim.render_gantt(1, 70)));
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    println!("Figure 2 — priority inversion and its resolution\n");
    run("classic wormhole (single VC, FCFS)", SimConfig::classic());
    run("Li priority VCs (4 VCs, fair bandwidth)", SimConfig::li(4));
    run(
        "flit-level preemptive priority VCs (the paper's scheme)",
        SimConfig::paper(4),
    );
}
