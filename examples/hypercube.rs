//! The paper's system model names "a hypercube or a mesh" as target
//! interconnects. This example runs the full pipeline on a 4-cube with
//! e-cube routing: resolve streams, compute bounds, simulate, compare.
//!
//! Run with: `cargo run --example hypercube`

use rtwc::prelude::*;
use rtwc_core::StreamSpec;
use wormnet_topology::{EcubeRouting, Hypercube, NodeId};

fn main() {
    let cube = Hypercube::new(4); // 16 nodes, 64 directed channels
    println!(
        "4-cube: {} nodes, {} directed channels, diameter {}\n",
        cube.num_nodes(),
        cube.num_links(),
        cube.diameter()
    );

    // A broadcast-tree-ish control pattern plus background traffic.
    let specs = vec![
        StreamSpec::new(NodeId(0b0000), NodeId(0b1111), 4, 80, 6, 80), // controller -> far corner
        StreamSpec::new(NodeId(0b0000), NodeId(0b0111), 3, 60, 6, 60), // controller -> subcube
        StreamSpec::new(NodeId(0b0001), NodeId(0b0011), 2, 90, 8, 90), // shares 0001->0011 with the above
        StreamSpec::new(NodeId(0b1000), NodeId(0b1110), 1, 120, 16, 120), // bulk
    ];
    let set = StreamSet::resolve(&cube, &EcubeRouting, &specs).unwrap();

    let report = determine_feasibility(&set);
    for s in set.iter() {
        println!(
            "  {}: {:04b} -> {:04b}  P={} T={} C={} L={}  U = {}",
            s.id,
            s.path.source().0,
            s.path.dest().0,
            s.priority(),
            s.period(),
            s.max_length(),
            s.latency,
            report.bound(s.id)
        );
    }
    println!(
        "\nDetermine-Feasibility: {}",
        if report.is_feasible() {
            "success"
        } else {
            "fail"
        }
    );

    let cfg = SimConfig::paper(4).with_cycles(20_000, 1_000);
    let mut sim = Simulator::new(cube.num_links(), &set, cfg).unwrap();
    sim.run();
    println!("\nSimulation (20000 cycles, e-cube routed, preemptive VCs):");
    for s in set.iter() {
        let max = sim.stats().max_latency(s.id, 1_000).unwrap_or(0);
        let u = report.bound(s.id).value().unwrap_or(u64::MAX);
        println!(
            "  {}: max actual {:>3} vs U {:>3}  {}",
            s.id,
            max,
            u,
            if max <= u { "ok" } else { "VIOLATION" }
        );
    }
    let (hot, util) = sim.stats().hottest_link().unwrap();
    println!(
        "\nhottest channel: {hot:?} at {:.1}% utilization",
        util * 100.0
    );
}
