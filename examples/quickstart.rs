//! Quickstart: define a set of periodic real-time message streams on a
//! mesh, test feasibility off-line, then check the guarantee against a
//! flit-level simulation.
//!
//! Run with: `cargo run --example quickstart`

use rtwc::prelude::*;

fn main() {
    // A 10x10 mesh multicomputer with X-Y routing (the paper's system
    // model), and four cooperating periodic streams: priorities are
    // 1-based, larger = more urgent.
    let builder = ScenarioBuilder::mesh2d(10, 10)
        //      source    dest    P   T    C
        .stream((1, 1), (6, 1), 4, 100, 8) // control loop, most urgent
        .stream((2, 3), (6, 3), 3, 120, 16) // sensor fusion
        .stream((0, 1), (8, 1), 2, 200, 24) // telemetry, crosses row 1
        .stream((3, 3), (8, 3), 1, 300, 32); // bulk logging
    let (mesh, set) = builder.build_with_mesh().unwrap();

    // Off-line feasibility test (the host processor's job in the paper):
    // every stream gets a delay upper bound U; the set is feasible iff
    // U_i <= D_i for all i.
    let report = determine_feasibility(&set);
    println!(
        "Feasibility: {}",
        if report.is_feasible() {
            "success"
        } else {
            "fail"
        }
    );
    for s in set.iter() {
        println!(
            "  {}: P={} T={} C={} L={}  ->  U = {}",
            s.id,
            s.priority(),
            s.period(),
            s.max_length(),
            s.latency,
            report.bound(s.id),
        );
    }

    // Simulate 20000 flit times of the preemptive prioritized network
    // and compare actual worst/mean latencies against the bounds.
    let cfg = SimConfig::paper(4).with_cycles(20_000, 1_000);
    let mut sim = Simulator::new(mesh.num_links(), &set, cfg).unwrap();
    sim.run();
    println!("\nSimulated {} cycles:", sim.time());
    for s in set.iter() {
        let mean = sim.stats().mean_latency(s.id, 1_000).unwrap_or(f64::NAN);
        let max = sim.stats().max_latency(s.id, 1_000).unwrap_or(0);
        let bound = report.bound(s.id);
        let holds = bound.value().is_some_and(|u| max <= u);
        println!(
            "  {}: mean {:.1}, max {}  (bound {})  {}",
            s.id,
            mean,
            max,
            bound,
            if holds {
                "bound holds"
            } else {
                "BOUND VIOLATED"
            },
        );
    }
}
