//! The full host-processor story (paper Fig. 1): jobs arrive, the host
//! allocates nodes, admits their message streams with hard guarantees,
//! and reclaims everything when a job finishes — and the allocation
//! strategy visibly changes how much fits.
//!
//! Run with: `cargo run --example job_deployment`

use rtwc::prelude::*;
use rtwc_host::{Allocator, Clustered, CommunicationAware, FirstFit, RandomPlacement};

/// A sensor-fusion pipeline: chain of 5 tasks with stage-to-stage
/// streams plus a cross-cutting monitor stream.
fn pipeline(name: &str, priority: u32) -> JobSpec {
    let mut msgs: Vec<MessageRequirement> = (0..4)
        .map(|i| MessageRequirement::new(TaskId(i), TaskId(i + 1), priority, 80, 12))
        .collect();
    msgs.push(MessageRequirement::new(TaskId(0), TaskId(4), 1, 400, 20));
    JobSpec::new(name, 5, msgs).unwrap()
}

fn fill(host: &mut HostProcessor, allocator: &dyn Allocator, label: &str) -> usize {
    let mut count = 0usize;
    loop {
        let job = pipeline(&format!("{label}-{count}"), 2 + (count as u32 % 3));
        match host.deploy(&job, allocator) {
            Ok(_) => count += 1,
            Err(e) => {
                println!("  {label}: stopped after {count} jobs ({e})");
                break;
            }
        }
    }
    count
}

fn main() {
    println!("Filling an 8x8 mesh with 5-task pipelines until deployment fails:\n");
    let allocators: Vec<(&str, Box<dyn Allocator>)> = vec![
        ("first-fit", Box::new(FirstFit)),
        ("clustered", Box::new(Clustered)),
        ("communication-aware", Box::new(CommunicationAware)),
        ("random", Box::new(RandomPlacement { seed: 17 })),
    ];
    for (label, alloc) in &allocators {
        let mut host = HostProcessor::new(8, 8);
        let jobs = fill(&mut host, alloc.as_ref(), label);
        println!(
            "  {label:>20}: {jobs} jobs deployed, {} streams guaranteed, {} nodes left\n",
            host.admitted_streams(),
            host.free_nodes().len()
        );
    }

    // Lifecycle: deploy, remove, redeploy.
    println!("Lifecycle check (communication-aware):");
    let mut host = HostProcessor::new(8, 8);
    let a = host
        .deploy(&pipeline("alpha", 3), &CommunicationAware)
        .unwrap();
    let _b = host
        .deploy(&pipeline("beta", 2), &CommunicationAware)
        .unwrap();
    println!(
        "  deployed alpha + beta: {} streams, {} free nodes",
        host.admitted_streams(),
        host.free_nodes().len()
    );
    host.remove_job(a);
    println!(
        "  removed alpha: {} streams, {} free nodes",
        host.admitted_streams(),
        host.free_nodes().len()
    );
    let c = host
        .deploy(&pipeline("gamma", 3), &CommunicationAware)
        .unwrap();
    println!(
        "  redeployed gamma ({c:?}): {} streams, every bound still guaranteed: {}",
        host.admitted_streams(),
        host.jobs()
            .iter()
            .flat_map(|j| j.streams.iter())
            .all(|&s| host.bound(s).is_bounded())
    );
}
