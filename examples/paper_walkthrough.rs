//! The paper's worked example (§4.4, Figures 3-9), end to end: HP set
//! construction, the initial timing diagram (Fig. 7), the blocking
//! dependency graph (Fig. 8), instance removal and the final diagram
//! (Fig. 9), and all five delay upper bounds.
//!
//! Run with: `cargo run --example paper_walkthrough`

use rtwc::prelude::*;
use rtwc_core::analyze_all;

fn main() {
    // The example's five streams, M_i = (S, R, P, T, C, D) with L
    // derived (the printed L values 7, 8, 12, 16, 10 all follow from
    // X-Y hop counts and L = hops + C - 1).
    let set = ScenarioBuilder::mesh2d(10, 10)
        .stream((7, 3), (7, 7), 5, 15, 4) // M0
        .stream((1, 1), (5, 4), 4, 10, 2) // M1
        .stream((2, 1), (7, 5), 3, 40, 4) // M2
        .stream((4, 1), (8, 5), 2, 45, 9) // M3
        .stream((6, 1), (9, 3), 1, 50, 6) // M4
        .build()
        .unwrap();

    println!("Stream set (the paper's §4.4 example):");
    for s in set.iter() {
        println!(
            "  {} = (({}), P={}, T={}, C={}, D={}, L={})",
            s.id,
            route_ends(s),
            s.priority(),
            s.period(),
            s.max_length(),
            s.deadline(),
            s.latency
        );
    }
    println!();

    for analysis in analyze_all(&set) {
        print!("{}", render_analysis(&set, &analysis));
        println!();
    }

    let report = determine_feasibility(&set);
    println!(
        "Determine-Feasibility: {}",
        if report.is_feasible() {
            "success"
        } else {
            "fail"
        }
    );
    println!(
        "(paper's published bounds: U = (7, 8, 26, 20, 33); U_3 differs here\n\
         because the strict path-overlap HP_3 also contains M2 and M0 — see\n\
         EXPERIMENTS.md for the discrepancy note)"
    );
}

fn route_ends(s: &MessageStream) -> String {
    format!("{} -> {}", s.path.source(), s.path.dest())
}
