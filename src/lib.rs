//! # rtwc — Real-Time Wormhole Communication
//!
//! A full reproduction of *"A Real-Time Communication Method for
//! Wormhole Switching Networks"* (B. Kim, J. Kim, S. Hong, S. Lee —
//! ICPP 1998) as a Rust workspace:
//!
//! * [`rtwc_core`] — the paper's contribution: message-stream
//!   feasibility testing via HP sets, blocking dependency graphs,
//!   timing diagrams, and delay upper bounds (`U_i`).
//! * [`wormnet_topology`] — meshes, tori, hypercubes, and deterministic
//!   deadlock-free routing (X-Y, dimension-order, e-cube).
//! * [`wormnet_sim`] — a deterministic flit-level wormhole simulator
//!   with per-priority virtual channels and flit-level preemption,
//!   plus the Li and classic-wormhole baselines.
//! * [`rtwc_workload`] — the paper's evaluation workload and richer
//!   scenario generators.
//!
//! This crate re-exports the common API surface; see the `examples/`
//! directory for runnable walkthroughs (quickstart, the paper's worked
//! example, priority inversion, an avionics-style workload, and
//! admission control) and `crates/bench` for the binaries that
//! regenerate every table of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rtwc_core;
pub use rtwc_host;
pub use rtwc_workload;
pub use wormnet_sim;
pub use wormnet_topology;

/// One-stop imports for applications.
pub mod prelude {
    pub use rtwc_core::{
        cal_u, cal_u_detailed, determine_feasibility, render_analysis, DelayBound,
        FeasibilityReport, MessageStream, StreamId, StreamSet, StreamSpec,
    };
    pub use rtwc_host::{HostProcessor, JobSpec, MessageRequirement, TaskId};
    pub use rtwc_workload::{PaperWorkloadConfig, ScenarioBuilder};
    pub use wormnet_sim::{Policy, SimConfig, Simulator};
    pub use wormnet_topology::{Mesh, Routing, Topology, XyRouting};
}
